//! Layer operations and their parameters.
//!
//! A [`Layer`] is a single operation in a [`crate::Network`] graph. The
//! three *injectable* kinds — [`Conv2d`], [`Conv3d`] and [`Linear`] — are
//! exactly the layer types PyTorchALFI supports for fault injection
//! (§IV-B: "Supported layer types are conv2d, conv3d, and Linear").

use crate::error::NnError;
use alfi_tensor::conv::{
    adaptive_avg_pool2d, avg_pool2d, conv2d_im2col, conv3d_direct, max_pool2d, ConvConfig,
};
use alfi_tensor::{gemm, Tensor};

/// Classification of layer kinds, used to filter injectable layers in a
/// fault-injection scenario (`layer_types: [conv2d, linear]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// 2-D convolution — injectable.
    Conv2d,
    /// 3-D convolution — injectable.
    Conv3d,
    /// Fully-connected layer — injectable.
    Linear,
    /// Any non-injectable operation (activations, pooling, arithmetic...).
    Other,
}

impl LayerKind {
    /// Whether ALFI may target this layer kind for fault injection.
    pub fn is_injectable(self) -> bool {
        !matches!(self, LayerKind::Other)
    }
}

impl std::fmt::Display for LayerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LayerKind::Conv2d => "conv2d",
            LayerKind::Conv3d => "conv3d",
            LayerKind::Linear => "linear",
            LayerKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// A 2-D convolution layer with weights `[c_out, c_in, kh, kw]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2d {
    /// Convolution weight tensor `[c_out, c_in, kh, kw]`.
    pub weight: Tensor,
    /// Optional per-output-channel bias `[c_out]`.
    pub bias: Option<Tensor>,
    /// Stride and padding.
    pub cfg: ConvConfig,
}

/// A 3-D convolution layer with weights `[c_out, c_in, kd, kh, kw]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Conv3d {
    /// Convolution weight tensor `[c_out, c_in, kd, kh, kw]`.
    pub weight: Tensor,
    /// Optional per-output-channel bias `[c_out]`.
    pub bias: Option<Tensor>,
    /// Stride and padding.
    pub cfg: ConvConfig,
}

/// A fully-connected layer computing `x · Wᵀ + b` with weight `[out, in]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    /// Weight matrix `[out_features, in_features]`.
    pub weight: Tensor,
    /// Optional bias `[out_features]`.
    pub bias: Option<Tensor>,
}

/// Inference-mode 2-D batch normalization with frozen statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchNorm2d {
    /// Per-channel scale γ.
    pub gamma: Tensor,
    /// Per-channel shift β.
    pub beta: Tensor,
    /// Frozen running mean.
    pub running_mean: Tensor,
    /// Frozen running variance.
    pub running_var: Tensor,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl BatchNorm2d {
    /// Identity-initialized batch norm over `c` channels (γ=1, β=0,
    /// mean=0, var=1).
    pub fn identity(c: usize) -> Self {
        BatchNorm2d {
            gamma: Tensor::ones(&[c]),
            beta: Tensor::zeros(&[c]),
            running_mean: Tensor::zeros(&[c]),
            running_var: Tensor::ones(&[c]),
            eps: 1e-5,
        }
    }
}

/// A user-defined layer operation — the extensibility hook of paper
/// §V-G ("the tool is designed to easily incorporate new custom
/// trainable layers not native to PyTorch by adding the custom layer's
/// type in the `verify_layer` function").
///
/// A custom layer may expose a weight tensor and masquerade as one of
/// the supported injectable kinds via [`CustomLayer::injection_kind`];
/// ALFI then targets it exactly like a native conv/linear layer. Weight
/// tensors must be rank 2, 4 or 5 so fault coordinates can be sampled.
pub trait CustomLayer: Send + Sync + std::fmt::Debug {
    /// Short type name shown in logs and debugging output.
    fn type_name(&self) -> &str;
    /// Executes the layer (unary).
    ///
    /// # Errors
    ///
    /// Implementations return [`NnError`] for incompatible inputs.
    fn forward(&self, input: &Tensor) -> Result<Tensor, NnError>;
    /// Clones the layer into a fresh box (custom layers must be
    /// clonable so faulty model instances can be spun off).
    fn clone_box(&self) -> Box<dyn CustomLayer>;
    /// The injectable kind this layer registers as, or `None` to opt out
    /// of fault injection.
    fn injection_kind(&self) -> Option<LayerKind> {
        None
    }
    /// The layer's weight tensor, if it has one.
    fn weight(&self) -> Option<&Tensor> {
        None
    }
    /// Mutable weight access for weight fault injection.
    fn weight_mut(&mut self) -> Option<&mut Tensor> {
        None
    }
}

impl Clone for Box<dyn CustomLayer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A single operation in a network graph.
#[derive(Debug, Clone)]
pub enum Layer {
    /// A user-defined operation (see [`CustomLayer`]).
    Custom(Box<dyn CustomLayer>),
    /// 2-D convolution (injectable).
    Conv2d(Conv2d),
    /// 3-D convolution (injectable).
    Conv3d(Conv3d),
    /// Fully-connected layer (injectable).
    Linear(Linear),
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(f32),
    /// Logistic sigmoid.
    Sigmoid,
    /// Inference batch normalization.
    BatchNorm2d(BatchNorm2d),
    /// Max pooling with square window `k`.
    MaxPool2d {
        /// Window size.
        k: usize,
        /// Stride and padding.
        cfg: ConvConfig,
    },
    /// Average pooling with square window `k`.
    AvgPool2d {
        /// Window size.
        k: usize,
        /// Stride and padding.
        cfg: ConvConfig,
    },
    /// Adaptive average pooling to `out × out`.
    AdaptiveAvgPool2d(usize),
    /// Flattens `[n, ...]` to `[n, rest]`.
    Flatten,
    /// Elementwise sum of two inputs (residual connections).
    Add,
    /// Channel-dimension concatenation of two NCHW inputs.
    ConcatChannels,
    /// Nearest-neighbour 2× spatial upsampling (FPN top-down path).
    Upsample2x,
    /// Identity pass-through (graph plumbing).
    Identity,
    /// Activation-range supervision (Ranger/Clipper, Geissler et al.):
    /// values outside `[lo, hi]` are clipped to the bound (`Clip`) or
    /// zeroed (`Zero`). Inserted by `alfi-mitigation` to harden models;
    /// non-injectable, so hardening preserves the injectable-layer list.
    RangeRestrict {
        /// Lower bound of the healthy activation range.
        lo: f32,
        /// Upper bound of the healthy activation range.
        hi: f32,
        /// What to do with out-of-range values.
        mode: RestrictMode,
    },
}

/// Out-of-range handling for [`Layer::RangeRestrict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RestrictMode {
    /// Ranger: saturate to the violated bound. NaN maps to `lo`.
    Clip,
    /// Clipper: replace with zero. NaN maps to zero.
    Zero,
}

impl From<RestrictMode> for gemm::ClampMode {
    fn from(mode: RestrictMode) -> Self {
        match mode {
            RestrictMode::Clip => gemm::ClampMode::Clip,
            RestrictMode::Zero => gemm::ClampMode::Zero,
        }
    }
}

impl From<gemm::ClampMode> for RestrictMode {
    fn from(mode: gemm::ClampMode) -> Self {
        match mode {
            gemm::ClampMode::Clip => RestrictMode::Clip,
            gemm::ClampMode::Zero => RestrictMode::Zero,
        }
    }
}

impl Layer {
    /// The kind used for injectability filtering.
    pub fn kind(&self) -> LayerKind {
        match self {
            Layer::Conv2d(_) => LayerKind::Conv2d,
            Layer::Conv3d(_) => LayerKind::Conv3d,
            Layer::Linear(_) => LayerKind::Linear,
            Layer::Custom(c) => c.injection_kind().unwrap_or(LayerKind::Other),
            _ => LayerKind::Other,
        }
    }

    /// Immutable access to the layer's weight tensor, if it has one.
    pub fn weight(&self) -> Option<&Tensor> {
        match self {
            Layer::Conv2d(c) => Some(&c.weight),
            Layer::Conv3d(c) => Some(&c.weight),
            Layer::Linear(l) => Some(&l.weight),
            Layer::Custom(c) => c.weight(),
            _ => None,
        }
    }

    /// Mutable access to the layer's weight tensor — the entry point for
    /// weight fault injection ("fault injections into weights don't have
    /// to use hooks, because weights are defined before the inference
    /// run", §II).
    pub fn weight_mut(&mut self) -> Option<&mut Tensor> {
        match self {
            Layer::Conv2d(c) => Some(&mut c.weight),
            Layer::Conv3d(c) => Some(&mut c.weight),
            Layer::Linear(l) => Some(&mut l.weight),
            Layer::Custom(c) => c.weight_mut(),
            _ => None,
        }
    }

    /// Number of arguments this layer consumes (1 or 2).
    pub fn arity(&self) -> usize {
        match self {
            Layer::Add | Layer::ConcatChannels => 2,
            _ => 1,
        }
    }

    /// Executes the layer on its inputs.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if input ranks/shapes are incompatible with the
    /// operation.
    pub fn forward(&self, inputs: &[&Tensor]) -> Result<Tensor, NnError> {
        let x = inputs[0];
        match self {
            Layer::Custom(c) => c.forward(x),
            Layer::Conv2d(c) => Ok(conv2d_im2col(x, &c.weight, c.bias.as_ref(), c.cfg)?),
            Layer::Conv3d(c) => Ok(conv3d_direct(x, &c.weight, c.bias.as_ref(), c.cfg)?),
            Layer::Linear(l) => linear_forward(x, l),
            Layer::Relu => Ok(x.map(|v| v.max(0.0))),
            Layer::LeakyRelu(slope) => {
                let s = *slope;
                Ok(x.map(move |v| if v >= 0.0 { v } else { s * v }))
            }
            Layer::Sigmoid => Ok(x.map(|v| 1.0 / (1.0 + (-v).exp()))),
            Layer::BatchNorm2d(bn) => batchnorm_forward(x, bn),
            Layer::MaxPool2d { k, cfg } => Ok(max_pool2d(x, *k, *cfg)?),
            Layer::AvgPool2d { k, cfg } => Ok(avg_pool2d(x, *k, *cfg)?),
            Layer::AdaptiveAvgPool2d(out) => Ok(adaptive_avg_pool2d(x, *out)?),
            Layer::Flatten => {
                if x.rank() < 2 {
                    return Err(NnError::BadInput {
                        layer: "flatten".into(),
                        reason: format!("rank {} < 2", x.rank()),
                    });
                }
                let n = x.dims()[0];
                let rest: usize = x.dims()[1..].iter().product();
                Ok(x.reshape(&[n, rest])?)
            }
            Layer::Add => Ok(x.add(inputs[1])?),
            Layer::ConcatChannels => concat_channels(x, inputs[1]),
            Layer::Upsample2x => upsample2x(x),
            Layer::Identity => Ok(x.clone()),
            Layer::RangeRestrict { lo, hi, mode } => {
                let (lo, hi, mode) = (*lo, *hi, *mode);
                Ok(x.map(move |v| match mode {
                    RestrictMode::Clip => {
                        if v.is_nan() {
                            lo
                        } else {
                            v.clamp(lo, hi)
                        }
                    }
                    RestrictMode::Zero => {
                        if v.is_nan() || v < lo || v > hi {
                            0.0
                        } else {
                            v
                        }
                    }
                }))
            }
        }
    }
}

fn linear_forward(x: &Tensor, l: &Linear) -> Result<Tensor, NnError> {
    linear_fused(x, l, None, None)
}

/// Linear layer forward with per-element fault injection and a
/// range-supervision clamp fused into the GEMM epilogue.
///
/// The historical per-element operation order is preserved on both
/// kernel paths: the accumulator starts at the output's bias value,
/// products accumulate in ascending input-feature order (no zero-skip
/// — the linear kernel never had one), then injection (by flat index
/// into the `[n, out_features]` output) and clamp apply in that order.
/// With `inject = None` and `clamp = None` this is the plain forward.
pub(crate) fn linear_fused(
    x: &Tensor,
    l: &Linear,
    inject: Option<&gemm::InjectMap>,
    clamp: Option<gemm::Clamp>,
) -> Result<Tensor, NnError> {
    if x.rank() != 2 {
        return Err(NnError::BadInput {
            layer: "linear".into(),
            reason: format!("expected rank 2 input, got rank {}", x.rank()),
        });
    }
    let (out_f, in_f) = (l.weight.dims()[0], l.weight.dims()[1]);
    if x.dims()[1] != in_f {
        return Err(NnError::BadInput {
            layer: "linear".into(),
            reason: format!("input features {} != weight in_features {}", x.dims()[1], in_f),
        });
    }
    // x [n, in] · W^T [in, out]; the GEMM reads W transposed in place.
    let n = x.dims()[0];
    let mut out = vec![0.0f32; n * out_f];
    let spec = gemm::GemmSpec {
        m: n,
        k: in_f,
        n: out_f,
        layout: gemm::BLayout::Transposed,
        skip_zero_a: false,
        bias: match l.bias.as_ref() {
            Some(b) => gemm::Bias::InitPerCol(b.data()),
            None => gemm::Bias::None,
        },
    };
    let epi = gemm::FusedEpilogue { base: 0, inject, clamp };
    gemm::gemm_with(x.data(), l.weight.data(), &mut out, &spec, &epi, gemm::kernel_path());
    Ok(Tensor::from_vec(out, &[n, out_f])?)
}

fn batchnorm_forward(x: &Tensor, bn: &BatchNorm2d) -> Result<Tensor, NnError> {
    if x.rank() != 4 {
        return Err(NnError::BadInput {
            layer: "batchnorm2d".into(),
            reason: format!("expected rank 4 input, got rank {}", x.rank()),
        });
    }
    let c = x.dims()[1];
    if bn.gamma.num_elements() != c {
        return Err(NnError::BadInput {
            layer: "batchnorm2d".into(),
            reason: format!("{} channels but {} gammas", c, bn.gamma.num_elements()),
        });
    }
    let (n, h, w) = (x.dims()[0], x.dims()[2], x.dims()[3]);
    let mut out = vec![0.0f32; x.num_elements()];
    let data = x.data();
    for b in 0..n {
        for ch in 0..c {
            let inv_std = 1.0 / (bn.running_var.data()[ch] + bn.eps).sqrt();
            let g = bn.gamma.data()[ch] * inv_std;
            let off = bn.beta.data()[ch] - bn.running_mean.data()[ch] * g;
            let base = (b * c + ch) * h * w;
            for i in 0..h * w {
                out[base + i] = data[base + i] * g + off;
            }
        }
    }
    Ok(Tensor::from_vec(out, x.dims())?)
}

fn concat_channels(a: &Tensor, b: &Tensor) -> Result<Tensor, NnError> {
    if a.rank() != 4 || b.rank() != 4 {
        return Err(NnError::BadInput {
            layer: "concat".into(),
            reason: "both inputs must be rank 4".into(),
        });
    }
    let (n, ca, h, w) = (a.dims()[0], a.dims()[1], a.dims()[2], a.dims()[3]);
    let cb = b.dims()[1];
    if b.dims()[0] != n || b.dims()[2] != h || b.dims()[3] != w {
        return Err(NnError::BadInput {
            layer: "concat".into(),
            reason: format!("incompatible shapes {:?} vs {:?}", a.dims(), b.dims()),
        });
    }
    let mut out = Vec::with_capacity(a.num_elements() + b.num_elements());
    let plane = h * w;
    for i in 0..n {
        out.extend_from_slice(&a.data()[i * ca * plane..(i + 1) * ca * plane]);
        out.extend_from_slice(&b.data()[i * cb * plane..(i + 1) * cb * plane]);
    }
    Ok(Tensor::from_vec(out, &[n, ca + cb, h, w])?)
}

fn upsample2x(x: &Tensor) -> Result<Tensor, NnError> {
    if x.rank() != 4 {
        return Err(NnError::BadInput {
            layer: "upsample2x".into(),
            reason: format!("expected rank 4 input, got rank {}", x.rank()),
        });
    }
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let mut out = vec![0.0f32; n * c * 4 * h * w];
    let data = x.data();
    for b in 0..n {
        for ch in 0..c {
            for y in 0..h {
                for xx in 0..w {
                    let v = data[((b * c + ch) * h + y) * w + xx];
                    for dy in 0..2 {
                        for dx in 0..2 {
                            out[((b * c + ch) * 2 * h + 2 * y + dy) * 2 * w + 2 * xx + dx] = v;
                        }
                    }
                }
            }
        }
    }
    Ok(Tensor::from_vec(out, &[n, c, 2 * h, 2 * w])?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_rng::Rng;

    #[test]
    fn layer_kinds_and_injectability() {
        let lin = Layer::Linear(Linear { weight: Tensor::zeros(&[2, 2]), bias: None });
        assert_eq!(lin.kind(), LayerKind::Linear);
        assert!(lin.kind().is_injectable());
        assert!(!Layer::Relu.kind().is_injectable());
        assert_eq!(LayerKind::Conv2d.to_string(), "conv2d");
    }

    #[test]
    fn relu_and_leaky_relu() {
        let x = Tensor::from_vec(vec![-2.0, 0.0, 3.0], &[1, 3]).unwrap();
        let r = Layer::Relu.forward(&[&x]).unwrap();
        assert_eq!(r.data(), &[0.0, 0.0, 3.0]);
        let l = Layer::LeakyRelu(0.1).forward(&[&x]).unwrap();
        assert_eq!(l.data(), &[-0.2, 0.0, 3.0]);
    }

    #[test]
    fn sigmoid_maps_to_unit_interval() {
        let x = Tensor::from_vec(vec![-100.0, 0.0, 100.0], &[3]).unwrap();
        let s = Layer::Sigmoid.forward(&[&x]).unwrap();
        assert!(s.data()[0] < 1e-6);
        assert!((s.data()[1] - 0.5).abs() < 1e-6);
        assert!(s.data()[2] > 1.0 - 1e-6);
    }

    #[test]
    fn linear_matches_hand_computation() {
        let l = Linear {
            weight: Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap(),
            bias: Some(Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap()),
        };
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = Layer::Linear(l).forward(&[&x]).unwrap();
        assert_eq!(y.data(), &[13.0, 27.0]);
    }

    #[test]
    fn linear_rejects_bad_input() {
        let l = Layer::Linear(Linear { weight: Tensor::zeros(&[2, 3]), bias: None });
        assert!(l.forward(&[&Tensor::zeros(&[1, 4])]).is_err());
        assert!(l.forward(&[&Tensor::zeros(&[4])]).is_err());
    }

    #[test]
    fn batchnorm_identity_passes_through() {
        let mut rng = Rng::from_seed(1);
        let x = Tensor::rand_normal(&mut rng, &[2, 3, 4, 4], 0.0, 1.0);
        let bn = Layer::BatchNorm2d(BatchNorm2d::identity(3));
        let y = bn.forward(&[&x]).unwrap();
        assert!(x.max_abs_diff(&y).unwrap() < 1e-4);
    }

    #[test]
    fn batchnorm_normalizes_known_stats() {
        let mut bn = BatchNorm2d::identity(1);
        bn.running_mean = Tensor::from_vec(vec![2.0], &[1]).unwrap();
        bn.running_var = Tensor::from_vec(vec![4.0], &[1]).unwrap();
        let x = Tensor::full(&[1, 1, 1, 2], 4.0);
        let y = Layer::BatchNorm2d(bn).forward(&[&x]).unwrap();
        // (4-2)/sqrt(4+eps) ~= 1.0
        assert!((y.data()[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn flatten_collapses_trailing_dims() {
        let x = Tensor::zeros(&[2, 3, 4, 5]);
        let y = Layer::Flatten.forward(&[&x]).unwrap();
        assert_eq!(y.dims(), &[2, 60]);
    }

    #[test]
    fn add_requires_same_shape() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::ones(&[2, 2]);
        let y = Layer::Add.forward(&[&a, &b]).unwrap();
        assert!(y.data().iter().all(|&v| v == 2.0));
        let c = Tensor::ones(&[3]);
        assert!(Layer::Add.forward(&[&a, &c]).is_err());
    }

    #[test]
    fn concat_stacks_channels() {
        let a = Tensor::full(&[1, 1, 2, 2], 1.0);
        let b = Tensor::full(&[1, 2, 2, 2], 2.0);
        let y = Layer::ConcatChannels.forward(&[&a, &b]).unwrap();
        assert_eq!(y.dims(), &[1, 3, 2, 2]);
        assert_eq!(y.get(&[0, 0, 0, 0]), 1.0);
        assert_eq!(y.get(&[0, 1, 0, 0]), 2.0);
        assert_eq!(y.get(&[0, 2, 1, 1]), 2.0);
    }

    #[test]
    fn upsample_doubles_spatial_dims() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = Layer::Upsample2x.forward(&[&x]).unwrap();
        assert_eq!(y.dims(), &[1, 1, 4, 4]);
        assert_eq!(y.get(&[0, 0, 0, 0]), 1.0);
        assert_eq!(y.get(&[0, 0, 0, 1]), 1.0);
        assert_eq!(y.get(&[0, 0, 1, 1]), 1.0);
        assert_eq!(y.get(&[0, 0, 3, 3]), 4.0);
    }

    #[test]
    fn weight_accessors_cover_injectable_layers() {
        let mut conv = Layer::Conv2d(Conv2d {
            weight: Tensor::zeros(&[1, 1, 1, 1]),
            bias: None,
            cfg: ConvConfig::default(),
        });
        assert!(conv.weight().is_some());
        conv.weight_mut().unwrap().set(&[0, 0, 0, 0], 5.0);
        assert_eq!(conv.weight().unwrap().get(&[0, 0, 0, 0]), 5.0);
        assert!(Layer::Relu.weight().is_none());
    }

    #[test]
    fn arity_is_two_only_for_binary_ops() {
        assert_eq!(Layer::Add.arity(), 2);
        assert_eq!(Layer::ConcatChannels.arity(), 2);
        assert_eq!(Layer::Relu.arity(), 1);
    }

    #[test]
    fn identity_is_identity() {
        let x = Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap();
        assert_eq!(Layer::Identity.forward(&[&x]).unwrap(), x);
    }

    #[test]
    fn ranger_clips_to_bounds() {
        let x = Tensor::from_vec(vec![-5.0, 0.5, 99.0, f32::NAN, f32::INFINITY], &[5]).unwrap();
        let l = Layer::RangeRestrict { lo: -1.0, hi: 2.0, mode: RestrictMode::Clip };
        let y = l.forward(&[&x]).unwrap();
        assert_eq!(y.data(), &[-1.0, 0.5, 2.0, -1.0, 2.0]);
    }

    #[test]
    fn clipper_zeroes_out_of_range() {
        let x = Tensor::from_vec(vec![-5.0, 0.5, 99.0, f32::NAN, f32::NEG_INFINITY], &[5]).unwrap();
        let l = Layer::RangeRestrict { lo: -1.0, hi: 2.0, mode: RestrictMode::Zero };
        let y = l.forward(&[&x]).unwrap();
        assert_eq!(y.data(), &[0.0, 0.5, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn range_restrict_is_not_injectable() {
        let l = Layer::RangeRestrict { lo: 0.0, hi: 1.0, mode: RestrictMode::Clip };
        assert_eq!(l.kind(), LayerKind::Other);
        assert!(l.weight().is_none());
    }

    #[test]
    fn in_range_values_pass_unchanged() {
        let x = Tensor::from_vec(vec![0.1, 0.9], &[2]).unwrap();
        for mode in [RestrictMode::Clip, RestrictMode::Zero] {
            let l = Layer::RangeRestrict { lo: 0.0, hi: 1.0, mode };
            assert_eq!(l.forward(&[&x]).unwrap(), x);
        }
    }
}
