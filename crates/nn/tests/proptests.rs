//! Property-based tests for network graph and detection-geometry
//! invariants, running on the in-tree `alfi-check` harness.

use alfi_check::{check_with, gen};
use alfi_nn::detection::{match_detections, nms, BBox, Detection};
use alfi_nn::models::{alexnet, ModelConfig};
use alfi_nn::{Layer, LayerCtx, RestrictMode};
use alfi_rng::Rng;
use alfi_tensor::Tensor;
use std::sync::Arc;

const CASES: usize = 64;

fn arb_bbox(rng: &mut Rng) -> BBox {
    let x: f32 = rng.gen_range(0.0f32..100.0);
    let y: f32 = rng.gen_range(0.0f32..100.0);
    let w: f32 = rng.gen_range(0.1f32..50.0);
    let h: f32 = rng.gen_range(0.1f32..50.0);
    BBox::new(x, y, x + w, y + h)
}

fn arb_detection(rng: &mut Rng) -> Detection {
    let bbox = arb_bbox(rng);
    let score: f32 = rng.gen_range(0.0f32..=1.0);
    let class_id: usize = rng.gen_range(0usize..5);
    Detection { bbox, score, class_id }
}

/// IoU is symmetric, bounded in [0, 1], and 1 only for identical boxes.
#[test]
fn iou_properties() {
    check_with(CASES, "iou_properties", |rng| {
        let a = arb_bbox(rng);
        let b = arb_bbox(rng);
        let ab = a.iou(&b);
        let ba = b.iou(&a);
        assert!((ab - ba).abs() < 1e-6);
        assert!((0.0..=1.0).contains(&ab));
        assert!((a.iou(&a) - 1.0).abs() < 1e-6);
    });
}

/// NMS output is a subset of its input, sorted by descending score,
/// and contains no same-class pair above the IoU threshold.
#[test]
fn nms_invariants() {
    check_with(CASES, "nms_invariants", |rng| {
        let dets = gen::vec_of(rng, 0..25, arb_detection);
        let thr: f32 = rng.gen_range(0.1f32..0.9);
        let kept = nms(dets.clone(), thr);
        assert!(kept.len() <= dets.len());
        for k in &kept {
            assert!(dets.iter().any(|d| d == k));
        }
        for w in kept.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        for (i, a) in kept.iter().enumerate() {
            for b in kept.iter().skip(i + 1) {
                if a.class_id == b.class_id {
                    assert!(a.bbox.iou(&b.bbox) <= thr + 1e-6);
                }
            }
        }
    });
}

/// Matching is one-to-one, class-consistent and respects the IoU
/// threshold.
#[test]
fn matching_invariants() {
    check_with(CASES, "matching_invariants", |rng| {
        let a = gen::vec_of(rng, 0..12, arb_detection);
        let b = gen::vec_of(rng, 0..12, arb_detection);
        let thr: f32 = rng.gen_range(0.1f32..0.9);
        let pairs = match_detections(&a, &b, thr);
        let mut used_a = std::collections::HashSet::new();
        let mut used_b = std::collections::HashSet::new();
        for (i, j) in pairs {
            assert!(used_a.insert(i));
            assert!(used_b.insert(j));
            assert_eq!(a[i].class_id, b[j].class_id);
            assert!(a[i].bbox.iou(&b[j].bbox) >= thr - 1e-6);
        }
    });
}

/// Forward passes are deterministic functions of (weights, input).
#[test]
fn forward_is_deterministic() {
    check_with(CASES, "forward_is_deterministic", |rng| {
        let seed = gen::any_u64(rng);
        let cfg = ModelConfig { input_hw: 16, width_mult: 0.0625, seed, ..ModelConfig::default() };
        let net = alexnet(&cfg);
        let mut data_rng = Rng::from_seed(seed);
        let x = Tensor::rand_uniform(&mut data_rng, &cfg.input_dims(1), 0.0, 1.0);
        let a = net.forward(&x).unwrap();
        let b = net.forward(&x).unwrap();
        assert_eq!(a.data(), b.data());
    });
}

/// Inserting a wide-open RangeRestrict after any node never changes
/// the output (graph-surgery correctness on a real model).
#[test]
fn insert_identity_node_preserves_output() {
    check_with(CASES, "insert_identity_node_preserves_output", |rng| {
        let node_seed = gen::any_u64(rng) as usize;
        let cfg = ModelConfig { input_hw: 16, width_mult: 0.0625, seed: 5, ..ModelConfig::default() };
        let net = alexnet(&cfg);
        let x = Tensor::ones(&cfg.input_dims(1));
        let before = net.forward(&x).unwrap();
        let mut patched = net.clone();
        let target = node_seed % patched.num_nodes();
        patched
            .insert_after(
                target,
                "probe",
                Layer::RangeRestrict {
                    lo: f32::NEG_INFINITY,
                    hi: f32::INFINITY,
                    mode: RestrictMode::Clip,
                },
            )
            .unwrap();
        let after = patched.forward(&x).unwrap();
        assert_eq!(before.data(), after.data());
    });
}

/// Hooks observe exactly the value the next layer consumes: doubling
/// a node's output via a hook equals doubling it via an inserted
/// scaling computation.
#[test]
fn hook_mutation_equals_graph_mutation() {
    check_with(CASES, "hook_mutation_equals_graph_mutation", |rng| {
        let scale: f32 = rng.gen_range(0.25f32..4.0);
        let cfg = ModelConfig { input_hw: 16, width_mult: 0.0625, seed: 9, ..ModelConfig::default() };
        let base = alexnet(&cfg);
        let x = Tensor::ones(&cfg.input_dims(1));
        let node = base.node_by_name("features.conv1").unwrap();

        let mut hooked = base.clone();
        hooked
            .register_hook(
                node,
                Arc::new(move |_: &LayerCtx, out: &mut Tensor| out.map_inplace(|v| v * scale)),
            )
            .unwrap();
        let via_hook = hooked.forward(&x).unwrap();

        let mut scaled = base.clone();
        let w = scaled.layer_mut(node).unwrap();
        if let Layer::Conv2d(c) = w {
            c.weight.map_inplace(|v| v * scale);
            if let Some(b) = &mut c.bias {
                b.map_inplace(|v| v * scale);
            }
        }
        let via_weights = scaled.forward(&x).unwrap();
        assert!(via_hook.max_abs_diff(&via_weights).unwrap() < 2e-2 * scale.max(1.0));
    });
}
