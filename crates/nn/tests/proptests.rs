//! Property-based tests for network graph and detection-geometry
//! invariants.

use alfi_nn::detection::{match_detections, nms, BBox, Detection};
use alfi_nn::models::{alexnet, ModelConfig};
use alfi_nn::{Layer, LayerCtx, RestrictMode};
use alfi_tensor::Tensor;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_bbox() -> impl Strategy<Value = BBox> {
    (0.0f32..100.0, 0.0f32..100.0, 0.1f32..50.0, 0.1f32..50.0)
        .prop_map(|(x, y, w, h)| BBox::new(x, y, x + w, y + h))
}

fn arb_detection() -> impl Strategy<Value = Detection> {
    (arb_bbox(), 0.0f32..=1.0, 0usize..5)
        .prop_map(|(bbox, score, class_id)| Detection { bbox, score, class_id })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// IoU is symmetric, bounded in [0, 1], and 1 only for identical
    /// boxes.
    #[test]
    fn iou_properties(a in arb_bbox(), b in arb_bbox()) {
        let ab = a.iou(&b);
        let ba = b.iou(&a);
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-6);
    }

    /// NMS output is a subset of its input, sorted by descending score,
    /// and contains no same-class pair above the IoU threshold.
    #[test]
    fn nms_invariants(dets in proptest::collection::vec(arb_detection(), 0..25), thr in 0.1f32..0.9) {
        let kept = nms(dets.clone(), thr);
        prop_assert!(kept.len() <= dets.len());
        for k in &kept {
            prop_assert!(dets.iter().any(|d| d == k));
        }
        for w in kept.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        for (i, a) in kept.iter().enumerate() {
            for b in kept.iter().skip(i + 1) {
                if a.class_id == b.class_id {
                    prop_assert!(a.bbox.iou(&b.bbox) <= thr + 1e-6);
                }
            }
        }
    }

    /// Matching is one-to-one, class-consistent and respects the IoU
    /// threshold.
    #[test]
    fn matching_invariants(
        a in proptest::collection::vec(arb_detection(), 0..12),
        b in proptest::collection::vec(arb_detection(), 0..12),
        thr in 0.1f32..0.9,
    ) {
        let pairs = match_detections(&a, &b, thr);
        let mut used_a = std::collections::HashSet::new();
        let mut used_b = std::collections::HashSet::new();
        for (i, j) in pairs {
            prop_assert!(used_a.insert(i));
            prop_assert!(used_b.insert(j));
            prop_assert_eq!(a[i].class_id, b[j].class_id);
            prop_assert!(a[i].bbox.iou(&b[j].bbox) >= thr - 1e-6);
        }
    }

    /// Forward passes are deterministic functions of (weights, input).
    #[test]
    fn forward_is_deterministic(seed in any::<u64>()) {
        let cfg = ModelConfig { input_hw: 16, width_mult: 0.0625, seed, ..ModelConfig::default() };
        let net = alexnet(&cfg);
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let x = Tensor::rand_uniform::<rand::rngs::StdRng>(&mut rng, &cfg.input_dims(1), 0.0, 1.0);
        let a = net.forward(&x).unwrap();
        let b = net.forward(&x).unwrap();
        prop_assert_eq!(a.data(), b.data());
    }

    /// Inserting a wide-open RangeRestrict after any node never changes
    /// the output (graph-surgery correctness on a real model).
    #[test]
    fn insert_identity_node_preserves_output(node_seed in any::<usize>()) {
        let cfg = ModelConfig { input_hw: 16, width_mult: 0.0625, seed: 5, ..ModelConfig::default() };
        let net = alexnet(&cfg);
        let x = Tensor::ones(&cfg.input_dims(1));
        let before = net.forward(&x).unwrap();
        let mut patched = net.clone();
        let target = node_seed % patched.num_nodes();
        patched
            .insert_after(
                target,
                "probe",
                Layer::RangeRestrict {
                    lo: f32::NEG_INFINITY,
                    hi: f32::INFINITY,
                    mode: RestrictMode::Clip,
                },
            )
            .unwrap();
        let after = patched.forward(&x).unwrap();
        prop_assert_eq!(before.data(), after.data());
    }

    /// Hooks observe exactly the value the next layer consumes: doubling
    /// a node's output via a hook equals doubling it via an inserted
    /// scaling computation.
    #[test]
    fn hook_mutation_equals_graph_mutation(scale in 0.25f32..4.0) {
        let cfg = ModelConfig { input_hw: 16, width_mult: 0.0625, seed: 9, ..ModelConfig::default() };
        let base = alexnet(&cfg);
        let x = Tensor::ones(&cfg.input_dims(1));
        let node = base.node_by_name("features.conv1").unwrap();

        let mut hooked = base.clone();
        hooked
            .register_hook(
                node,
                Arc::new(move |_: &LayerCtx, out: &mut Tensor| out.map_inplace(|v| v * scale)),
            )
            .unwrap();
        let via_hook = hooked.forward(&x).unwrap();

        let mut scaled = base.clone();
        let w = scaled.layer_mut(node).unwrap();
        if let Layer::Conv2d(c) = w {
            c.weight.map_inplace(|v| v * scale);
            if let Some(b) = &mut c.bias {
                b.map_inplace(|v| v * scale);
            }
        }
        let via_weights = scaled.forward(&x).unwrap();
        prop_assert!(via_hook.max_abs_diff(&via_weights).unwrap() < 2e-2 * scale.max(1.0));
    }
}
