//! Property-based tests for the fault-injection core invariants.

use alfi_core::{
    arm_faults, corrupt_value, decode_fault_matrix, encode_fault_matrix, resolve_targets,
    FaultMatrix, FaultRecord, FaultValue, Ptfiwrap, RunTrace, TraceEntry,
};
use alfi_core::persist::crc32;
use alfi_core::AppliedFault;
use alfi_nn::models::{alexnet, ModelConfig};
use alfi_scenario::{FaultCount, FaultDuration, FaultMode, InjectionPolicy, InjectionTarget, Scenario};
use alfi_tensor::bits::FlipDirection;
use proptest::prelude::*;

fn model_cfg() -> ModelConfig {
    ModelConfig { input_hw: 16, width_mult: 0.0625, seed: 1, ..ModelConfig::default() }
}

fn arb_fault_value() -> impl Strategy<Value = FaultValue> {
    prop_oneof![
        (0u8..32).prop_map(FaultValue::BitFlip),
        ((0u8..32), any::<bool>())
            .prop_map(|(pos, high)| FaultValue::StuckAt { pos, high }),
        (-1.0e6f32..1.0e6).prop_map(FaultValue::Replace),
    ]
}

fn arb_record() -> impl Strategy<Value = FaultRecord> {
    (
        0usize..16,
        0usize..64,
        0usize..512,
        0usize..512,
        proptest::option::of(0usize..16),
        0usize..64,
        0usize..64,
        arb_fault_value(),
    )
        .prop_map(|(batch, layer, channel, channel_in, depth, height, width, value)| FaultRecord {
            batch,
            layer,
            channel,
            channel_in,
            depth,
            height,
            width,
            value,
        })
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        1usize..20,                               // dataset_size
        1usize..3,                                // num_runs
        1usize..4,                                // faults per image
        1usize..4,                                // batch_size
        any::<bool>(),                            // neurons vs weights
        any::<bool>(),                            // weighted selection
        0u8..32,                                  // bit lo
        any::<u64>(),                             // seed
        0usize..3,                                // policy
        any::<bool>(),                            // transient/permanent
    )
        .prop_map(
            |(ds, runs, fpi, bs, neurons, weighted, bit_lo, seed, policy, transient)| Scenario {
                dataset_size: ds,
                num_runs: runs,
                faults_per_image: FaultCount::Fixed(fpi),
                batch_size: bs,
                injection_target: if neurons {
                    InjectionTarget::Neurons
                } else {
                    InjectionTarget::Weights
                },
                injection_policy: match policy {
                    0 => InjectionPolicy::PerImage,
                    1 => InjectionPolicy::PerBatch,
                    _ => InjectionPolicy::PerEpoch,
                },
                fault_duration: if transient {
                    FaultDuration::Transient
                } else {
                    FaultDuration::Permanent
                },
                fault_mode: FaultMode::BitFlip { bit_range: (bit_lo, 31) },
                layer_types: Scenario::default().layer_types,
                layer_range: None,
                weighted_layer_selection: weighted,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fault matrix always has exactly a·b·c records and every record
    /// stays within the bounds of its target tensor, for arbitrary
    /// scenarios.
    #[test]
    fn matrix_size_and_bounds_hold_for_random_scenarios(s in arb_scenario()) {
        let model = alexnet(&model_cfg());
        let targets = resolve_targets(
            &[&model],
            &s,
            &[Some(model_cfg().input_dims(s.batch_size))],
        ).unwrap();
        let m = FaultMatrix::generate(&s, &targets).unwrap();
        let fpi = match s.faults_per_image { FaultCount::Fixed(n) => n, _ => unreachable!() };
        prop_assert_eq!(m.len(), s.dataset_size * s.num_runs * fpi);
        for r in &m.records {
            prop_assert!(r.layer < targets.len());
            prop_assert!(r.batch < s.batch_size);
            let t = &targets[r.layer];
            match s.injection_target {
                InjectionTarget::Weights => {
                    let d = &t.weight_dims;
                    prop_assert!(r.channel < d[0]);
                    if d.len() == 4 {
                        prop_assert!(r.channel_in < d[1] && r.height < d[2] && r.width < d[3]);
                    } else {
                        prop_assert!(r.width < d[1]);
                    }
                }
                InjectionTarget::Neurons => {
                    let d = t.output_dims.as_ref().unwrap();
                    match d.len() {
                        2 => prop_assert!(r.width < d[1]),
                        4 => prop_assert!(r.channel < d[1] && r.height < d[2] && r.width < d[3]),
                        _ => prop_assert!(false, "unexpected rank"),
                    }
                }
            }
        }
    }

    /// Generation is a pure function of (scenario, targets).
    #[test]
    fn matrix_generation_is_deterministic(s in arb_scenario()) {
        let model = alexnet(&model_cfg());
        let targets = resolve_targets(
            &[&model], &s, &[Some(model_cfg().input_dims(s.batch_size))],
        ).unwrap();
        let a = FaultMatrix::generate(&s, &targets).unwrap();
        let b = FaultMatrix::generate(&s, &targets).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Binary encode/decode round-trips arbitrary record sets exactly.
    #[test]
    fn fault_file_round_trips(
        records in proptest::collection::vec(arb_record(), 0..60),
        neurons in any::<bool>(),
        fpi in 1usize..5,
    ) {
        let m = FaultMatrix {
            records,
            target: if neurons { InjectionTarget::Neurons } else { InjectionTarget::Weights },
            faults_per_image: fpi,
        };
        let bytes = encode_fault_matrix(&m);
        prop_assert_eq!(decode_fault_matrix(&bytes).unwrap(), m);
    }

    /// Any single corrupted byte in the body is caught by the checksum.
    #[test]
    fn single_byte_corruption_is_always_detected(
        records in proptest::collection::vec(arb_record(), 1..20),
        flip_byte in any::<u8>(),
        pos_seed in any::<usize>(),
    ) {
        prop_assume!(flip_byte != 0);
        let m = FaultMatrix {
            records,
            target: InjectionTarget::Weights,
            faults_per_image: 1,
        };
        let mut bytes = encode_fault_matrix(&m);
        // corrupt one body byte (skip the 24-byte header so the magic /
        // length checks don't shadow the checksum)
        let body_start = 24;
        let idx = body_start + pos_seed % (bytes.len() - body_start);
        bytes[idx] ^= flip_byte;
        prop_assert!(decode_fault_matrix(&bytes).is_err());
    }

    /// Trace files round-trip arbitrary entries.
    #[test]
    fn trace_round_trips(
        entries in proptest::collection::vec(
            (arb_record(), any::<f32>(), any::<f32>(), 0u8..3, any::<u32>(), any::<u32>(), any::<u64>()),
            0..40,
        )
    ) {
        let trace = RunTrace {
            entries: entries
                .into_iter()
                .map(|(record, original, corrupted, dir, nan, inf, image_id)| TraceEntry {
                    image_id,
                    applied: AppliedFault {
                        record,
                        original,
                        corrupted,
                        direction: match dir {
                            0 => None,
                            1 => Some(FlipDirection::ZeroToOne),
                            _ => Some(FlipDirection::OneToZero),
                        },
                    },
                    output_nan_count: nan,
                    output_inf_count: inf,
                })
                .collect(),
        };
        let back = RunTrace::decode(&trace.encode()).unwrap();
        // NaN-containing floats break PartialEq; compare bitwise.
        prop_assert_eq!(trace.entries.len(), back.entries.len());
        for (a, b) in trace.entries.iter().zip(back.entries.iter()) {
            prop_assert_eq!(a.image_id, b.image_id);
            prop_assert_eq!(a.applied.record, b.applied.record);
            prop_assert_eq!(a.applied.original.to_bits(), b.applied.original.to_bits());
            prop_assert_eq!(a.applied.corrupted.to_bits(), b.applied.corrupted.to_bits());
            prop_assert_eq!(a.applied.direction, b.applied.direction);
        }
    }

    /// corrupt_value: bit flips differ in exactly one bit; stuck-at is
    /// idempotent; replace returns the replacement.
    #[test]
    fn corrupt_value_properties(v in any::<f32>(), fv in arb_fault_value()) {
        let (c, dir) = corrupt_value(v, fv);
        match fv {
            FaultValue::BitFlip(_) => {
                prop_assert_eq!((c.to_bits() ^ v.to_bits()).count_ones(), 1);
                prop_assert!(dir.is_some());
            }
            FaultValue::StuckAt { .. } => {
                let (c2, _) = corrupt_value(c, fv);
                prop_assert_eq!(c.to_bits(), c2.to_bits());
                prop_assert!(dir.is_none());
            }
            FaultValue::Replace(r) => {
                prop_assert_eq!(c.to_bits(), r.to_bits());
            }
        }
    }

    /// Arm + disarm of arbitrary weight fault sets restores the model
    /// bit-exactly, even with duplicate/overlapping fault locations.
    #[test]
    fn arm_disarm_restores_weights(seed in any::<u64>(), k in 1usize..12) {
        let mut model = alexnet(&model_cfg());
        let before: Vec<u32> = model
            .nodes()
            .iter()
            .filter_map(|n| n.layer.weight())
            .flat_map(|w| w.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>())
            .collect();
        let mut s = Scenario::default();
        s.dataset_size = 1;
        s.faults_per_image = FaultCount::Fixed(k);
        s.injection_target = InjectionTarget::Weights;
        s.seed = seed;
        let targets = resolve_targets(
            &[&model], &s, &[Some(model_cfg().input_dims(1))],
        ).unwrap();
        let matrix = FaultMatrix::generate(&s, &targets).unwrap();
        let armed = {
            let mut nets = [&mut model];
            arm_faults(&mut nets, &targets, &matrix.records, InjectionTarget::Weights).unwrap()
        };
        {
            let mut nets = [&mut model];
            armed.disarm(&mut nets);
        }
        let after: Vec<u32> = model
            .nodes()
            .iter()
            .filter_map(|n| n.layer.weight())
            .flat_map(|w| w.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>())
            .collect();
        prop_assert_eq!(before, after);
    }

    /// The fimodel iterator always yields exactly `num_slots` models.
    #[test]
    fn iterator_yields_num_slots(s in arb_scenario()) {
        let model = alexnet(&model_cfg());
        let mut wrapper = Ptfiwrap::new(
            &model, s, &model_cfg().input_dims(1),
        ).unwrap();
        let slots = wrapper.fault_matrix().num_slots();
        prop_assert_eq!(wrapper.fimodel_iter().count(), slots);
    }

    /// CRC32 differs for any single-bit difference (on small inputs).
    #[test]
    fn crc32_detects_single_bit_flips(data in proptest::collection::vec(any::<u8>(), 1..64), byte in 0usize..64, bit in 0u8..8) {
        let mut mutated = data.clone();
        let idx = byte % mutated.len();
        mutated[idx] ^= 1 << bit;
        prop_assert_ne!(crc32(&data), crc32(&mutated));
    }
}
