//! Property-based tests for the fault-injection core invariants,
//! running on the in-tree `alfi-check` harness.

use alfi_check::{assume, check_with, gen};
use alfi_core::persist::crc32;
use alfi_core::AppliedFault;
use alfi_core::{
    arm_faults, corrupt_value, decode_fault_matrix, encode_fault_matrix, resolve_targets,
    FaultMatrix, FaultModel, FaultRecord, FaultValue, Ptfiwrap, RunTrace, TraceEntry,
};
use alfi_nn::models::{alexnet, ModelConfig};
use alfi_rng::Rng;
use alfi_scenario::{
    FaultCount, FaultDuration, FaultMode, InjectionPolicy, InjectionTarget, LayerOverride, Scenario,
};
use alfi_tensor::bits::FlipDirection;
use std::collections::BTreeMap;

const CASES: usize = 24;

fn model_cfg() -> ModelConfig {
    ModelConfig { input_hw: 16, width_mult: 0.0625, seed: 1, ..ModelConfig::default() }
}

fn arb_fault_value(rng: &mut Rng) -> FaultValue {
    match rng.gen_range(0u8..4) {
        0 => FaultValue::BitFlip(rng.gen_range(0u8..32)),
        1 => FaultValue::StuckAt { pos: rng.gen_range(0u8..32), high: gen::any_bool(rng) },
        2 => {
            let bits: u8 = rng.gen_range(2u8..17);
            FaultValue::QuantStep {
                bit: rng.gen_range(0u8..bits),
                bits,
                amax: rng.gen_range(0.01f32..1000.0),
            }
        }
        _ => FaultValue::Replace(rng.gen_range(-1.0e6f32..1.0e6)),
    }
}

fn arb_record(rng: &mut Rng) -> FaultRecord {
    FaultRecord {
        batch: rng.gen_range(0usize..16),
        layer: rng.gen_range(0usize..64),
        channel: rng.gen_range(0usize..512),
        channel_in: rng.gen_range(0usize..512),
        depth: if gen::any_bool(rng) { Some(rng.gen_range(0usize..16)) } else { None },
        height: rng.gen_range(0usize..64),
        width: rng.gen_range(0usize..64),
        value: arb_fault_value(rng),
    }
}

fn arb_scenario(rng: &mut Rng) -> Scenario {
    Scenario {
        dataset_size: rng.gen_range(1usize..20),
        num_runs: rng.gen_range(1usize..3),
        faults_per_image: FaultCount::Fixed(rng.gen_range(1usize..4)),
        batch_size: rng.gen_range(1usize..4),
        injection_target: if gen::any_bool(rng) {
            InjectionTarget::Neurons
        } else {
            InjectionTarget::Weights
        },
        injection_policy: match rng.gen_range(0usize..3) {
            0 => InjectionPolicy::PerImage,
            1 => InjectionPolicy::PerBatch,
            _ => InjectionPolicy::PerEpoch,
        },
        fault_duration: if gen::any_bool(rng) {
            FaultDuration::Transient
        } else {
            FaultDuration::Permanent
        },
        fault_mode: FaultMode::BitFlip { bit_range: (rng.gen_range(0u8..32), 31) },
        layer_types: Scenario::default().layer_types,
        layer_range: None,
        weighted_layer_selection: gen::any_bool(rng),
        seed: gen::any_u64(rng),
        stop_policy: None,
        artifact_format: None,
        report: None,
        layer_overrides: BTreeMap::new(),
    }
}

/// The fault matrix always has exactly a·b·c records and every record
/// stays within the bounds of its target tensor, for arbitrary
/// scenarios.
#[test]
fn matrix_size_and_bounds_hold_for_random_scenarios() {
    check_with(CASES, "matrix_size_and_bounds_hold_for_random_scenarios", |rng| {
        let s = arb_scenario(rng);
        let model = alexnet(&model_cfg());
        let targets =
            resolve_targets(&[&model], &s, &[Some(model_cfg().input_dims(s.batch_size))]).unwrap();
        let m = FaultMatrix::generate(&s, &targets).unwrap();
        let fpi = match s.faults_per_image {
            FaultCount::Fixed(n) => n,
            _ => unreachable!(),
        };
        assert_eq!(m.len(), s.dataset_size * s.num_runs * fpi);
        for r in &m.records {
            assert!(r.layer < targets.len());
            assert!(r.batch < s.batch_size);
            let t = &targets[r.layer];
            match s.injection_target {
                InjectionTarget::Weights => {
                    let d = &t.weight_dims;
                    assert!(r.channel < d[0]);
                    if d.len() == 4 {
                        assert!(r.channel_in < d[1] && r.height < d[2] && r.width < d[3]);
                    } else {
                        assert!(r.width < d[1]);
                    }
                }
                InjectionTarget::Neurons => {
                    let d = t.output_dims.as_ref().unwrap();
                    match d.len() {
                        2 => assert!(r.width < d[1]),
                        4 => assert!(r.channel < d[1] && r.height < d[2] && r.width < d[3]),
                        _ => panic!("unexpected rank"),
                    }
                }
            }
        }
    });
}

/// Generation is a pure function of (scenario, targets).
#[test]
fn matrix_generation_is_deterministic() {
    check_with(CASES, "matrix_generation_is_deterministic", |rng| {
        let s = arb_scenario(rng);
        let model = alexnet(&model_cfg());
        let targets =
            resolve_targets(&[&model], &s, &[Some(model_cfg().input_dims(s.batch_size))]).unwrap();
        let a = FaultMatrix::generate(&s, &targets).unwrap();
        let b = FaultMatrix::generate(&s, &targets).unwrap();
        assert_eq!(a, b);
    });
}

/// Binary encode/decode round-trips arbitrary record sets exactly.
#[test]
fn fault_file_round_trips() {
    check_with(CASES, "fault_file_round_trips", |rng| {
        let records = gen::vec_of(rng, 0..60, arb_record);
        let neurons = gen::any_bool(rng);
        let fpi: usize = rng.gen_range(1usize..5);
        let m = FaultMatrix {
            records,
            target: if neurons { InjectionTarget::Neurons } else { InjectionTarget::Weights },
            faults_per_image: fpi,
        };
        let bytes = encode_fault_matrix(&m);
        assert_eq!(decode_fault_matrix(&bytes).unwrap(), m);
    });
}

/// Any single corrupted byte in the body is caught by the checksum.
#[test]
fn single_byte_corruption_is_always_detected() {
    check_with(CASES, "single_byte_corruption_is_always_detected", |rng| {
        let records = gen::vec_of(rng, 1..20, arb_record);
        let flip_byte = gen::any_u64(rng) as u8;
        let pos_seed = gen::any_u64(rng) as usize;
        assume!(flip_byte != 0);
        let m = FaultMatrix { records, target: InjectionTarget::Weights, faults_per_image: 1 };
        let mut bytes = encode_fault_matrix(&m);
        // corrupt one body byte (skip the 24-byte header so the magic /
        // length checks don't shadow the checksum)
        let body_start = 24;
        let idx = body_start + pos_seed % (bytes.len() - body_start);
        bytes[idx] ^= flip_byte;
        assert!(decode_fault_matrix(&bytes).is_err());
    });
}

/// Trace files round-trip arbitrary entries.
#[test]
fn trace_round_trips() {
    check_with(CASES, "trace_round_trips", |rng| {
        let entries: Vec<TraceEntry> = gen::vec_of(rng, 0..40, |rng| TraceEntry {
            image_id: gen::any_u64(rng),
            applied: AppliedFault {
                record: arb_record(rng),
                original: gen::any_f32(rng),
                corrupted: gen::any_f32(rng),
                direction: match rng.gen_range(0u8..3) {
                    0 => None,
                    1 => Some(FlipDirection::ZeroToOne),
                    _ => Some(FlipDirection::OneToZero),
                },
            },
            output_nan_count: gen::any_u64(rng) as u32,
            output_inf_count: gen::any_u64(rng) as u32,
        });
        let trace = RunTrace { entries };
        let back = RunTrace::decode(&trace.encode()).unwrap();
        // NaN-containing floats break PartialEq; compare bitwise.
        assert_eq!(trace.entries.len(), back.entries.len());
        for (a, b) in trace.entries.iter().zip(back.entries.iter()) {
            assert_eq!(a.image_id, b.image_id);
            assert_eq!(a.applied.record, b.applied.record);
            assert_eq!(a.applied.original.to_bits(), b.applied.original.to_bits());
            assert_eq!(a.applied.corrupted.to_bits(), b.applied.corrupted.to_bits());
            assert_eq!(a.applied.direction, b.applied.direction);
        }
    });
}

/// corrupt_value: bit flips differ in exactly one bit; stuck-at is
/// idempotent; replace returns the replacement.
#[test]
fn corrupt_value_properties() {
    check_with(CASES, "corrupt_value_properties", |rng| {
        let v = gen::any_f32(rng);
        let fv = arb_fault_value(rng);
        let (c, dir) = corrupt_value(v, fv);
        match fv {
            FaultValue::BitFlip(_) => {
                assert_eq!((c.to_bits() ^ v.to_bits()).count_ones(), 1);
                assert!(dir.is_some());
            }
            FaultValue::StuckAt { .. } => {
                let (c2, _) = corrupt_value(c, fv);
                assert_eq!(c.to_bits(), c2.to_bits());
                assert!(dir.is_none());
            }
            FaultValue::Replace(r) => {
                assert_eq!(c.to_bits(), r.to_bits());
            }
            FaultValue::QuantStep { bits, amax, .. } => {
                // The perturbed value stays inside the (slightly
                // widened) quantization range and carries a direction.
                assert!(c.is_finite());
                let qmax = ((1i32 << (bits.clamp(2, 31) - 1)) - 1) as f32;
                let step = amax / qmax;
                assert!(c.abs() <= amax + qmax * step, "{c} vs amax {amax}");
                assert!(dir.is_some());
            }
        }
    });
}

/// Per-layer rate maps always renormalize to a unit simplex: random
/// subsets of layers overridden with random rates in [0, 1] yield
/// plan weights that sum to 1, are non-negative, and reproduce the
/// requested rates (directly when the overridden mass stays below 1,
/// proportionally once it saturates).
#[test]
fn rate_maps_renormalize_deterministically() {
    check_with(CASES, "rate_maps_renormalize_deterministically", |rng| {
        let mut s = arb_scenario(rng);
        let model = alexnet(&model_cfg());
        let targets =
            resolve_targets(&[&model], &s, &[Some(model_cfg().input_dims(s.batch_size))]).unwrap();
        let n = targets.len();
        let k: usize = rng.gen_range(1..=n);
        let mut rates: BTreeMap<usize, f64> = BTreeMap::new();
        while rates.len() < k {
            rates.insert(rng.gen_range(0..n), rng.gen_range(0.001f64..1.0));
        }
        s.layer_overrides = rates
            .iter()
            .map(|(&i, &r)| {
                (i.to_string(), LayerOverride { rate: Some(r), ..Default::default() })
            })
            .collect();
        let m = FaultModel::resolve(&s, &targets).unwrap();
        assert!(m.is_multi_resolution());
        let w = m.weights();
        assert!(w.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        let overridden_sum: f64 = rates.values().sum();
        for (&i, &r) in &rates {
            let expect = if k == n || overridden_sum >= 1.0 { r / overridden_sum } else { r };
            assert!((w[i] - expect).abs() < 1e-9, "layer {i}: {} vs {expect}", w[i]);
        }
        // Resolution is a pure function of (scenario, targets).
        assert_eq!(FaultModel::resolve(&s, &targets).unwrap(), m);
    });
}

/// Unknown layer-name patterns are always rejected, regardless of the
/// other overrides present.
#[test]
fn rate_maps_reject_unknown_layer_names() {
    check_with(CASES, "rate_maps_reject_unknown_layer_names", |rng| {
        let mut s = arb_scenario(rng);
        let model = alexnet(&model_cfg());
        let targets =
            resolve_targets(&[&model], &s, &[Some(model_cfg().input_dims(s.batch_size))]).unwrap();
        let mut overrides = BTreeMap::from([(
            format!("ghost.{}", rng.gen_range(0u64..1000)),
            LayerOverride { rate: Some(rng.gen_range(0.01f64..1.0)), ..Default::default() },
        )]);
        if gen::any_bool(rng) {
            overrides.insert(
                rng.gen_range(0..targets.len()).to_string(),
                LayerOverride { rate: Some(0.25), ..Default::default() },
            );
        }
        s.layer_overrides = overrides;
        assert!(FaultModel::resolve(&s, &targets).is_err());
    });
}

/// Arm + disarm of arbitrary weight fault sets restores the model
/// bit-exactly, even with duplicate/overlapping fault locations.
#[test]
fn arm_disarm_restores_weights() {
    check_with(CASES, "arm_disarm_restores_weights", |rng| {
        let seed = gen::any_u64(rng);
        let k: usize = rng.gen_range(1usize..12);
        let mut model = alexnet(&model_cfg());
        let before: Vec<u32> = model
            .nodes()
            .iter()
            .filter_map(|n| n.layer.weight())
            .flat_map(|w| w.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>())
            .collect();
        let mut s = Scenario::default();
        s.dataset_size = 1;
        s.faults_per_image = FaultCount::Fixed(k);
        s.injection_target = InjectionTarget::Weights;
        s.seed = seed;
        let targets =
            resolve_targets(&[&model], &s, &[Some(model_cfg().input_dims(1))]).unwrap();
        let matrix = FaultMatrix::generate(&s, &targets).unwrap();
        let armed = {
            let mut nets = [&mut model];
            arm_faults(&mut nets, &targets, &matrix.records, InjectionTarget::Weights).unwrap()
        };
        {
            let mut nets = [&mut model];
            armed.disarm(&mut nets);
        }
        let after: Vec<u32> = model
            .nodes()
            .iter()
            .filter_map(|n| n.layer.weight())
            .flat_map(|w| w.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>())
            .collect();
        assert_eq!(before, after);
    });
}

/// The fimodel iterator always yields exactly `num_slots` models.
#[test]
fn iterator_yields_num_slots() {
    check_with(CASES, "iterator_yields_num_slots", |rng| {
        let s = arb_scenario(rng);
        let model = alexnet(&model_cfg());
        let mut wrapper = Ptfiwrap::new(&model, s, &model_cfg().input_dims(1)).unwrap();
        let slots = wrapper.fault_matrix().num_slots();
        assert_eq!(wrapper.fimodel_iter().count(), slots);
    });
}

/// CRC32 differs for any single-bit difference (on small inputs).
#[test]
fn crc32_detects_single_bit_flips() {
    check_with(CASES, "crc32_detects_single_bit_flips", |rng| {
        let data = gen::vec_of(rng, 1..64, |rng| gen::any_u64(rng) as u8);
        let byte: usize = rng.gen_range(0usize..64);
        let bit: u8 = rng.gen_range(0u8..8);
        let mut mutated = data.clone();
        let idx = byte % mutated.len();
        mutated[idx] ^= 1 << bit;
        assert_ne!(crc32(&data), crc32(&mutated));
    });
}
