//! PyTorchFI-style ad-hoc fault injection — the baseline ALFI's
//! efficiency claims are measured against.
//!
//! Plain PyTorchFI samples fault locations on the fly, per call, with no
//! pre-generated reusable fault matrix, no persistence and no applied-
//! fault logging. This module reimplements that workflow so the
//! `efficiency_alfi_vs_baseline` benchmark can compare:
//!
//! * fault preparation cost (ALFI pays once up front, the baseline pays
//!   per inference),
//! * replayability (the baseline cannot replay an identical campaign
//!   without re-seeding and re-running everything in the same order),
//! * logging (the baseline reports nothing about what it hit).

use crate::error::CoreError;
use crate::fault::{FaultRecord, FaultValue};
use crate::injector::corrupt_value;
use crate::matrix::LayerTarget;
use alfi_nn::{ForwardHook, LayerCtx, Network};
use alfi_scenario::{FaultMode, InjectionTarget, Scenario};
use alfi_tensor::Tensor;
use alfi_rng::Rng;
use std::sync::Mutex;
use std::sync::Arc;

/// Ad-hoc injector: every call samples fresh fault locations directly
/// against the model, applies them for a single forward pass, and
/// forgets them.
#[derive(Debug)]
pub struct AdHocInjector {
    targets: Vec<LayerTarget>,
    scenario: Scenario,
    rng: Rng,
}

impl AdHocInjector {
    /// Creates an injector for a model. Unlike [`crate::Ptfiwrap`], no
    /// fault matrix is generated.
    ///
    /// # Errors
    ///
    /// Returns layer-resolution errors.
    pub fn new(model: &Network, scenario: Scenario, input_dims: &[usize]) -> Result<Self, CoreError> {
        let targets =
            crate::matrix::resolve_targets(&[model], &scenario, &[Some(input_dims.to_vec())])?;
        let rng = Rng::from_seed(scenario.seed);
        Ok(AdHocInjector { targets, scenario, rng })
    }

    fn sample_fault(&mut self) -> FaultRecord {
        let li = self.rng.gen_range(0..self.targets.len());
        let t = &self.targets[li];
        let value = match self.scenario.fault_mode {
            FaultMode::BitFlip { bit_range } => {
                FaultValue::BitFlip(self.rng.gen_range(bit_range.0..=bit_range.1))
            }
            FaultMode::StuckAt { bit_range, stuck_high } => FaultValue::StuckAt {
                pos: self.rng.gen_range(bit_range.0..=bit_range.1),
                high: stuck_high,
            },
            FaultMode::RandomValue { min, max } => {
                FaultValue::Replace(if min == max { min } else { self.rng.gen_range(min..max) })
            }
            FaultMode::QuantStep { bits, amax, bit_range } => FaultValue::QuantStep {
                bit: self.rng.gen_range(bit_range.0..=bit_range.1),
                bits,
                amax,
            },
        };
        match self.scenario.injection_target {
            InjectionTarget::Weights => {
                let d = &t.weight_dims;
                match d.len() {
                    2 => FaultRecord {
                        batch: 0,
                        layer: li,
                        channel: self.rng.gen_range(0..d[0]),
                        channel_in: 0,
                        depth: None,
                        height: 0,
                        width: self.rng.gen_range(0..d[1]),
                        value,
                    },
                    4 => FaultRecord {
                        batch: 0,
                        layer: li,
                        channel: self.rng.gen_range(0..d[0]),
                        channel_in: self.rng.gen_range(0..d[1]),
                        depth: None,
                        height: self.rng.gen_range(0..d[2]),
                        width: self.rng.gen_range(0..d[3]),
                        value,
                    },
                    _ => FaultRecord {
                        batch: 0,
                        layer: li,
                        channel: self.rng.gen_range(0..d[0]),
                        channel_in: self.rng.gen_range(0..d[1]),
                        depth: Some(self.rng.gen_range(0..d[2])),
                        height: self.rng.gen_range(0..d[3]),
                        width: self.rng.gen_range(0..d[4]),
                        value,
                    },
                }
            }
            InjectionTarget::Neurons => {
                let d = t.output_dims.as_deref().unwrap_or(&t.weight_dims[..1]);
                match d.len() {
                    2 => FaultRecord {
                        batch: 0,
                        layer: li,
                        channel: 0,
                        channel_in: 0,
                        depth: None,
                        height: 0,
                        width: self.rng.gen_range(0..d[1]),
                        value,
                    },
                    4 => FaultRecord {
                        batch: 0,
                        layer: li,
                        channel: self.rng.gen_range(0..d[1]),
                        channel_in: 0,
                        depth: None,
                        height: self.rng.gen_range(0..d[2]),
                        width: self.rng.gen_range(0..d[3]),
                        value,
                    },
                    _ => FaultRecord {
                        batch: 0,
                        layer: li,
                        channel: if d.len() > 1 { self.rng.gen_range(0..d[1]) } else { 0 },
                        channel_in: 0,
                        depth: None,
                        height: 0,
                        width: 0,
                        value,
                    },
                }
            }
        }
    }

    /// Runs one fault-injected inference: samples `k` fresh faults,
    /// applies them, forwards, reverts. Nothing is logged or persisted.
    ///
    /// # Errors
    ///
    /// Propagates network errors.
    pub fn run_once(&mut self, model: &Network, input: &Tensor, k: usize) -> Result<Tensor, CoreError> {
        let faults: Vec<FaultRecord> = (0..k).map(|_| self.sample_fault()).collect();
        match self.scenario.injection_target {
            InjectionTarget::Weights => {
                let mut net = model.clone();
                for f in &faults {
                    let t = &self.targets[f.layer];
                    let layer = net.layer_mut(t.node_id)?;
                    let w = layer.weight_mut().expect("injectable layer has weights");
                    let coords: Vec<usize> = match w.dims().len() {
                        2 => vec![f.channel, f.width],
                        4 => vec![f.channel, f.channel_in, f.height, f.width],
                        _ => vec![f.channel, f.channel_in, f.depth.unwrap_or(0), f.height, f.width],
                    };
                    let (corrupted, _) = corrupt_value(w.get(&coords), f.value);
                    w.set(&coords, corrupted);
                }
                Ok(net.forward(input)?)
            }
            InjectionTarget::Neurons => {
                let mut net = model.clone();
                for f in &faults {
                    let t = &self.targets[f.layer];
                    let fault = *f;
                    let hook = move |_ctx: &LayerCtx, out: &mut Tensor| {
                        let dims = out.dims().to_vec();
                        if let Some(flat) = crate::injector::neuron_flat_index(&fault, &dims) {
                            let data = out.data_mut();
                            let (v, _) = corrupt_value(data[flat], fault.value);
                            data[flat] = v;
                        }
                    };
                    net.register_hook(t.node_id, Arc::new(hook))?;
                }
                Ok(net.forward(input)?)
            }
        }
    }
}

/// A trivially countable hook used by overhead benchmarks: does nothing
/// but bump a counter, measuring pure hook-dispatch cost.
#[derive(Debug, Default)]
pub struct CountingHook {
    count: Mutex<u64>,
}

impl CountingHook {
    /// Creates a zeroed counter hook.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of invocations so far.
    pub fn count(&self) -> u64 {
        *self.count.lock().unwrap()
    }
}

impl ForwardHook for CountingHook {
    fn on_output(&self, _ctx: &LayerCtx, _output: &mut Tensor) {
        *self.count.lock().unwrap() += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_nn::models::{alexnet, ModelConfig};

    fn model_cfg() -> ModelConfig {
        ModelConfig { input_hw: 32, width_mult: 0.0625, ..ModelConfig::default() }
    }

    #[test]
    fn adhoc_runs_and_leaves_model_untouched() {
        let model = alexnet(&model_cfg());
        let mut s = Scenario::default();
        s.injection_target = InjectionTarget::Weights;
        let x = Tensor::ones(&model_cfg().input_dims(1));
        let clean = model.forward(&x).unwrap();
        let mut inj = AdHocInjector::new(&model, s, &model_cfg().input_dims(1)).unwrap();
        let out = inj.run_once(&model, &x, 3).unwrap();
        assert_eq!(out.dims(), clean.dims());
        assert_eq!(model.forward(&x).unwrap().data(), clean.data());
    }

    #[test]
    fn adhoc_neuron_mode_also_runs() {
        let model = alexnet(&model_cfg());
        let mut s = Scenario::default();
        s.injection_target = InjectionTarget::Neurons;
        s.fault_mode = FaultMode::RandomValue { min: 500.0, max: 500.1 };
        let x = Tensor::ones(&model_cfg().input_dims(1));
        let mut inj = AdHocInjector::new(&model, s, &model_cfg().input_dims(1)).unwrap();
        let out = inj.run_once(&model, &x, 2).unwrap();
        assert_eq!(out.dims()[0], 1);
    }

    #[test]
    fn adhoc_successive_calls_sample_different_faults() {
        let model = alexnet(&model_cfg());
        let s = Scenario::default();
        let mut inj = AdHocInjector::new(&model, s, &model_cfg().input_dims(1)).unwrap();
        let a = inj.sample_fault();
        let b = inj.sample_fault();
        assert_ne!(a, b);
    }

    #[test]
    fn counting_hook_counts() {
        let h = CountingHook::new();
        assert_eq!(h.count(), 0);
        let ctx = LayerCtx { node_id: 0, name: "x".into(), kind: alfi_nn::LayerKind::Other };
        let mut t = Tensor::zeros(&[1]);
        h.on_output(&ctx, &mut t);
        h.on_output(&ctx, &mut t);
        assert_eq!(h.count(), 2);
    }
}
