//! Fault *specification* resolved into a per-layer materialization plan.
//!
//! This module is the specification half of the fault-model split: a
//! [`Scenario`] describes *what* to inject (campaign-wide mode, optional
//! MRFI-style per-layer `layers:` overrides), and [`FaultModel::resolve`]
//! turns that description into one [`LayerPlan`] per resolved target —
//! the selection weight, fault mode and channel scope the generation
//! loop in [`FaultMatrix::generate`](crate::matrix::FaultMatrix::generate)
//! consumes without re-interpreting the scenario.
//!
//! With no `layers:` overrides the resolved plans carry exactly the
//! base Eq. (1) (or uniform) weights and the campaign-wide mode, so the
//! materialization loop performs the identical RNG draw sequence as the
//! historical flat sampling loop — pinned by the golden artifacts.

use crate::error::CoreError;
use crate::matrix::{layer_weights, LayerTarget};
use alfi_scenario::{FaultMode, InjectionTarget, LayerOverride, Scenario, ScenarioError};

/// The resolved injection plan for one target layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPlan {
    /// Probability of this layer being chosen for a fault (all plans of
    /// a model sum to 1 unless every weight is 0).
    pub weight: f64,
    /// The value-corruption model for faults landing in this layer.
    pub mode: FaultMode,
    /// Inclusive output-channel scope faults are restricted to, when an
    /// override narrowed it; `None` spans all channels.
    pub channel_range: Option<(usize, usize)>,
}

/// A fully resolved multi-resolution fault model: one [`LayerPlan`] per
/// target, in target order.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultModel {
    plans: Vec<LayerPlan>,
    multi_resolution: bool,
}

impl FaultModel {
    /// Resolves a scenario against the target list: computes base
    /// Eq. (1)/uniform weights, applies `layers:` overrides (rate
    /// renormalization, per-layer mode, channel scope) and validates
    /// every override against the targets it matches.
    ///
    /// Rate semantics are deterministic: overridden rates are clamped
    /// to `[0, 1]`; when they sum to `S < 1` and some layers are not
    /// overridden, the remaining `1 - S` is shared among those layers
    /// proportionally to their base weights; when `S >= 1` (or every
    /// layer is overridden) all rates are renormalized by `S` and
    /// non-overridden layers get weight 0.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Scenario`] when a pattern matches no
    /// target, a channel scope exceeds a matched layer's channel
    /// count, or the overridden rates sum to zero with no base weight
    /// left to fall back to.
    pub fn resolve(scenario: &Scenario, targets: &[LayerTarget]) -> Result<FaultModel, CoreError> {
        if targets.is_empty() {
            return Err(CoreError::NoInjectableLayers);
        }
        let base = if scenario.weighted_layer_selection {
            layer_weights(targets, scenario.injection_target)
        } else {
            vec![1.0 / targets.len() as f64; targets.len()]
        };
        let mut plans: Vec<LayerPlan> = base
            .iter()
            .map(|&weight| LayerPlan {
                weight,
                mode: scenario.fault_mode,
                channel_range: None,
            })
            .collect();
        if scenario.layer_overrides.is_empty() {
            return Ok(FaultModel { plans, multi_resolution: false });
        }

        // Apply overrides in map (alphabetical) order; on overlapping
        // patterns the later pattern wins per field, deterministically.
        let mut rates: Vec<Option<f64>> = vec![None; targets.len()];
        for (pattern, o) in &scenario.layer_overrides {
            let matched =
                apply_override(pattern, o, scenario.injection_target, targets, &mut plans, &mut rates)?;
            if matched == 0 {
                return Err(invalid(format!(
                    "pattern `{pattern}` matches no injectable layer (targets: {})",
                    target_names(targets)
                )));
            }
        }

        // Deterministic rate renormalization.
        let clamped: Vec<Option<f64>> = rates.iter().map(|r| r.map(|v| v.clamp(0.0, 1.0))).collect();
        let overridden_sum: f64 = clamped.iter().flatten().sum();
        let rest_base: f64 = clamped
            .iter()
            .zip(base.iter())
            .filter_map(|(r, &b)| r.is_none().then_some(b))
            .sum();
        let all_overridden = clamped.iter().all(Option::is_some);
        if all_overridden && overridden_sum <= 0.0 {
            return Err(invalid("per-layer rates sum to zero"));
        }
        if all_overridden || overridden_sum >= 1.0 {
            for (plan, r) in plans.iter_mut().zip(clamped.iter()) {
                plan.weight = r.map_or(0.0, |v| v / overridden_sum);
            }
        } else {
            let rest_total = 1.0 - overridden_sum;
            let rest_count = clamped.iter().filter(|r| r.is_none()).count();
            for ((plan, r), &b) in plans.iter_mut().zip(clamped.iter()).zip(base.iter()) {
                plan.weight = match r {
                    Some(v) => *v,
                    None if rest_base > 0.0 => rest_total * b / rest_base,
                    None => rest_total / rest_count as f64,
                };
            }
        }
        Ok(FaultModel { plans, multi_resolution: true })
    }

    /// The per-target plans, in target order.
    pub fn plans(&self) -> &[LayerPlan] {
        &self.plans
    }

    /// Whether any `layers:` override contributed to this model (false
    /// for the single-resolution legacy path).
    pub fn is_multi_resolution(&self) -> bool {
        self.multi_resolution
    }

    /// The selection weights of all plans, in target order.
    pub fn weights(&self) -> Vec<f64> {
        self.plans.iter().map(|p| p.weight).collect()
    }
}

fn invalid(reason: impl Into<String>) -> CoreError {
    CoreError::Scenario(ScenarioError::InvalidField { field: "layers", reason: reason.into() })
}

fn target_names(targets: &[LayerTarget]) -> String {
    let names: Vec<&str> = targets.iter().take(8).map(|t| t.name.as_str()).collect();
    let more = if targets.len() > 8 { ", ..." } else { "" };
    format!("{}{more}", names.join(", "))
}

/// Number of addressable output channels of a target — the bound a
/// `channels:` scope is validated against.
fn channel_capacity(t: &LayerTarget, target: InjectionTarget) -> usize {
    match target {
        InjectionTarget::Weights => t.weight_dims[0],
        InjectionTarget::Neurons => match &t.output_dims {
            // Rank-2 linear and rank-3 token outputs address no channel
            // coordinate; only channel 0 exists.
            Some(d) if d.len() >= 4 => d[1],
            Some(_) => 1,
            None => t.weight_dims[0],
        },
    }
}

/// Whether `pattern` selects the target at `index`: exact name, layer
/// index (`4`), inclusive index range (`2-5`) or name-prefix glob
/// (`features*`).
pub fn pattern_matches(pattern: &str, index: usize, name: &str) -> bool {
    if pattern == name {
        return true;
    }
    if let Some(prefix) = pattern.strip_suffix('*') {
        return name.starts_with(prefix);
    }
    if let Ok(i) = pattern.parse::<usize>() {
        return i == index;
    }
    if let Some((lo, hi)) = pattern.split_once('-') {
        if let (Ok(lo), Ok(hi)) = (lo.parse::<usize>(), hi.parse::<usize>()) {
            return (lo..=hi).contains(&index);
        }
    }
    false
}

fn apply_override(
    pattern: &str,
    o: &LayerOverride,
    target_kind: InjectionTarget,
    targets: &[LayerTarget],
    plans: &mut [LayerPlan],
    rates: &mut [Option<f64>],
) -> Result<usize, CoreError> {
    let mut matched = 0usize;
    for (i, t) in targets.iter().enumerate() {
        if !pattern_matches(pattern, i, &t.name) {
            continue;
        }
        matched += 1;
        if let Some(rate) = o.rate {
            rates[i] = Some(rate);
        }
        if let Some(mode) = o.mode {
            plans[i].mode = mode;
        }
        if let Some((lo, hi)) = o.channel_range {
            let cap = channel_capacity(t, target_kind);
            if hi >= cap {
                return Err(invalid(format!(
                    "pattern `{pattern}`: channel scope {lo}..={hi} exceeds layer `{}` ({cap} channels)",
                    t.name
                )));
            }
            plans[i].channel_range = Some((lo, hi));
        }
    }
    Ok(matched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_nn::models::{alexnet, ModelConfig};
    use alfi_scenario::LayerOverride;
    use std::collections::BTreeMap;

    fn model_cfg() -> ModelConfig {
        ModelConfig { input_hw: 32, width_mult: 0.0625, ..ModelConfig::default() }
    }

    fn targets(scenario: &Scenario) -> Vec<LayerTarget> {
        let net = alexnet(&model_cfg());
        crate::matrix::resolve_targets(
            &[&net],
            scenario,
            &[Some(model_cfg().input_dims(scenario.batch_size))],
        )
        .unwrap()
    }

    fn override_rate(rate: f64) -> LayerOverride {
        LayerOverride { rate: Some(rate), ..Default::default() }
    }

    #[test]
    fn no_overrides_reproduce_base_weights() {
        let s = Scenario::default();
        let ts = targets(&s);
        let m = FaultModel::resolve(&s, &ts).unwrap();
        assert!(!m.is_multi_resolution());
        assert_eq!(m.weights(), layer_weights(&ts, s.injection_target));
        assert!(m.plans().iter().all(|p| p.mode == s.fault_mode && p.channel_range.is_none()));
    }

    #[test]
    fn partial_rates_share_remainder_proportionally() {
        let mut s = Scenario::default();
        s.layer_overrides = BTreeMap::from([("0".to_string(), override_rate(0.5))]);
        let ts = targets(&s);
        let base = layer_weights(&ts, s.injection_target);
        let m = FaultModel::resolve(&s, &ts).unwrap();
        assert!(m.is_multi_resolution());
        let w = m.weights();
        assert!((w[0] - 0.5).abs() < 1e-12);
        let rest_base: f64 = base[1..].iter().sum();
        for i in 1..w.len() {
            assert!((w[i] - 0.5 * base[i] / rest_base).abs() < 1e-12, "layer {i}");
        }
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn saturated_rates_renormalize_and_zero_the_rest() {
        let mut s = Scenario::default();
        s.layer_overrides = BTreeMap::from([
            ("0".to_string(), override_rate(0.9)),
            ("1".to_string(), override_rate(0.9)),
        ]);
        let ts = targets(&s);
        let w = FaultModel::resolve(&s, &ts).unwrap().weights();
        assert!((w[0] - 0.5).abs() < 1e-12);
        assert!((w[1] - 0.5).abs() < 1e-12);
        assert!(w[2..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn unknown_pattern_is_rejected() {
        let mut s = Scenario::default();
        s.layer_overrides = BTreeMap::from([("nope.7".to_string(), override_rate(0.5))]);
        let ts = targets(&s);
        let err = FaultModel::resolve(&s, &ts).unwrap_err();
        assert!(err.to_string().contains("nope.7"), "{err}");
    }

    #[test]
    fn zero_rates_on_all_layers_are_rejected() {
        let mut s = Scenario::default();
        s.layer_overrides = BTreeMap::from([("0-7".to_string(), override_rate(0.0))]);
        let ts = targets(&s);
        assert!(FaultModel::resolve(&s, &ts).is_err());
    }

    #[test]
    fn patterns_cover_name_index_range_and_glob() {
        let ts = targets(&Scenario::default());
        let name0 = ts[0].name.clone();
        assert!(pattern_matches(&name0, 0, &name0));
        assert!(pattern_matches("0", 0, &name0));
        assert!(!pattern_matches("1", 0, &name0));
        assert!(pattern_matches("0-3", 2, "x"));
        assert!(!pattern_matches("0-3", 4, "x"));
        let prefix: String = name0.chars().take(3).collect();
        assert!(pattern_matches(&format!("{prefix}*"), 9, &name0));
        assert!(!pattern_matches("zz*", 0, &name0));
    }

    #[test]
    fn mode_and_channel_overrides_land_on_matched_layers() {
        let mut s = Scenario::default();
        s.injection_target = InjectionTarget::Weights;
        let ts = targets(&s);
        let cap0 = ts[0].weight_dims[0];
        s.layer_overrides = BTreeMap::from([(
            "0".to_string(),
            LayerOverride {
                rate: None,
                mode: Some(FaultMode::QuantStep { bits: 8, amax: 2.0, bit_range: (0, 7) }),
                channel_range: Some((0, cap0 - 1)),
            },
        )]);
        let m = FaultModel::resolve(&s, &ts).unwrap();
        assert_eq!(
            m.plans()[0].mode,
            FaultMode::QuantStep { bits: 8, amax: 2.0, bit_range: (0, 7) }
        );
        assert_eq!(m.plans()[0].channel_range, Some((0, cap0 - 1)));
        assert_eq!(m.plans()[1].mode, s.fault_mode);
        // Weights untouched when no rate override is present.
        assert_eq!(m.weights(), layer_weights(&ts, s.injection_target));
    }

    #[test]
    fn channel_scope_beyond_capacity_is_rejected() {
        let mut s = Scenario::default();
        s.injection_target = InjectionTarget::Weights;
        let ts = targets(&s);
        let cap0 = ts[0].weight_dims[0];
        s.layer_overrides = BTreeMap::from([(
            "0".to_string(),
            LayerOverride { channel_range: Some((0, cap0)), ..Default::default() },
        )]);
        let err = FaultModel::resolve(&s, &ts).unwrap_err();
        assert!(err.to_string().contains("channel"), "{err}");
    }

    #[test]
    fn later_pattern_wins_on_overlap() {
        let mut s = Scenario::default();
        s.layer_overrides = BTreeMap::from([
            ("0".to_string(), override_rate(0.2)),
            ("0-1".to_string(), override_rate(0.4)),
        ]);
        let ts = targets(&s);
        // BTreeMap order: "0" then "0-1" — the range override rewrites
        // layer 0's rate.
        let w = FaultModel::resolve(&s, &ts).unwrap().weights();
        assert!((w[0] - 0.4).abs() < 1e-12);
        assert!((w[1] - 0.4).abs() < 1e-12);
    }
}
