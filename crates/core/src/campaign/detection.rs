//! High-level object-detection campaign — the
//! `test_error_models_objdet.py` equivalent.
//!
//! Runs fault-free and faulty detection passes in lock-step over a
//! detection dataset (§V-B, §V-F-2). Faults may land in any of the
//! detector's networks (backbone, heads, second stage); the fault
//! record's layer index spans the combined injectable-layer list.
//!
//! The campaign is a thin [`CampaignTask`] adapter: policy iteration,
//! fault-slot assignment, replay validation, tracing, pool fan-out and
//! persistence all live in the shared campaign [`Engine`]. Batches are
//! streamed from the loader one at a time (never collected up front),
//! so memory stays bounded on large scenarios.

use crate::artifact::{ArtifactSink, Artifacts, ColumnarSink};
use crate::campaign::classification::fault_columns;
use crate::campaign::config::RunConfig;
use crate::campaign::engine::{CampaignTask, Engine, ScopeCtx, ScopeSink};
use crate::error::CoreError;
use crate::fault::AppliedFault;
use crate::injector::arm_faults;
use crate::matrix::{FaultMatrix, LayerTarget};
use crate::monitor::{attach_monitor, NanInfMonitor};
use crate::persist::{save_fault_matrix, RunTrace, TraceEntry};
use alfi_datasets::loader::DetectionLoader;
use alfi_datasets::GroundTruthBox;
use alfi_nn::detection::{Detection, Detector};
use alfi_scenario::{ArtifactFormat, Scenario};
use alfi_serde::ToJson;
use alfi_store::{ColumnSpec, ColumnType, Encoding, Schema, Value};
use alfi_tensor::Tensor;
use alfi_trace::{EffectClass, Phase, Recorder};
use std::cell::RefCell;
use std::ops::ControlFlow;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Per-image detection campaign row.
#[derive(Debug, Clone)]
pub struct DetectionRow {
    /// Dataset image id.
    pub image_id: u64,
    /// Ground-truth objects for the image.
    pub ground_truth: Vec<GroundTruthBox>,
    /// Fault-free detections.
    pub orig: Vec<Detection>,
    /// Fault-injected detections.
    pub corr: Vec<Detection>,
    /// Hardened (mitigation) detector output under the same faults,
    /// when a resil detector was given.
    pub resil: Option<Vec<Detection>>,
    /// Faults applied while this image was processed.
    pub faults: Vec<AppliedFault>,
    /// NaN elements observed in the corrupted detector's networks.
    pub corr_nan: usize,
    /// Infinite elements observed in the corrupted detector's networks.
    pub corr_inf: usize,
}

/// Full detection campaign output.
#[derive(Debug, Clone)]
pub struct DetectionCampaignResult {
    /// One row per processed image.
    pub rows: Vec<DetectionRow>,
    /// The scenario that ran.
    pub scenario: Scenario,
    /// The pre-generated fault matrix.
    pub fault_matrix: FaultMatrix,
    /// Applied-fault trace.
    pub trace: RunTrace,
    /// Detector model name.
    pub model_name: String,
}

impl DetectionCampaignResult {
    /// Writes the replay set into `dir`: `scenario.yml`, `faults.bin`
    /// and `trace.bin`. The detection-specific result files (COCO
    /// ground truth, intermediate detections, mAP/IVMOD metrics) are
    /// written by `alfi-eval`'s `write_detection_outputs`, which sits
    /// above this crate in the dependency graph.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] on filesystem failures.
    pub fn save_outputs(&self, dir: impl AsRef<Path>) -> Result<(), CoreError> {
        let a = Artifacts::new(dir);
        std::fs::create_dir_all(a.dir())?;
        self.scenario.save(a.scenario()).map_err(|e| CoreError::Io(e.to_string()))?;
        save_fault_matrix(&self.fault_matrix, a.faults())?;
        self.trace.save(a.trace())?;
        Ok(())
    }
}

/// One detection fault scope: a single `[1, c, h, w]` image with its
/// dataset record and ground-truth boxes. Detection scopes are always
/// per-image — multi-image batches still run one detect pass per
/// image, whatever the injection policy.
#[derive(Debug)]
pub struct DetectionScope {
    image: Tensor,
    record: alfi_datasets::ImageRecord,
    ground_truth: Vec<GroundTruthBox>,
}

/// The high-level object-detection campaign runner.
///
/// Unlike [`ImgClassCampaign`](crate::campaign::ImgClassCampaign),
/// which owns its models, the campaign *borrows* its detector(s)
/// mutably, arms faults in place and disarms them after each scope,
/// returning every detector pristine (see DESIGN.md).
#[derive(Debug)]
pub struct ObjDetCampaign<'a, D: Detector + ?Sized> {
    detector: &'a mut D,
    resil_detector: Option<&'a mut D>,
    scenario: Scenario,
    loader: DetectionLoader,
    fault_matrix: Option<FaultMatrix>,
}

impl<'a, D: Detector + ?Sized> ObjDetCampaign<'a, D> {
    /// Creates a campaign over `detector` with the given scenario and
    /// data.
    pub fn new(detector: &'a mut D, scenario: Scenario, loader: DetectionLoader) -> Self {
        ObjDetCampaign { detector, resil_detector: None, scenario, loader, fault_matrix: None }
    }

    /// Replays a previously persisted fault matrix instead of generating
    /// a new one (the paper's `fault_file` parameter of
    /// `test_rand_ObjDet_SBFs_inj`).
    pub fn with_fault_matrix(mut self, matrix: FaultMatrix) -> Self {
        self.fault_matrix = Some(matrix);
        self
    }

    /// Adds a hardened detector to run in lock-step under the *same*
    /// faults. It must expose the same injectable-layer list as the
    /// primary one; like the primary it is borrowed, armed in place
    /// and returned pristine.
    pub fn with_resil_detector(mut self, resil: &'a mut D) -> Self {
        self.resil_detector = Some(resil);
        self
    }

    /// Runs the campaign with the given [`RunConfig`] — the single
    /// entry point for every driver and thread count, delegating to the
    /// shared campaign [`Engine`] (see its docs for dispatch, tracing
    /// and persistence semantics).
    ///
    /// # Errors
    ///
    /// Resolution/injection errors, rejection of non-`per_image`
    /// policies when parallel, [`CoreError::Unsupported`] for
    /// uncloneable detectors when parallel, [`CoreError::WorkerPanic`]
    /// for panicking workers.
    pub fn run_with(&mut self, cfg: &RunConfig) -> Result<DetectionCampaignResult, CoreError> {
        Engine::new(cfg).run(&self.as_task())
    }

    /// Borrows the campaign's fields into the engine-facing task
    /// adapter. The detectors go behind [`RefCell`]s so the task can
    /// stream scopes and arm faults from `&self` — the sequential
    /// driver is single-threaded, so the borrows never conflict.
    fn as_task(&mut self) -> DetTask<'_, D> {
        let ObjDetCampaign { detector, resil_detector, scenario, loader, fault_matrix } = self;
        DetTask {
            detector: RefCell::new(&mut **detector),
            resil_detector: resil_detector.as_mut().map(|r| RefCell::new(&mut **r)),
            scenario,
            loader,
            replay: fault_matrix.as_ref(),
        }
    }
}

/// Engine-facing adapter over a borrowed [`ObjDetCampaign`].
struct DetTask<'t, D: Detector + ?Sized> {
    detector: RefCell<&'t mut D>,
    resil_detector: Option<RefCell<&'t mut D>>,
    scenario: &'t Scenario,
    loader: &'t DetectionLoader,
    replay: Option<&'t FaultMatrix>,
}

/// Parallel worker context: a private detector clone per work item.
/// Each task locks only its own clone — the mutex is uncontended and
/// exists purely to hand `&mut` access through the shared closure.
struct DetParCtx {
    clones: Vec<Mutex<Box<dyn Detector>>>,
    resil_clones: Vec<Mutex<Box<dyn Detector>>>,
}

impl<'t, D: Detector + ?Sized> CampaignTask for DetTask<'t, D> {
    type Scope = DetectionScope;
    type Row = DetectionRow;
    type Result = DetectionCampaignResult;
    type ParCtx<'s>
        = DetParCtx
    where
        Self: 's;

    fn kind(&self) -> &'static str {
        "detection"
    }

    fn model_name(&self) -> String {
        self.detector.borrow().name().to_string()
    }

    fn scenario(&self) -> &Scenario {
        self.scenario
    }

    fn hardened_noun(&self) -> &'static str {
        "detector"
    }

    fn replay_matrix(&self) -> Option<&FaultMatrix> {
        self.replay
    }

    fn resolve_targets(&self) -> Result<(Vec<LayerTarget>, Option<Vec<LayerTarget>>), CoreError> {
        // Reference shapes: the first (primary) network sees the image;
        // further networks (e.g. RoI heads) have run-time-dependent
        // inputs, so their neuron coordinates fall back to channel
        // bounds.
        let input_dims = {
            let ds = self.loader.dataset();
            vec![1usize, 3, ds.image_hw(), ds.image_hw()]
        };
        let targets = {
            let det = self.detector.borrow();
            let nets = det.networks();
            let mut dims: Vec<Option<Vec<usize>>> = vec![None; nets.len()];
            dims[0] = Some(input_dims.clone());
            crate::matrix::resolve_targets(&nets, self.scenario, &dims)?
        };
        let resil_targets = match &self.resil_detector {
            Some(r) => {
                let rdet = r.borrow();
                let rnets = rdet.networks();
                let mut rdims: Vec<Option<Vec<usize>>> = vec![None; rnets.len()];
                if !rdims.is_empty() {
                    rdims[0] = Some(input_dims);
                }
                Some(crate::matrix::resolve_targets(&rnets, self.scenario, &rdims)?)
            }
            None => None,
        };
        Ok((targets, resil_targets))
    }

    fn stream_scopes(
        &self,
        epoch: u64,
        sink: &mut ScopeSink<'_, DetectionScope>,
    ) -> Result<ControlFlow<()>, CoreError> {
        for batch in self.loader.iter_epoch(epoch) {
            for i in 0..batch.records.len() {
                let image = batch.images.batch_item(i).map_err(alfi_nn::NnError::from)?;
                let image = Tensor::stack(&[image]).map_err(alfi_nn::NnError::from)?;
                let scope = DetectionScope {
                    image,
                    record: batch.records[i].clone(),
                    ground_truth: batch.objects[i].clone(),
                };
                if sink(i == 0, scope)?.is_break() {
                    return Ok(ControlFlow::Break(()));
                }
            }
        }
        Ok(ControlFlow::Continue(()))
    }

    fn process_scope(
        &self,
        ctx: &ScopeCtx<'_>,
        scope: &DetectionScope,
        rec: &Recorder,
        rows: &mut Vec<DetectionRow>,
        trace: &mut RunTrace,
    ) -> Result<(), CoreError> {
        let mut det = self.detector.borrow_mut();
        let mut resil_guard = self.resil_detector.as_ref().map(|r| r.borrow_mut());
        let resil: Option<&mut D> = resil_guard.as_mut().map(|g| &mut ***g);
        process_one(&mut **det, resil, ctx, scope, rec, rows, trace)
    }

    fn prepare_parallel(&self, items: usize) -> Result<DetParCtx, CoreError> {
        let clone_of = |d: &D, role: &str| {
            d.clone_boxed().ok_or_else(|| CoreError::Unsupported {
                reason: format!(
                    "{role} detector `{}` does not implement clone_boxed, required by parallel runs",
                    d.name()
                ),
            })
        };
        let det = self.detector.borrow();
        let mut clones: Vec<Mutex<Box<dyn Detector>>> = Vec::with_capacity(items);
        let mut resil_clones: Vec<Mutex<Box<dyn Detector>>> = Vec::new();
        for _ in 0..items {
            clones.push(Mutex::new(clone_of(&det, "primary")?));
            if let Some(r) = &self.resil_detector {
                resil_clones.push(Mutex::new(clone_of(&r.borrow(), "hardened")?));
            }
        }
        Ok(DetParCtx { clones, resil_clones })
    }

    fn process_parallel(
        ctx: &DetParCtx,
        scope_ctx: &ScopeCtx<'_>,
        idx: usize,
        scope: &DetectionScope,
        rec: &Recorder,
    ) -> Result<(Vec<DetectionRow>, Vec<TraceEntry>), CoreError> {
        let mut det = ctx.clones[idx].lock().expect("detector clone lock");
        let mut resil_guard = ctx
            .resil_clones
            .get(idx)
            .map(|m| m.lock().expect("hardened detector clone lock"));
        let resil: Option<&mut dyn Detector> = resil_guard.as_mut().map(|g| &mut ***g);
        let mut rows = Vec::with_capacity(1);
        let mut trace = RunTrace::default();
        process_one(&mut **det, resil, scope_ctx, scope, rec, &mut rows, &mut trace)?;
        Ok((rows, trace.entries))
    }

    fn classify(row: &DetectionRow) -> EffectClass {
        classify_detection_row(row)
    }

    fn row_nonfinite(row: &DetectionRow) -> (u64, u64) {
        (row.corr_nan as u64, row.corr_inf as u64)
    }

    fn finalize(
        &self,
        rows: Vec<DetectionRow>,
        matrix: FaultMatrix,
        trace: RunTrace,
    ) -> DetectionCampaignResult {
        DetectionCampaignResult {
            rows,
            scenario: self.scenario.clone(),
            fault_matrix: matrix,
            trace,
            model_name: self.detector.borrow().name().to_string(),
        }
    }

    fn make_row_sink(
        &self,
        format: ArtifactFormat,
        artifacts: &Artifacts,
    ) -> Result<Option<Box<dyn ArtifactSink<DetectionRow>>>, CoreError> {
        match format {
            // CSV-format detection runs keep their JSON result writers
            // in `alfi-eval` (COCO ground truth, detections, KPIs); the
            // engine writes only the replay set.
            ArtifactFormat::Csv => Ok(None),
            ArtifactFormat::Binary => {
                let resil = self.resil_detector.is_some();
                Ok(Some(Box::new(ColumnarSink::create(
                    artifacts.rows_store(),
                    det_store_schema(resil),
                    move |row: &DetectionRow| det_store_values(row, resil),
                )?)))
            }
        }
    }
}

/// Columnar store schema for detection rows: numeric image id, the
/// ground-truth / per-variant detection lists as compact JSON text,
/// the six fault columns and the NaN/Inf counts.
fn det_store_schema(resil: bool) -> Schema {
    let mut cols = vec![
        ColumnSpec::new("image_id", ColumnType::U64, Encoding::Delta),
        ColumnSpec::new("ground_truth", ColumnType::Str, Encoding::Plain),
        ColumnSpec::new("orig", ColumnType::Str, Encoding::Plain),
        ColumnSpec::new("corr", ColumnType::Str, Encoding::Plain),
    ];
    if resil {
        cols.push(ColumnSpec::new("resil", ColumnType::Str, Encoding::Plain));
    }
    for name in
        ["fault_layers", "fault_channels", "fault_depths", "fault_heights", "fault_widths", "fault_bits"]
    {
        cols.push(ColumnSpec::new(name, ColumnType::Str, Encoding::Plain));
    }
    cols.push(ColumnSpec::new("nan_count", ColumnType::U32, Encoding::Plain));
    cols.push(ColumnSpec::new("inf_count", ColumnType::U32, Encoding::Plain));
    Schema::new(cols).with_meta("kind", "detection").with_meta("resil", if resil { "1" } else { "0" })
}

/// Projects one row onto the [`det_store_schema`] column order.
fn det_store_values(row: &DetectionRow, resil: bool) -> Vec<Value> {
    let mut values = vec![
        Value::U64(row.image_id),
        Value::Str(row.ground_truth.to_json().compact()),
        Value::Str(row.orig.to_json().compact()),
        Value::Str(row.corr.to_json().compact()),
    ];
    if resil {
        let empty: Vec<Detection> = Vec::new();
        values.push(Value::Str(row.resil.as_ref().unwrap_or(&empty).to_json().compact()));
    }
    for col in fault_columns(&row.faults) {
        values.push(Value::Str(col));
    }
    values.push(Value::U32(row.corr_nan as u32));
    values.push(Value::U32(row.corr_inf as u32));
    values
}

/// Renders one decoded store row as a JSON object line for
/// `rows.jsonl`. The detection cells already hold JSON text, so they
/// embed verbatim; the fault columns contain only `[0-9;sv-]`
/// characters and need no escaping.
pub(crate) fn store_row_to_json_line(values: &[Value], resil: bool) -> Result<String, CoreError> {
    use crate::artifact::{cell_str, cell_u64};
    let image_id = cell_u64(values, 0)?;
    let gt = cell_str(values, 1)?;
    let orig = cell_str(values, 2)?;
    let corr = cell_str(values, 3)?;
    let mut line = format!(
        "{{\"image_id\":{image_id},\"ground_truth\":{gt},\"orig\":{orig},\"corr\":{corr}"
    );
    let mut idx = 4;
    if resil {
        let r = cell_str(values, idx)?;
        line.push_str(&format!(",\"resil\":{r}"));
        idx += 1;
    }
    for name in
        ["fault_layers", "fault_channels", "fault_depths", "fault_heights", "fault_widths", "fault_bits"]
    {
        let v = cell_str(values, idx)?;
        line.push_str(&format!(",\"{name}\":\"{v}\""));
        idx += 1;
    }
    let nan = cell_u64(values, idx)?;
    let inf = cell_u64(values, idx + 1)?;
    line.push_str(&format!(",\"nan_count\":{nan},\"inf_count\":{inf}}}\n"));
    Ok(line)
}

/// Runs the fault-free / faulty (/ hardened) detection passes for one
/// image — the one scope body shared by the sequential driver (on the
/// campaign's borrowed detectors) and the parallel driver (on private
/// clones). Every detector comes back pristine.
fn process_one<D: Detector + ?Sized>(
    det: &mut D,
    resil: Option<&mut D>,
    ctx: &ScopeCtx<'_>,
    scope: &DetectionScope,
    rec: &Recorder,
    rows: &mut Vec<DetectionRow>,
    trace: &mut RunTrace,
) -> Result<(), CoreError> {
    let worker = alfi_pool::worker_index();
    let image = &scope.image;

    // Fault-free pass.
    let orig = {
        let _span = rec.span_on(Phase::Forward, worker);
        det.detect(image)?.remove(0)
    };

    // Arm faults + monitors in place, detect, disarm.
    let monitor = Arc::new(NanInfMonitor::new());
    let (applied, totals, corr) = {
        let mut nets = det.networks_mut();
        let mut monitor_handles = Vec::new();
        for net in nets.iter_mut() {
            monitor_handles.push(attach_monitor(
                net,
                Arc::<NanInfMonitor>::clone(&monitor) as _,
            )?);
        }
        let armed = {
            let _span = rec.span_on(Phase::Inject, worker);
            arm_faults(&mut nets, ctx.targets, ctx.faults, ctx.scenario.injection_target)?
        };
        drop(nets);
        let corr = {
            let _span = rec.span_on(Phase::Forward, worker);
            det.detect(image)?.remove(0)
        };
        let applied = armed.collect_applied();
        rec.record_applied(applied.len() as u64);
        let totals = monitor.totals();
        let mut nets = det.networks_mut();
        armed.disarm(&mut nets);
        for (net, handles) in nets.iter_mut().zip(monitor_handles) {
            for h in handles {
                net.remove_hook(h);
            }
        }
        (applied, totals, corr)
    };
    monitor.report_to(rec);

    // Hardened pass under identical faults, detector returned pristine
    // like the primary one.
    let resil_out = match (resil, ctx.resil_targets) {
        (Some(rdet), Some(rt)) => {
            let armed_r = {
                let _span = rec.span_on(Phase::Inject, worker);
                let mut nets = rdet.networks_mut();
                arm_faults(&mut nets, rt, ctx.faults, ctx.scenario.injection_target)?
            };
            let out = {
                let _span = rec.span_on(Phase::Forward, worker);
                rdet.detect(image)?.remove(0)
            };
            let mut nets = rdet.networks_mut();
            armed_r.disarm(&mut nets);
            Some(out)
        }
        _ => None,
    };

    let _eval = rec.span_on(Phase::Eval, worker);
    for a in &applied {
        trace.entries.push(TraceEntry {
            image_id: scope.record.image_id,
            applied: *a,
            output_nan_count: totals.nan as u32,
            output_inf_count: totals.inf as u32,
        });
    }
    rows.push(DetectionRow {
        image_id: scope.record.image_id,
        ground_truth: scope.ground_truth.clone(),
        orig,
        corr,
        resil: resil_out,
        faults: applied,
        corr_nan: totals.nan,
        corr_inf: totals.inf,
    });
    rec.item_finished();
    Ok(())
}

/// Trace-level fault-effect classification of one detection row: DUE
/// when non-finite values surfaced in the corrupted networks, SDC when
/// the detection set silently changed, masked otherwise.
fn classify_detection_row(row: &DetectionRow) -> EffectClass {
    if row.corr_nan + row.corr_inf > 0 {
        EffectClass::Due
    } else if row.corr != row.orig {
        EffectClass::Sdc
    } else {
        EffectClass::Masked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_datasets::detection::DetectionDataset;
    use alfi_nn::detection::{DetectorConfig, YoloGrid};
    use alfi_scenario::{FaultMode, InjectionPolicy, InjectionTarget};
    use alfi_tensor::Tensor;

    fn run_campaign(scenario: Scenario) -> DetectionCampaignResult {
        let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
        let mut det = YoloGrid::new(&dcfg);
        let ds = DetectionDataset::new(scenario.dataset_size, dcfg.num_classes, 3, 32, 3);
        let loader = DetectionLoader::new(ds, scenario.batch_size);
        ObjDetCampaign::new(&mut det, scenario, loader)
            .run_with(&RunConfig::default())
            .unwrap()
    }

    #[test]
    fn detection_campaign_produces_rows_and_traces() {
        let mut s = Scenario::default();
        s.dataset_size = 4;
        s.injection_target = InjectionTarget::Weights;
        s.fault_mode = FaultMode::exponent_bit_flip();
        let result = run_campaign(s);
        assert_eq!(result.rows.len(), 4);
        assert_eq!(result.model_name, "yolo_grid");
        for row in &result.rows {
            assert!(!row.ground_truth.is_empty());
            assert_eq!(row.faults.len(), 1);
            assert!(row.resil.is_none());
        }
        assert_eq!(result.trace.entries.len(), 4);
    }

    #[test]
    fn detector_is_pristine_after_campaign() {
        let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
        let mut det = YoloGrid::new(&dcfg);
        let reference = YoloGrid::new(&dcfg);
        let probe = Tensor::ones(&[1, 3, 32, 32]);
        let before = reference.detect(&probe).unwrap();

        let mut s = Scenario::default();
        s.dataset_size = 3;
        s.injection_target = InjectionTarget::Weights;
        let ds = DetectionDataset::new(3, dcfg.num_classes, 3, 32, 3);
        let loader = DetectionLoader::new(ds, 1);
        ObjDetCampaign::new(&mut det, s, loader).run_with(&RunConfig::default()).unwrap();

        let after = det.detect(&probe).unwrap();
        assert_eq!(before, after, "weights must be reverted and hooks removed");
        assert_eq!(det.networks()[0].num_hooks(), 0);
    }

    #[test]
    fn resil_detector_runs_in_lockstep_and_stays_pristine() {
        let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
        let mut det = YoloGrid::new(&dcfg);
        let mut resil = YoloGrid::new(&dcfg);
        let reference = YoloGrid::new(&dcfg);
        let probe = Tensor::ones(&[1, 3, 32, 32]);
        let before = reference.detect(&probe).unwrap();

        let mut s = Scenario::default();
        s.dataset_size = 3;
        s.injection_target = InjectionTarget::Weights;
        s.fault_mode = FaultMode::exponent_bit_flip();
        let ds = DetectionDataset::new(3, dcfg.num_classes, 3, 32, 3);
        let loader = DetectionLoader::new(ds, 1);
        let result = ObjDetCampaign::new(&mut det, s, loader)
            .with_resil_detector(&mut resil)
            .run_with(&RunConfig::default())
            .unwrap();
        for row in &result.rows {
            // identical model + identical faults => identical output
            assert_eq!(row.resil.as_ref(), Some(&row.corr));
        }
        assert_eq!(resil.detect(&probe).unwrap(), before, "hardened detector left pristine");
    }

    #[test]
    fn parallel_resil_matches_sequential() {
        let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
        let mut s = Scenario::default();
        s.dataset_size = 4;
        s.injection_target = InjectionTarget::Weights;
        s.fault_mode = FaultMode::exponent_bit_flip();
        let run = |threads: usize| {
            let mut det = YoloGrid::new(&dcfg);
            let mut resil = YoloGrid::new(&dcfg);
            let ds = DetectionDataset::new(4, dcfg.num_classes, 3, 32, 3);
            let loader = DetectionLoader::new(ds, 1);
            ObjDetCampaign::new(&mut det, s.clone(), loader)
                .with_resil_detector(&mut resil)
                .run_with(&RunConfig::new().threads(threads))
                .unwrap()
        };
        let seq = run(1);
        let par = run(3);
        for (a, b) in seq.rows.iter().zip(par.rows.iter()) {
            assert_eq!(a.resil, b.resil);
            assert_eq!(a.corr, b.corr);
        }
    }

    #[test]
    fn neuron_faults_into_detector_apply() {
        let mut s = Scenario::default();
        s.dataset_size = 3;
        s.injection_target = InjectionTarget::Neurons;
        s.fault_mode = FaultMode::RandomValue { min: 100.0, max: 100.1 };
        let result = run_campaign(s);
        let applied: usize = result.rows.iter().map(|r| r.faults.len()).sum();
        assert!(applied >= 2, "most neuron faults should land (batch 1), got {applied}");
    }

    #[test]
    fn detection_campaign_is_deterministic() {
        let mut s = Scenario::default();
        s.dataset_size = 3;
        s.injection_target = InjectionTarget::Weights;
        let a = run_campaign(s.clone());
        let b = run_campaign(s);
        for (ra, rb) in a.rows.iter().zip(b.rows.iter()) {
            assert_eq!(ra.orig, rb.orig);
            assert_eq!(ra.corr, rb.corr);
        }
    }

    fn run_campaign_parallel(scenario: Scenario, threads: usize) -> DetectionCampaignResult {
        let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
        let mut det = YoloGrid::new(&dcfg);
        let ds = DetectionDataset::new(scenario.dataset_size, dcfg.num_classes, 3, 32, 3);
        let loader = DetectionLoader::new(ds, scenario.batch_size);
        ObjDetCampaign::new(&mut det, scenario, loader)
            .run_with(&RunConfig::new().threads(threads))
            .unwrap()
    }

    #[test]
    fn parallel_detection_matches_sequential_bit_exactly() {
        let mut s = Scenario::default();
        s.dataset_size = 5;
        s.injection_target = InjectionTarget::Weights;
        s.fault_mode = FaultMode::exponent_bit_flip();
        let seq = run_campaign(s.clone());
        for threads in [1, 2, 4] {
            let par = run_campaign_parallel(s.clone(), threads);
            assert_eq!(par.rows.len(), seq.rows.len());
            for (rs, rp) in seq.rows.iter().zip(par.rows.iter()) {
                assert_eq!(rs.image_id, rp.image_id);
                assert_eq!(rs.orig, rp.orig, "orig differs at {threads} threads");
                assert_eq!(rs.corr, rp.corr, "corr differs at {threads} threads");
                assert_eq!(rs.faults, rp.faults);
                assert_eq!((rs.corr_nan, rs.corr_inf), (rp.corr_nan, rp.corr_inf));
            }
            assert_eq!(seq.trace.entries, par.trace.entries);
        }
    }

    #[test]
    fn parallel_detection_neuron_faults_match_sequential() {
        let mut s = Scenario::default();
        s.dataset_size = 4;
        s.injection_target = InjectionTarget::Neurons;
        s.fault_mode = FaultMode::RandomValue { min: 100.0, max: 100.1 };
        let seq = run_campaign(s.clone());
        let par = run_campaign_parallel(s, 3);
        for (rs, rp) in seq.rows.iter().zip(par.rows.iter()) {
            assert_eq!(rs.corr, rp.corr);
            assert_eq!(rs.faults, rp.faults);
        }
    }

    #[test]
    fn parallel_detection_rejects_non_per_image_policy() {
        let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
        let mut det = YoloGrid::new(&dcfg);
        let mut s = Scenario::default();
        s.dataset_size = 3;
        s.injection_policy = InjectionPolicy::PerEpoch;
        s.injection_target = InjectionTarget::Weights;
        let ds = DetectionDataset::new(3, dcfg.num_classes, 3, 32, 3);
        let loader = DetectionLoader::new(ds, 1);
        assert!(ObjDetCampaign::new(&mut det, s, loader)
            .run_with(&RunConfig::new().threads(2))
            .is_err());
    }

    #[test]
    fn parallel_detection_requires_cloneable_detector() {
        struct NoClone(YoloGrid);
        impl Detector for NoClone {
            fn name(&self) -> &str {
                "no_clone"
            }
            fn num_classes(&self) -> usize {
                self.0.num_classes()
            }
            fn networks(&self) -> Vec<&alfi_nn::graph::Network> {
                self.0.networks()
            }
            fn networks_mut(&mut self) -> Vec<&mut alfi_nn::graph::Network> {
                self.0.networks_mut()
            }
            fn detect(
                &self,
                images: &Tensor,
            ) -> Result<Vec<Vec<Detection>>, alfi_nn::NnError> {
                self.0.detect(images)
            }
        }
        let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
        let mut det = NoClone(YoloGrid::new(&dcfg));
        let mut s = Scenario::default();
        s.dataset_size = 2;
        s.injection_target = InjectionTarget::Weights;
        let ds = DetectionDataset::new(2, dcfg.num_classes, 3, 32, 3);
        let loader = DetectionLoader::new(ds, 1);
        let err = ObjDetCampaign::new(&mut det, s, loader)
            .run_with(&RunConfig::new().threads(2))
            .unwrap_err();
        assert!(matches!(err, CoreError::Unsupported { .. }), "got {err:?}");
    }

    #[test]
    fn save_outputs_writes_the_replay_set() {
        let mut s = Scenario::default();
        s.dataset_size = 2;
        s.injection_target = InjectionTarget::Weights;
        let dir = std::env::temp_dir().join("alfi_det_replay_set");
        let _ = std::fs::remove_dir_all(&dir);
        let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
        let mut det = YoloGrid::new(&dcfg);
        let ds = DetectionDataset::new(2, dcfg.num_classes, 3, 32, 3);
        let loader = DetectionLoader::new(ds, 1);
        let result = ObjDetCampaign::new(&mut det, s, loader)
            .run_with(
                &RunConfig::new()
                    .recorder(alfi_trace::Recorder::new())
                    .save_dir(&dir),
            )
            .unwrap();
        for f in ["scenario.yml", "faults.bin", "trace.bin", "events.jsonl"] {
            assert!(dir.join(f).exists(), "{f} missing");
        }
        let m = crate::persist::load_fault_matrix(dir.join("faults.bin")).unwrap();
        assert_eq!(m, result.fault_matrix);
        let events = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
        assert!(events.contains("\"campaign\":\"detection\""));
        assert!(events.contains("\"event\":\"summary\""));
    }
}
