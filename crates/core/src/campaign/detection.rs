//! High-level object-detection campaign — the
//! `test_error_models_objdet.py` equivalent.
//!
//! Runs fault-free and faulty detection passes in lock-step over a
//! detection dataset (§V-B, §V-F-2). Faults may land in any of the
//! detector's networks (backbone, heads, second stage); the fault
//! record's layer index spans the combined injectable-layer list.

use crate::error::CoreError;
use crate::fault::AppliedFault;
use crate::injector::arm_faults;
use crate::matrix::{resolve_targets, FaultMatrix, LayerTarget};
use crate::monitor::{attach_monitor, NanInfMonitor};
use crate::persist::{RunTrace, TraceEntry};
use alfi_datasets::loader::DetectionLoader;
use alfi_datasets::GroundTruthBox;
use alfi_nn::detection::{Detection, Detector};
use alfi_scenario::{InjectionPolicy, Scenario};
use std::sync::{Arc, Mutex};

/// Per-image detection campaign row.
#[derive(Debug, Clone)]
pub struct DetectionRow {
    /// Dataset image id.
    pub image_id: u64,
    /// Ground-truth objects for the image.
    pub ground_truth: Vec<GroundTruthBox>,
    /// Fault-free detections.
    pub orig: Vec<Detection>,
    /// Fault-injected detections.
    pub corr: Vec<Detection>,
    /// Faults applied while this image was processed.
    pub faults: Vec<AppliedFault>,
    /// NaN elements observed in the corrupted detector's networks.
    pub corr_nan: usize,
    /// Infinite elements observed in the corrupted detector's networks.
    pub corr_inf: usize,
}

/// Full detection campaign output.
#[derive(Debug, Clone)]
pub struct DetectionCampaignResult {
    /// One row per processed image.
    pub rows: Vec<DetectionRow>,
    /// The scenario that ran.
    pub scenario: Scenario,
    /// The pre-generated fault matrix.
    pub fault_matrix: FaultMatrix,
    /// Applied-fault trace.
    pub trace: RunTrace,
    /// Detector model name.
    pub model_name: String,
}

/// The high-level object-detection campaign runner. Owns the detector
/// mutably for the duration of the run; faults are armed in place and
/// disarmed after each scope, leaving the detector pristine afterwards.
#[derive(Debug)]
pub struct ObjDetCampaign<'a, D: Detector + ?Sized> {
    detector: &'a mut D,
    scenario: Scenario,
    loader: DetectionLoader,
    fault_matrix: Option<FaultMatrix>,
}

impl<'a, D: Detector + ?Sized> ObjDetCampaign<'a, D> {
    /// Creates a campaign over `detector` with the given scenario and
    /// data.
    pub fn new(detector: &'a mut D, scenario: Scenario, loader: DetectionLoader) -> Self {
        ObjDetCampaign { detector, scenario, loader, fault_matrix: None }
    }

    /// Replays a previously persisted fault matrix instead of generating
    /// a new one (the paper's `fault_file` parameter of
    /// `test_rand_ObjDet_SBFs_inj`).
    pub fn with_fault_matrix(mut self, matrix: FaultMatrix) -> Self {
        self.fault_matrix = Some(matrix);
        self
    }

    /// Runs the campaign, one image at a time.
    ///
    /// # Errors
    ///
    /// Returns resolution/injection errors; an exhausted fault matrix
    /// ends the run gracefully instead.
    pub fn run(&mut self) -> Result<DetectionCampaignResult, CoreError> {
        let input_dims = {
            let ds = self.loader.dataset();
            vec![1usize, 3, ds.image_hw(), ds.image_hw()]
        };
        // Reference shapes: the first (primary) network sees the image;
        // further networks (e.g. RoI heads) have run-time-dependent
        // inputs, so their neuron coordinates fall back to channel
        // bounds.
        let (targets, matrix) = {
            let nets = self.detector.networks();
            let mut dims: Vec<Option<Vec<usize>>> = vec![None; nets.len()];
            dims[0] = Some(input_dims.clone());
            let targets = resolve_targets(&nets, &self.scenario, &dims)?;
            let matrix = match &self.fault_matrix {
                Some(m) => {
                    if m.target != self.scenario.injection_target {
                        return Err(CoreError::CorruptFile {
                            kind: "fault",
                            reason: format!(
                                "replayed matrix target {:?} disagrees with scenario target {:?}",
                                m.target, self.scenario.injection_target
                            ),
                        });
                    }
                    m.clone()
                }
                None => FaultMatrix::generate(&self.scenario, &targets)?,
            };
            (targets, matrix)
        };

        let mut rows = Vec::new();
        let mut trace = RunTrace::default();
        let mut slot = 0usize;

        for epoch in 0..self.scenario.num_runs as u64 {
            let mut epoch_armed = false;
            let batches: Vec<_> = self.loader.iter_epoch(epoch).collect();
            for batch in batches {
                let n = batch.records.len();
                for i in 0..n {
                    if slot >= matrix.num_slots() {
                        break;
                    }
                    let advance = match self.scenario.injection_policy {
                        InjectionPolicy::PerImage => true,
                        InjectionPolicy::PerBatch => i == 0,
                        InjectionPolicy::PerEpoch => !epoch_armed,
                    };
                    let faults = if advance {
                        epoch_armed = true;
                        let f = matrix.faults_for_slot(slot).to_vec();
                        slot += 1;
                        f
                    } else {
                        matrix.faults_for_slot(slot - 1).to_vec()
                    };

                    let image = batch.images.batch_item(i).map_err(alfi_nn::NnError::from)?;
                    let image =
                        alfi_tensor::Tensor::stack(&[image]).map_err(alfi_nn::NnError::from)?;
                    let record = &batch.records[i];

                    // Fault-free pass.
                    let orig = self.detector.detect(&image)?.remove(0);

                    // Arm faults + monitors in place, detect, disarm.
                    let monitor = Arc::new(NanInfMonitor::new());
                    let (applied, totals, corr) = {
                        let mut nets = self.detector.networks_mut();
                        let mut monitor_handles = Vec::new();
                        for net in nets.iter_mut() {
                            monitor_handles.push(attach_monitor(
                                net,
                                Arc::<NanInfMonitor>::clone(&monitor) as _,
                            )?);
                        }
                        let armed = arm_faults(
                            &mut nets,
                            &targets,
                            &faults,
                            self.scenario.injection_target,
                        )?;
                        drop(nets);
                        let corr = self.detector.detect(&image)?.remove(0);
                        let applied = armed.collect_applied();
                        let totals = monitor.totals();
                        let mut nets = self.detector.networks_mut();
                        armed.disarm(&mut nets);
                        for (net, handles) in nets.iter_mut().zip(monitor_handles) {
                            for h in handles {
                                net.remove_hook(h);
                            }
                        }
                        (applied, totals, corr)
                    };

                    for a in &applied {
                        trace.entries.push(TraceEntry {
                            image_id: record.image_id,
                            applied: *a,
                            output_nan_count: totals.nan as u32,
                            output_inf_count: totals.inf as u32,
                        });
                    }
                    rows.push(DetectionRow {
                        image_id: record.image_id,
                        ground_truth: batch.objects[i].clone(),
                        orig,
                        corr,
                        faults: applied,
                        corr_nan: totals.nan,
                        corr_inf: totals.inf,
                    });
                }
            }
        }
        Ok(DetectionCampaignResult {
            rows,
            scenario: self.scenario.clone(),
            fault_matrix: matrix,
            trace,
            model_name: self.detector.name().to_string(),
        })
    }

    /// Parallel variant of [`ObjDetCampaign::run`] for `per_image`
    /// scenarios. Every image gets its own private detector clone
    /// (via [`Detector::clone_boxed`]), so workers arm faults without
    /// sharing mutable state; results merge in slot order, making row
    /// order, fault assignment and all outputs bit-identical to the
    /// sequential run for any thread count (clamped by
    /// `ALFI_POOL_THREADS`).
    ///
    /// # Errors
    ///
    /// Rejects non-`per_image` policies (their fault scopes are
    /// inherently sequential), returns [`CoreError::Unsupported`] when
    /// the detector cannot be cloned, and surfaces a panicking worker
    /// as [`CoreError::WorkerPanic`] instead of unwinding.
    pub fn run_parallel(&mut self, threads: usize) -> Result<DetectionCampaignResult, CoreError> {
        if self.scenario.injection_policy != InjectionPolicy::PerImage {
            return Err(CoreError::Scenario(alfi_scenario::ScenarioError::InvalidField {
                field: "injection_policy",
                reason: "run_parallel requires per_image".into(),
            }));
        }
        let threads = threads.max(1);
        let input_dims = {
            let ds = self.loader.dataset();
            vec![1usize, 3, ds.image_hw(), ds.image_hw()]
        };
        let (targets, matrix) = {
            let nets = self.detector.networks();
            let mut dims: Vec<Option<Vec<usize>>> = vec![None; nets.len()];
            dims[0] = Some(input_dims.clone());
            let targets = resolve_targets(&nets, &self.scenario, &dims)?;
            let matrix = match &self.fault_matrix {
                Some(m) => {
                    if m.target != self.scenario.injection_target {
                        return Err(CoreError::CorruptFile {
                            kind: "fault",
                            reason: format!(
                                "replayed matrix target {:?} disagrees with scenario target {:?}",
                                m.target, self.scenario.injection_target
                            ),
                        });
                    }
                    m.clone()
                }
                None => FaultMatrix::generate(&self.scenario, &targets)?,
            };
            (targets, matrix)
        };

        // Materialize the work list and a private detector clone per
        // item. Clones are built on the caller thread (so detector
        // types only need `Send`, not `Sync`) and each task locks only
        // its own — the mutex is uncontended and exists purely to hand
        // `&mut` access through the shared closure.
        struct WorkItem {
            slot: usize,
            image: alfi_tensor::Tensor,
            record: alfi_datasets::ImageRecord,
            ground_truth: Vec<GroundTruthBox>,
        }
        let mut work = Vec::new();
        let mut slot = 0usize;
        for epoch in 0..self.scenario.num_runs as u64 {
            let batches: Vec<_> = self.loader.iter_epoch(epoch).collect();
            for batch in batches {
                for i in 0..batch.records.len() {
                    if slot >= matrix.num_slots() {
                        break;
                    }
                    let image = batch.images.batch_item(i).map_err(alfi_nn::NnError::from)?;
                    let image =
                        alfi_tensor::Tensor::stack(&[image]).map_err(alfi_nn::NnError::from)?;
                    work.push(WorkItem {
                        slot,
                        image,
                        record: batch.records[i].clone(),
                        ground_truth: batch.objects[i].clone(),
                    });
                    slot += 1;
                }
            }
        }
        let mut clones: Vec<Mutex<Box<dyn Detector>>> = Vec::with_capacity(work.len());
        for _ in 0..work.len() {
            let clone = self.detector.clone_boxed().ok_or_else(|| CoreError::Unsupported {
                reason: format!(
                    "detector `{}` does not implement clone_boxed, required by run_parallel",
                    self.detector.name()
                ),
            })?;
            clones.push(Mutex::new(clone));
        }

        let scenario_ref = &self.scenario;
        let targets_ref = &targets;
        let matrix_ref = &matrix;
        let clones_ref = &clones;
        let work_ref = &work;
        let outcomes = alfi_pool::global()
            .try_run_indexed(threads, work.len(), |idx| {
                let item = &work_ref[idx];
                let mut det = clones_ref[idx].lock().expect("detector clone lock");
                process_detection_image(
                    det.as_mut(),
                    scenario_ref,
                    targets_ref,
                    matrix_ref,
                    item.slot,
                    &item.image,
                    &item.record,
                    &item.ground_truth,
                )
            })
            .map_err(|p| CoreError::WorkerPanic { message: p.message() })?;

        let mut rows = Vec::with_capacity(work.len());
        let mut trace = RunTrace::default();
        for outcome in outcomes {
            let (row, entries) = outcome?;
            rows.push(row);
            trace.entries.extend(entries);
        }
        Ok(DetectionCampaignResult {
            rows,
            scenario: self.scenario.clone(),
            fault_matrix: matrix,
            trace,
            model_name: self.detector.name().to_string(),
        })
    }
}

/// Runs the fault-free / faulty detection pair for one image on a
/// throwaway detector clone — shared logic of the parallel campaign
/// path. The clone is discarded afterwards, so faults are not disarmed.
#[allow(clippy::too_many_arguments)]
fn process_detection_image(
    det: &mut dyn Detector,
    scenario: &Scenario,
    targets: &[LayerTarget],
    matrix: &FaultMatrix,
    slot: usize,
    image: &alfi_tensor::Tensor,
    record: &alfi_datasets::ImageRecord,
    ground_truth: &[GroundTruthBox],
) -> Result<(DetectionRow, Vec<TraceEntry>), CoreError> {
    let faults = matrix.faults_for_slot(slot).to_vec();

    // Fault-free pass on the still-pristine clone.
    let orig = det.detect(image)?.remove(0);

    // Arm faults + monitors, corrupted pass.
    let monitor = Arc::new(NanInfMonitor::new());
    let armed = {
        let mut nets = det.networks_mut();
        for net in nets.iter_mut() {
            attach_monitor(net, Arc::<NanInfMonitor>::clone(&monitor) as _)?;
        }
        arm_faults(&mut nets, targets, &faults, scenario.injection_target)?
    };
    let corr = det.detect(image)?.remove(0);
    let applied = armed.collect_applied();
    let totals = monitor.totals();

    let entries: Vec<TraceEntry> = applied
        .iter()
        .map(|a| TraceEntry {
            image_id: record.image_id,
            applied: *a,
            output_nan_count: totals.nan as u32,
            output_inf_count: totals.inf as u32,
        })
        .collect();
    Ok((
        DetectionRow {
            image_id: record.image_id,
            ground_truth: ground_truth.to_vec(),
            orig,
            corr,
            faults: applied,
            corr_nan: totals.nan,
            corr_inf: totals.inf,
        },
        entries,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_datasets::detection::DetectionDataset;
    use alfi_nn::detection::{DetectorConfig, YoloGrid};
    use alfi_scenario::{FaultMode, InjectionTarget};
    use alfi_tensor::Tensor;

    fn run_with(scenario: Scenario) -> DetectionCampaignResult {
        let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
        let mut det = YoloGrid::new(&dcfg);
        let ds = DetectionDataset::new(scenario.dataset_size, dcfg.num_classes, 3, 32, 3);
        let loader = DetectionLoader::new(ds, scenario.batch_size);
        ObjDetCampaign::new(&mut det, scenario, loader).run().unwrap()
    }

    #[test]
    fn detection_campaign_produces_rows_and_traces() {
        let mut s = Scenario::default();
        s.dataset_size = 4;
        s.injection_target = InjectionTarget::Weights;
        s.fault_mode = FaultMode::exponent_bit_flip();
        let result = run_with(s);
        assert_eq!(result.rows.len(), 4);
        assert_eq!(result.model_name, "yolo_grid");
        for row in &result.rows {
            assert!(!row.ground_truth.is_empty());
            assert_eq!(row.faults.len(), 1);
        }
        assert_eq!(result.trace.entries.len(), 4);
    }

    #[test]
    fn detector_is_pristine_after_campaign() {
        let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
        let mut det = YoloGrid::new(&dcfg);
        let reference = YoloGrid::new(&dcfg);
        let probe = Tensor::ones(&[1, 3, 32, 32]);
        let before = reference.detect(&probe).unwrap();

        let mut s = Scenario::default();
        s.dataset_size = 3;
        s.injection_target = InjectionTarget::Weights;
        let ds = DetectionDataset::new(3, dcfg.num_classes, 3, 32, 3);
        let loader = DetectionLoader::new(ds, 1);
        ObjDetCampaign::new(&mut det, s, loader).run().unwrap();

        let after = det.detect(&probe).unwrap();
        assert_eq!(before, after, "weights must be reverted and hooks removed");
        assert_eq!(det.networks()[0].num_hooks(), 0);
    }

    #[test]
    fn neuron_faults_into_detector_apply() {
        let mut s = Scenario::default();
        s.dataset_size = 3;
        s.injection_target = InjectionTarget::Neurons;
        s.fault_mode = FaultMode::RandomValue { min: 100.0, max: 100.1 };
        let result = run_with(s);
        let applied: usize = result.rows.iter().map(|r| r.faults.len()).sum();
        assert!(applied >= 2, "most neuron faults should land (batch 1), got {applied}");
    }

    #[test]
    fn detection_campaign_is_deterministic() {
        let mut s = Scenario::default();
        s.dataset_size = 3;
        s.injection_target = InjectionTarget::Weights;
        let a = run_with(s.clone());
        let b = run_with(s);
        for (ra, rb) in a.rows.iter().zip(b.rows.iter()) {
            assert_eq!(ra.orig, rb.orig);
            assert_eq!(ra.corr, rb.corr);
        }
    }

    fn run_parallel_with(scenario: Scenario, threads: usize) -> DetectionCampaignResult {
        let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
        let mut det = YoloGrid::new(&dcfg);
        let ds = DetectionDataset::new(scenario.dataset_size, dcfg.num_classes, 3, 32, 3);
        let loader = DetectionLoader::new(ds, scenario.batch_size);
        ObjDetCampaign::new(&mut det, scenario, loader).run_parallel(threads).unwrap()
    }

    #[test]
    fn parallel_detection_matches_sequential_bit_exactly() {
        let mut s = Scenario::default();
        s.dataset_size = 5;
        s.injection_target = InjectionTarget::Weights;
        s.fault_mode = FaultMode::exponent_bit_flip();
        let seq = run_with(s.clone());
        for threads in [1, 2, 4] {
            let par = run_parallel_with(s.clone(), threads);
            assert_eq!(par.rows.len(), seq.rows.len());
            for (rs, rp) in seq.rows.iter().zip(par.rows.iter()) {
                assert_eq!(rs.image_id, rp.image_id);
                assert_eq!(rs.orig, rp.orig, "orig differs at {threads} threads");
                assert_eq!(rs.corr, rp.corr, "corr differs at {threads} threads");
                assert_eq!(rs.faults, rp.faults);
                assert_eq!((rs.corr_nan, rs.corr_inf), (rp.corr_nan, rp.corr_inf));
            }
            assert_eq!(seq.trace.entries, par.trace.entries);
        }
    }

    #[test]
    fn parallel_detection_neuron_faults_match_sequential() {
        let mut s = Scenario::default();
        s.dataset_size = 4;
        s.injection_target = InjectionTarget::Neurons;
        s.fault_mode = FaultMode::RandomValue { min: 100.0, max: 100.1 };
        let seq = run_with(s.clone());
        let par = run_parallel_with(s, 3);
        for (rs, rp) in seq.rows.iter().zip(par.rows.iter()) {
            assert_eq!(rs.corr, rp.corr);
            assert_eq!(rs.faults, rp.faults);
        }
    }

    #[test]
    fn parallel_detection_rejects_non_per_image_policy() {
        let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
        let mut det = YoloGrid::new(&dcfg);
        let mut s = Scenario::default();
        s.dataset_size = 3;
        s.injection_policy = InjectionPolicy::PerEpoch;
        s.injection_target = InjectionTarget::Weights;
        let ds = DetectionDataset::new(3, dcfg.num_classes, 3, 32, 3);
        let loader = DetectionLoader::new(ds, 1);
        assert!(ObjDetCampaign::new(&mut det, s, loader).run_parallel(2).is_err());
    }

    #[test]
    fn parallel_detection_requires_cloneable_detector() {
        struct NoClone(YoloGrid);
        impl Detector for NoClone {
            fn name(&self) -> &str {
                "no_clone"
            }
            fn num_classes(&self) -> usize {
                self.0.num_classes()
            }
            fn networks(&self) -> Vec<&alfi_nn::graph::Network> {
                self.0.networks()
            }
            fn networks_mut(&mut self) -> Vec<&mut alfi_nn::graph::Network> {
                self.0.networks_mut()
            }
            fn detect(
                &self,
                images: &Tensor,
            ) -> Result<Vec<Vec<Detection>>, alfi_nn::NnError> {
                self.0.detect(images)
            }
        }
        let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
        let mut det = NoClone(YoloGrid::new(&dcfg));
        let mut s = Scenario::default();
        s.dataset_size = 2;
        s.injection_target = InjectionTarget::Weights;
        let ds = DetectionDataset::new(2, dcfg.num_classes, 3, 32, 3);
        let loader = DetectionLoader::new(ds, 1);
        let err = ObjDetCampaign::new(&mut det, s, loader).run_parallel(2).unwrap_err();
        assert!(matches!(err, CoreError::Unsupported { .. }), "got {err:?}");
    }
}
