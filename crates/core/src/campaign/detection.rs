//! High-level object-detection campaign — the
//! `test_error_models_objdet.py` equivalent.
//!
//! Runs fault-free and faulty detection passes in lock-step over a
//! detection dataset (§V-B, §V-F-2). Faults may land in any of the
//! detector's networks (backbone, heads, second stage); the fault
//! record's layer index spans the combined injectable-layer list.

use crate::campaign::config::RunConfig;
use crate::error::CoreError;
use crate::fault::AppliedFault;
use crate::injector::{arm_faults, injection_event};
use crate::matrix::{resolve_targets, FaultMatrix, LayerTarget};
use crate::monitor::{attach_monitor, NanInfMonitor};
use crate::persist::{save_events, save_fault_matrix, RunTrace, TraceEntry};
use alfi_datasets::loader::DetectionLoader;
use alfi_datasets::GroundTruthBox;
use alfi_nn::detection::{Detection, Detector};
use alfi_scenario::{InjectionPolicy, Scenario};
use alfi_trace::{EffectClass, Phase, Recorder, RunMeta};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Per-image detection campaign row.
#[derive(Debug, Clone)]
pub struct DetectionRow {
    /// Dataset image id.
    pub image_id: u64,
    /// Ground-truth objects for the image.
    pub ground_truth: Vec<GroundTruthBox>,
    /// Fault-free detections.
    pub orig: Vec<Detection>,
    /// Fault-injected detections.
    pub corr: Vec<Detection>,
    /// Hardened (mitigation) detector output under the same faults,
    /// when a resil detector was given.
    pub resil: Option<Vec<Detection>>,
    /// Faults applied while this image was processed.
    pub faults: Vec<AppliedFault>,
    /// NaN elements observed in the corrupted detector's networks.
    pub corr_nan: usize,
    /// Infinite elements observed in the corrupted detector's networks.
    pub corr_inf: usize,
}

/// Full detection campaign output.
#[derive(Debug, Clone)]
pub struct DetectionCampaignResult {
    /// One row per processed image.
    pub rows: Vec<DetectionRow>,
    /// The scenario that ran.
    pub scenario: Scenario,
    /// The pre-generated fault matrix.
    pub fault_matrix: FaultMatrix,
    /// Applied-fault trace.
    pub trace: RunTrace,
    /// Detector model name.
    pub model_name: String,
}

impl DetectionCampaignResult {
    /// Writes the replay set into `dir`: `scenario.yml`, `faults.bin`
    /// and `trace.bin`. The detection-specific result files (COCO
    /// ground truth, intermediate detections, mAP/IVMOD metrics) are
    /// written by `alfi-eval`'s `write_detection_outputs`, which sits
    /// above this crate in the dependency graph.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] on filesystem failures.
    pub fn save_outputs(&self, dir: impl AsRef<Path>) -> Result<(), CoreError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        self.scenario
            .save(dir.join("scenario.yml"))
            .map_err(|e| CoreError::Io(e.to_string()))?;
        save_fault_matrix(&self.fault_matrix, dir.join("faults.bin"))?;
        self.trace.save(dir.join("trace.bin"))?;
        Ok(())
    }
}

/// The high-level object-detection campaign runner.
///
/// Unlike [`ImgClassCampaign`](crate::campaign::ImgClassCampaign),
/// which owns its [`Network`](alfi_nn::Network)s, the campaign
/// *borrows* its detector(s) mutably: detectors are trait objects of
/// arbitrary user types (multi-network pipelines, external wrappers)
/// that are typically expensive to clone and used again after the
/// campaign, so the campaign arms faults in place and disarms them
/// after each scope, returning every detector pristine (see DESIGN.md).
#[derive(Debug)]
pub struct ObjDetCampaign<'a, D: Detector + ?Sized> {
    detector: &'a mut D,
    resil_detector: Option<&'a mut D>,
    scenario: Scenario,
    loader: DetectionLoader,
    fault_matrix: Option<FaultMatrix>,
}

impl<'a, D: Detector + ?Sized> ObjDetCampaign<'a, D> {
    /// Creates a campaign over `detector` with the given scenario and
    /// data.
    pub fn new(detector: &'a mut D, scenario: Scenario, loader: DetectionLoader) -> Self {
        ObjDetCampaign { detector, resil_detector: None, scenario, loader, fault_matrix: None }
    }

    /// Replays a previously persisted fault matrix instead of generating
    /// a new one (the paper's `fault_file` parameter of
    /// `test_rand_ObjDet_SBFs_inj`).
    pub fn with_fault_matrix(mut self, matrix: FaultMatrix) -> Self {
        self.fault_matrix = Some(matrix);
        self
    }

    /// Adds a hardened detector to run in lock-step under the *same*
    /// faults — the detection counterpart of
    /// [`ImgClassCampaign::with_resil_model`](crate::campaign::ImgClassCampaign::with_resil_model).
    /// The hardened detector must expose the same injectable-layer list
    /// as the primary one (mitigation wrappers insert only
    /// non-injectable protection nodes, preserving it). Like the
    /// primary detector it is borrowed, armed in place and returned
    /// pristine.
    pub fn with_resil_detector(mut self, resil: &'a mut D) -> Self {
        self.resil_detector = Some(resil);
        self
    }

    /// Resolves injectable-layer targets and the fault matrix for the
    /// primary detector, plus aligned targets for the hardened detector
    /// when one was attached.
    #[allow(clippy::type_complexity)]
    fn resolve_run_inputs(
        &self,
        input_dims: &[usize],
    ) -> Result<(Vec<LayerTarget>, Option<Vec<LayerTarget>>, FaultMatrix), CoreError> {
        // Reference shapes: the first (primary) network sees the image;
        // further networks (e.g. RoI heads) have run-time-dependent
        // inputs, so their neuron coordinates fall back to channel
        // bounds.
        let nets = self.detector.networks();
        let mut dims: Vec<Option<Vec<usize>>> = vec![None; nets.len()];
        dims[0] = Some(input_dims.to_vec());
        let targets = resolve_targets(&nets, &self.scenario, &dims)?;
        let resil_targets = match &self.resil_detector {
            Some(r) => {
                let rnets = r.networks();
                let mut rdims: Vec<Option<Vec<usize>>> = vec![None; rnets.len()];
                if !rdims.is_empty() {
                    rdims[0] = Some(input_dims.to_vec());
                }
                let rt = resolve_targets(&rnets, &self.scenario, &rdims)?;
                if rt.len() != targets.len() {
                    return Err(CoreError::FaultOutOfBounds {
                        detail: format!(
                            "hardened detector exposes {} injectable layers, original {}",
                            rt.len(),
                            targets.len()
                        ),
                    });
                }
                Some(rt)
            }
            None => None,
        };
        let matrix = match &self.fault_matrix {
            Some(m) => {
                if m.target != self.scenario.injection_target {
                    return Err(CoreError::CorruptFile {
                        kind: "fault",
                        reason: format!(
                            "replayed matrix target {:?} disagrees with scenario target {:?}",
                            m.target, self.scenario.injection_target
                        ),
                    });
                }
                m.clone()
            }
            None => FaultMatrix::generate(&self.scenario, &targets)?,
        };
        Ok((targets, resil_targets, matrix))
    }

    /// Runs the campaign with the given [`RunConfig`] — the single
    /// entry point unifying the former `run()` / `run_parallel(n)`
    /// split. `RunConfig::default()` reproduces `run()` byte-for-byte;
    /// `threads > 1` (or `0` = auto on a `per_image` scenario) fans
    /// per-image work out on the shared [`alfi_pool`] pool with
    /// bit-identical results for any thread count. An enabled
    /// [`Recorder`] collects phase timings, injection counters and
    /// fault-effect tallies; with [`RunConfig::save_dir`] set, the
    /// replay set and `events.jsonl` are persisted after the run.
    ///
    /// # Errors
    ///
    /// As for the sequential/parallel drivers: resolution/injection
    /// errors, rejection of non-`per_image` policies when parallel,
    /// [`CoreError::Unsupported`] for uncloneable detectors when
    /// parallel, [`CoreError::WorkerPanic`] for panicking workers.
    pub fn run_with(&mut self, cfg: &RunConfig) -> Result<DetectionCampaignResult, CoreError> {
        let rec = cfg.recorder.clone();
        if rec.is_enabled() {
            rec.set_meta(RunMeta {
                campaign: "detection".into(),
                model: self.detector.name().to_string(),
                scenario_hash: alfi_trace::hash_hex(self.scenario.to_yaml_string().as_bytes()),
                seed: self.scenario.seed,
                threads: cfg.threads,
            });
            rec.begin_items((self.scenario.dataset_size * self.scenario.num_runs) as u64);
        }
        let per_image = self.scenario.injection_policy == InjectionPolicy::PerImage;
        let result = match cfg.resolve_threads(per_image) {
            0 | 1 => self.run_seq_impl(&rec)?,
            threads => self.run_par_impl(threads, &rec)?,
        };
        record_detection_effects(&rec, &result);
        if let Some(dir) = &cfg.save_dir {
            let _span = rec.span(Phase::Persist);
            result.save_outputs(dir)?;
            save_events(&rec, dir)?;
        }
        Ok(result)
    }

    /// Runs the campaign, one image at a time.
    ///
    /// # Errors
    ///
    /// Returns resolution/injection errors; an exhausted fault matrix
    /// ends the run gracefully instead.
    #[deprecated(since = "0.2.0", note = "use `run_with(&RunConfig::default())`")]
    pub fn run(&mut self) -> Result<DetectionCampaignResult, CoreError> {
        self.run_seq_impl(&Recorder::disabled())
    }

    /// Sequential driver shared by [`run_with`](Self::run_with) and the
    /// deprecated [`run`](Self::run).
    fn run_seq_impl(&mut self, rec: &Recorder) -> Result<DetectionCampaignResult, CoreError> {
        let input_dims = {
            let ds = self.loader.dataset();
            vec![1usize, 3, ds.image_hw(), ds.image_hw()]
        };
        let (targets, resil_targets, matrix) = self.resolve_run_inputs(&input_dims)?;

        let mut rows = Vec::new();
        let mut trace = RunTrace::default();
        let mut slot = 0usize;

        for epoch in 0..self.scenario.num_runs as u64 {
            let mut epoch_armed = false;
            let batches: Vec<_> = self.loader.iter_epoch(epoch).collect();
            for batch in batches {
                let n = batch.records.len();
                for i in 0..n {
                    if slot >= matrix.num_slots() {
                        break;
                    }
                    let advance = match self.scenario.injection_policy {
                        InjectionPolicy::PerImage => true,
                        InjectionPolicy::PerBatch => i == 0,
                        InjectionPolicy::PerEpoch => !epoch_armed,
                    };
                    let faults = if advance {
                        epoch_armed = true;
                        let f = matrix.faults_for_slot(slot).to_vec();
                        slot += 1;
                        f
                    } else {
                        matrix.faults_for_slot(slot - 1).to_vec()
                    };

                    let image = batch.images.batch_item(i).map_err(alfi_nn::NnError::from)?;
                    let image =
                        alfi_tensor::Tensor::stack(&[image]).map_err(alfi_nn::NnError::from)?;
                    let record = &batch.records[i];

                    // Fault-free pass.
                    let orig = {
                        let _span = rec.span(Phase::Forward);
                        self.detector.detect(&image)?.remove(0)
                    };

                    // Arm faults + monitors in place, detect, disarm.
                    let monitor = Arc::new(NanInfMonitor::new());
                    let (applied, totals, corr) = {
                        let mut nets = self.detector.networks_mut();
                        let mut monitor_handles = Vec::new();
                        for net in nets.iter_mut() {
                            monitor_handles.push(attach_monitor(
                                net,
                                Arc::<NanInfMonitor>::clone(&monitor) as _,
                            )?);
                        }
                        let armed = {
                            let _span = rec.span(Phase::Inject);
                            arm_faults(
                                &mut nets,
                                &targets,
                                &faults,
                                self.scenario.injection_target,
                            )?
                        };
                        drop(nets);
                        let corr = {
                            let _span = rec.span(Phase::Forward);
                            self.detector.detect(&image)?.remove(0)
                        };
                        let applied = armed.collect_applied();
                        rec.record_applied(applied.len() as u64);
        rec.record_applied(applied.len() as u64);
                        let totals = monitor.totals();
                        let mut nets = self.detector.networks_mut();
                        armed.disarm(&mut nets);
                        for (net, handles) in nets.iter_mut().zip(monitor_handles) {
                            for h in handles {
                                net.remove_hook(h);
                            }
                        }
                        (applied, totals, corr)
                    };
                    monitor.report_to(rec);

                    // Hardened pass under identical faults, detector
                    // returned pristine like the primary one.
                    let resil = match (&mut self.resil_detector, &resil_targets) {
                        (Some(rdet), Some(rt)) => {
                            let armed_r = {
                                let _span = rec.span(Phase::Inject);
                                let mut nets = rdet.networks_mut();
                                arm_faults(
                                    &mut nets,
                                    rt,
                                    &faults,
                                    self.scenario.injection_target,
                                )?
                            };
                            let out = {
                                let _span = rec.span(Phase::Forward);
                                rdet.detect(&image)?.remove(0)
                            };
                            let mut nets = rdet.networks_mut();
                            armed_r.disarm(&mut nets);
                            Some(out)
                        }
                        _ => None,
                    };

                    let _eval = rec.span(Phase::Eval);
                    for a in &applied {
                        trace.entries.push(TraceEntry {
                            image_id: record.image_id,
                            applied: *a,
                            output_nan_count: totals.nan as u32,
                            output_inf_count: totals.inf as u32,
                        });
                    }
                    rows.push(DetectionRow {
                        image_id: record.image_id,
                        ground_truth: batch.objects[i].clone(),
                        orig,
                        corr,
                        resil,
                        faults: applied,
                        corr_nan: totals.nan,
                        corr_inf: totals.inf,
                    });
                    rec.item_finished();
                }
            }
        }
        Ok(DetectionCampaignResult {
            rows,
            scenario: self.scenario.clone(),
            fault_matrix: matrix,
            trace,
            model_name: self.detector.name().to_string(),
        })
    }

    /// Parallel variant of [`ObjDetCampaign::run`] for `per_image`
    /// scenarios. Every image gets its own private detector clone
    /// (via [`Detector::clone_boxed`]), so workers arm faults without
    /// sharing mutable state; results merge in slot order, making row
    /// order, fault assignment and all outputs bit-identical to the
    /// sequential run for any thread count (clamped by
    /// `ALFI_POOL_THREADS`).
    ///
    /// # Errors
    ///
    /// Rejects non-`per_image` policies (their fault scopes are
    /// inherently sequential), returns [`CoreError::Unsupported`] when
    /// the detector cannot be cloned, and surfaces a panicking worker
    /// as [`CoreError::WorkerPanic`] instead of unwinding.
    #[deprecated(since = "0.2.0", note = "use `run_with(&RunConfig::new().threads(n))`")]
    pub fn run_parallel(&mut self, threads: usize) -> Result<DetectionCampaignResult, CoreError> {
        self.run_par_impl(threads, &Recorder::disabled())
    }

    /// Parallel driver shared by [`run_with`](Self::run_with) and the
    /// deprecated [`run_parallel`](Self::run_parallel).
    fn run_par_impl(
        &mut self,
        threads: usize,
        rec: &Recorder,
    ) -> Result<DetectionCampaignResult, CoreError> {
        if self.scenario.injection_policy != InjectionPolicy::PerImage {
            return Err(CoreError::Scenario(alfi_scenario::ScenarioError::InvalidField {
                field: "injection_policy",
                reason: "run_parallel requires per_image".into(),
            }));
        }
        let threads = threads.max(1);
        let input_dims = {
            let ds = self.loader.dataset();
            vec![1usize, 3, ds.image_hw(), ds.image_hw()]
        };
        let (targets, resil_targets, matrix) = self.resolve_run_inputs(&input_dims)?;

        // Materialize the work list and a private detector clone per
        // item. Clones are built on the caller thread (so detector
        // types only need `Send`, not `Sync`) and each task locks only
        // its own — the mutex is uncontended and exists purely to hand
        // `&mut` access through the shared closure.
        struct WorkItem {
            slot: usize,
            image: alfi_tensor::Tensor,
            record: alfi_datasets::ImageRecord,
            ground_truth: Vec<GroundTruthBox>,
        }
        let mut work = Vec::new();
        let mut slot = 0usize;
        for epoch in 0..self.scenario.num_runs as u64 {
            let batches: Vec<_> = self.loader.iter_epoch(epoch).collect();
            for batch in batches {
                for i in 0..batch.records.len() {
                    if slot >= matrix.num_slots() {
                        break;
                    }
                    let image = batch.images.batch_item(i).map_err(alfi_nn::NnError::from)?;
                    let image =
                        alfi_tensor::Tensor::stack(&[image]).map_err(alfi_nn::NnError::from)?;
                    work.push(WorkItem {
                        slot,
                        image,
                        record: batch.records[i].clone(),
                        ground_truth: batch.objects[i].clone(),
                    });
                    slot += 1;
                }
            }
        }
        let clone_of = |det: &D, role: &str| {
            det.clone_boxed().ok_or_else(|| CoreError::Unsupported {
                reason: format!(
                    "{role} detector `{}` does not implement clone_boxed, required by parallel runs",
                    det.name()
                ),
            })
        };
        let mut clones: Vec<Mutex<Box<dyn Detector>>> = Vec::with_capacity(work.len());
        let mut resil_clones: Vec<Mutex<Box<dyn Detector>>> = Vec::new();
        for _ in 0..work.len() {
            clones.push(Mutex::new(clone_of(self.detector, "primary")?));
            if let Some(r) = &self.resil_detector {
                resil_clones.push(Mutex::new(clone_of(r, "hardened")?));
            }
        }

        let scenario_ref = &self.scenario;
        let targets_ref = &targets;
        let resil_targets_ref = resil_targets.as_deref();
        let matrix_ref = &matrix;
        let clones_ref = &clones;
        let resil_clones_ref = &resil_clones;
        let work_ref = &work;
        let outcomes = alfi_pool::global()
            .try_run_indexed(threads, work.len(), |idx| {
                let item = &work_ref[idx];
                let mut det = clones_ref[idx].lock().expect("detector clone lock");
                let mut resil_guard = resil_clones_ref
                    .get(idx)
                    .map(|m| m.lock().expect("hardened detector clone lock"));
                let resil: Option<&mut dyn Detector> = match resil_guard.as_mut() {
                    Some(g) => Some(&mut ***g),
                    None => None,
                };
                process_detection_image(
                    &mut **det,
                    resil,
                    scenario_ref,
                    targets_ref,
                    resil_targets_ref,
                    matrix_ref,
                    item.slot,
                    &item.image,
                    &item.record,
                    &item.ground_truth,
                    rec,
                )
            })
            .map_err(|p| CoreError::WorkerPanic { message: p.message() })?;

        let mut rows = Vec::with_capacity(work.len());
        let mut trace = RunTrace::default();
        for outcome in outcomes {
            let (row, entries) = outcome?;
            rows.push(row);
            trace.entries.extend(entries);
        }
        Ok(DetectionCampaignResult {
            rows,
            scenario: self.scenario.clone(),
            fault_matrix: matrix,
            trace,
            model_name: self.detector.name().to_string(),
        })
    }
}

/// Runs the fault-free / faulty (/ hardened) detection passes for one
/// image on throwaway detector clones — shared logic of the parallel
/// campaign path. The clones are discarded afterwards, so faults are
/// not disarmed.
#[allow(clippy::too_many_arguments)]
fn process_detection_image(
    det: &mut dyn Detector,
    resil: Option<&mut dyn Detector>,
    scenario: &Scenario,
    targets: &[LayerTarget],
    resil_targets: Option<&[LayerTarget]>,
    matrix: &FaultMatrix,
    slot: usize,
    image: &alfi_tensor::Tensor,
    record: &alfi_datasets::ImageRecord,
    ground_truth: &[GroundTruthBox],
    rec: &Recorder,
) -> Result<(DetectionRow, Vec<TraceEntry>), CoreError> {
    let worker = alfi_pool::worker_index();
    let faults = matrix.faults_for_slot(slot).to_vec();

    // Fault-free pass on the still-pristine clone.
    let orig = {
        let _span = rec.span_on(Phase::Forward, worker);
        det.detect(image)?.remove(0)
    };

    // Arm faults + monitors, corrupted pass.
    let monitor = Arc::new(NanInfMonitor::new());
    let armed = {
        let _span = rec.span_on(Phase::Inject, worker);
        let mut nets = det.networks_mut();
        for net in nets.iter_mut() {
            attach_monitor(net, Arc::<NanInfMonitor>::clone(&monitor) as _)?;
        }
        arm_faults(&mut nets, targets, &faults, scenario.injection_target)?
    };
    let corr = {
        let _span = rec.span_on(Phase::Forward, worker);
        det.detect(image)?.remove(0)
    };
    let applied = armed.collect_applied();
    rec.record_applied(applied.len() as u64);
    let totals = monitor.totals();
    monitor.report_to(rec);

    // Hardened pass under identical faults on the hardened clone.
    let resil_out = match (resil, resil_targets) {
        (Some(rdet), Some(rt)) => {
            {
                let _span = rec.span_on(Phase::Inject, worker);
                let mut nets = rdet.networks_mut();
                arm_faults(&mut nets, rt, &faults, scenario.injection_target)?;
            }
            let _span = rec.span_on(Phase::Forward, worker);
            Some(rdet.detect(image)?.remove(0))
        }
        _ => None,
    };

    let _eval = rec.span_on(Phase::Eval, worker);
    let entries: Vec<TraceEntry> = applied
        .iter()
        .map(|a| TraceEntry {
            image_id: record.image_id,
            applied: *a,
            output_nan_count: totals.nan as u32,
            output_inf_count: totals.inf as u32,
        })
        .collect();
    let out = (
        DetectionRow {
            image_id: record.image_id,
            ground_truth: ground_truth.to_vec(),
            orig,
            corr,
            resil: resil_out,
            faults: applied,
            corr_nan: totals.nan,
            corr_inf: totals.inf,
        },
        entries,
    );
    rec.item_finished();
    Ok(out)
}

/// Post-run trace bookkeeping shared by the sequential and parallel
/// paths (deterministic row/trace order for any thread count).
fn record_detection_effects(rec: &Recorder, result: &DetectionCampaignResult) {
    if !rec.is_enabled() {
        return;
    }
    for row in &result.rows {
        rec.record_outcome(classify_detection_row(row));
    }
    for entry in &result.trace.entries {
        rec.record_injection(injection_event(entry.image_id, &entry.applied));
    }
}

/// Trace-level fault-effect classification of one detection row: DUE
/// when non-finite values surfaced in the corrupted networks, SDC when
/// the detection set silently changed, masked otherwise.
fn classify_detection_row(row: &DetectionRow) -> EffectClass {
    if row.corr_nan + row.corr_inf > 0 {
        EffectClass::Due
    } else if row.corr != row.orig {
        EffectClass::Sdc
    } else {
        EffectClass::Masked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_datasets::detection::DetectionDataset;
    use alfi_nn::detection::{DetectorConfig, YoloGrid};
    use alfi_scenario::{FaultMode, InjectionTarget};
    use alfi_tensor::Tensor;

    fn run_campaign(scenario: Scenario) -> DetectionCampaignResult {
        let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
        let mut det = YoloGrid::new(&dcfg);
        let ds = DetectionDataset::new(scenario.dataset_size, dcfg.num_classes, 3, 32, 3);
        let loader = DetectionLoader::new(ds, scenario.batch_size);
        ObjDetCampaign::new(&mut det, scenario, loader)
            .run_with(&RunConfig::default())
            .unwrap()
    }

    #[test]
    fn detection_campaign_produces_rows_and_traces() {
        let mut s = Scenario::default();
        s.dataset_size = 4;
        s.injection_target = InjectionTarget::Weights;
        s.fault_mode = FaultMode::exponent_bit_flip();
        let result = run_campaign(s);
        assert_eq!(result.rows.len(), 4);
        assert_eq!(result.model_name, "yolo_grid");
        for row in &result.rows {
            assert!(!row.ground_truth.is_empty());
            assert_eq!(row.faults.len(), 1);
            assert!(row.resil.is_none());
        }
        assert_eq!(result.trace.entries.len(), 4);
    }

    #[test]
    fn deprecated_run_matches_run_with_default() {
        let mut s = Scenario::default();
        s.dataset_size = 3;
        s.injection_target = InjectionTarget::Weights;
        let via_config = run_campaign(s.clone());
        let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
        let mut det = YoloGrid::new(&dcfg);
        let ds = DetectionDataset::new(3, dcfg.num_classes, 3, 32, 3);
        let loader = DetectionLoader::new(ds, s.batch_size);
        #[allow(deprecated)]
        let via_run = ObjDetCampaign::new(&mut det, s, loader).run().unwrap();
        assert_eq!(via_config.rows.len(), via_run.rows.len());
        for (a, b) in via_config.rows.iter().zip(via_run.rows.iter()) {
            assert_eq!(a.orig, b.orig);
            assert_eq!(a.corr, b.corr);
            assert_eq!(a.faults, b.faults);
        }
        assert_eq!(via_config.trace, via_run.trace);
    }

    #[test]
    fn detector_is_pristine_after_campaign() {
        let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
        let mut det = YoloGrid::new(&dcfg);
        let reference = YoloGrid::new(&dcfg);
        let probe = Tensor::ones(&[1, 3, 32, 32]);
        let before = reference.detect(&probe).unwrap();

        let mut s = Scenario::default();
        s.dataset_size = 3;
        s.injection_target = InjectionTarget::Weights;
        let ds = DetectionDataset::new(3, dcfg.num_classes, 3, 32, 3);
        let loader = DetectionLoader::new(ds, 1);
        ObjDetCampaign::new(&mut det, s, loader).run_with(&RunConfig::default()).unwrap();

        let after = det.detect(&probe).unwrap();
        assert_eq!(before, after, "weights must be reverted and hooks removed");
        assert_eq!(det.networks()[0].num_hooks(), 0);
    }

    #[test]
    fn resil_detector_runs_in_lockstep_and_stays_pristine() {
        let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
        let mut det = YoloGrid::new(&dcfg);
        let mut resil = YoloGrid::new(&dcfg);
        let reference = YoloGrid::new(&dcfg);
        let probe = Tensor::ones(&[1, 3, 32, 32]);
        let before = reference.detect(&probe).unwrap();

        let mut s = Scenario::default();
        s.dataset_size = 3;
        s.injection_target = InjectionTarget::Weights;
        s.fault_mode = FaultMode::exponent_bit_flip();
        let ds = DetectionDataset::new(3, dcfg.num_classes, 3, 32, 3);
        let loader = DetectionLoader::new(ds, 1);
        let result = ObjDetCampaign::new(&mut det, s, loader)
            .with_resil_detector(&mut resil)
            .run_with(&RunConfig::default())
            .unwrap();
        for row in &result.rows {
            // identical model + identical faults => identical output
            assert_eq!(row.resil.as_ref(), Some(&row.corr));
        }
        assert_eq!(resil.detect(&probe).unwrap(), before, "hardened detector left pristine");
    }

    #[test]
    fn parallel_resil_matches_sequential() {
        let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
        let mut s = Scenario::default();
        s.dataset_size = 4;
        s.injection_target = InjectionTarget::Weights;
        s.fault_mode = FaultMode::exponent_bit_flip();
        let run = |threads: usize| {
            let mut det = YoloGrid::new(&dcfg);
            let mut resil = YoloGrid::new(&dcfg);
            let ds = DetectionDataset::new(4, dcfg.num_classes, 3, 32, 3);
            let loader = DetectionLoader::new(ds, 1);
            ObjDetCampaign::new(&mut det, s.clone(), loader)
                .with_resil_detector(&mut resil)
                .run_with(&RunConfig::new().threads(threads))
                .unwrap()
        };
        let seq = run(1);
        let par = run(3);
        for (a, b) in seq.rows.iter().zip(par.rows.iter()) {
            assert_eq!(a.resil, b.resil);
            assert_eq!(a.corr, b.corr);
        }
    }

    #[test]
    fn neuron_faults_into_detector_apply() {
        let mut s = Scenario::default();
        s.dataset_size = 3;
        s.injection_target = InjectionTarget::Neurons;
        s.fault_mode = FaultMode::RandomValue { min: 100.0, max: 100.1 };
        let result = run_campaign(s);
        let applied: usize = result.rows.iter().map(|r| r.faults.len()).sum();
        assert!(applied >= 2, "most neuron faults should land (batch 1), got {applied}");
    }

    #[test]
    fn detection_campaign_is_deterministic() {
        let mut s = Scenario::default();
        s.dataset_size = 3;
        s.injection_target = InjectionTarget::Weights;
        let a = run_campaign(s.clone());
        let b = run_campaign(s);
        for (ra, rb) in a.rows.iter().zip(b.rows.iter()) {
            assert_eq!(ra.orig, rb.orig);
            assert_eq!(ra.corr, rb.corr);
        }
    }

    fn run_campaign_parallel(scenario: Scenario, threads: usize) -> DetectionCampaignResult {
        let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
        let mut det = YoloGrid::new(&dcfg);
        let ds = DetectionDataset::new(scenario.dataset_size, dcfg.num_classes, 3, 32, 3);
        let loader = DetectionLoader::new(ds, scenario.batch_size);
        ObjDetCampaign::new(&mut det, scenario, loader)
            .run_with(&RunConfig::new().threads(threads))
            .unwrap()
    }

    #[test]
    fn parallel_detection_matches_sequential_bit_exactly() {
        let mut s = Scenario::default();
        s.dataset_size = 5;
        s.injection_target = InjectionTarget::Weights;
        s.fault_mode = FaultMode::exponent_bit_flip();
        let seq = run_campaign(s.clone());
        for threads in [1, 2, 4] {
            let par = run_campaign_parallel(s.clone(), threads);
            assert_eq!(par.rows.len(), seq.rows.len());
            for (rs, rp) in seq.rows.iter().zip(par.rows.iter()) {
                assert_eq!(rs.image_id, rp.image_id);
                assert_eq!(rs.orig, rp.orig, "orig differs at {threads} threads");
                assert_eq!(rs.corr, rp.corr, "corr differs at {threads} threads");
                assert_eq!(rs.faults, rp.faults);
                assert_eq!((rs.corr_nan, rs.corr_inf), (rp.corr_nan, rp.corr_inf));
            }
            assert_eq!(seq.trace.entries, par.trace.entries);
        }
    }

    #[test]
    fn parallel_detection_neuron_faults_match_sequential() {
        let mut s = Scenario::default();
        s.dataset_size = 4;
        s.injection_target = InjectionTarget::Neurons;
        s.fault_mode = FaultMode::RandomValue { min: 100.0, max: 100.1 };
        let seq = run_campaign(s.clone());
        let par = run_campaign_parallel(s, 3);
        for (rs, rp) in seq.rows.iter().zip(par.rows.iter()) {
            assert_eq!(rs.corr, rp.corr);
            assert_eq!(rs.faults, rp.faults);
        }
    }

    #[test]
    fn parallel_detection_rejects_non_per_image_policy() {
        let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
        let mut det = YoloGrid::new(&dcfg);
        let mut s = Scenario::default();
        s.dataset_size = 3;
        s.injection_policy = InjectionPolicy::PerEpoch;
        s.injection_target = InjectionTarget::Weights;
        let ds = DetectionDataset::new(3, dcfg.num_classes, 3, 32, 3);
        let loader = DetectionLoader::new(ds, 1);
        assert!(ObjDetCampaign::new(&mut det, s, loader)
            .run_with(&RunConfig::new().threads(2))
            .is_err());
    }

    #[test]
    fn parallel_detection_requires_cloneable_detector() {
        struct NoClone(YoloGrid);
        impl Detector for NoClone {
            fn name(&self) -> &str {
                "no_clone"
            }
            fn num_classes(&self) -> usize {
                self.0.num_classes()
            }
            fn networks(&self) -> Vec<&alfi_nn::graph::Network> {
                self.0.networks()
            }
            fn networks_mut(&mut self) -> Vec<&mut alfi_nn::graph::Network> {
                self.0.networks_mut()
            }
            fn detect(
                &self,
                images: &Tensor,
            ) -> Result<Vec<Vec<Detection>>, alfi_nn::NnError> {
                self.0.detect(images)
            }
        }
        let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
        let mut det = NoClone(YoloGrid::new(&dcfg));
        let mut s = Scenario::default();
        s.dataset_size = 2;
        s.injection_target = InjectionTarget::Weights;
        let ds = DetectionDataset::new(2, dcfg.num_classes, 3, 32, 3);
        let loader = DetectionLoader::new(ds, 1);
        let err = ObjDetCampaign::new(&mut det, s, loader)
            .run_with(&RunConfig::new().threads(2))
            .unwrap_err();
        assert!(matches!(err, CoreError::Unsupported { .. }), "got {err:?}");
    }

    #[test]
    fn save_outputs_writes_the_replay_set() {
        let mut s = Scenario::default();
        s.dataset_size = 2;
        s.injection_target = InjectionTarget::Weights;
        let dir = std::env::temp_dir().join("alfi_det_replay_set");
        let _ = std::fs::remove_dir_all(&dir);
        let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.125, ..DetectorConfig::default() };
        let mut det = YoloGrid::new(&dcfg);
        let ds = DetectionDataset::new(2, dcfg.num_classes, 3, 32, 3);
        let loader = DetectionLoader::new(ds, 1);
        let result = ObjDetCampaign::new(&mut det, s, loader)
            .run_with(
                &RunConfig::new()
                    .recorder(alfi_trace::Recorder::new())
                    .save_dir(&dir),
            )
            .unwrap();
        for f in ["scenario.yml", "faults.bin", "trace.bin", "events.jsonl"] {
            assert!(dir.join(f).exists(), "{f} missing");
        }
        let m = crate::persist::load_fault_matrix(dir.join("faults.bin")).unwrap();
        assert_eq!(m, result.fault_matrix);
        let events = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
        assert!(events.contains("\"campaign\":\"detection\""));
        assert!(events.contains("\"event\":\"summary\""));
    }
}
