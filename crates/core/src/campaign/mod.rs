//! High-level campaign runners: the `TestErrorModels_*` equivalents that
//! tightly couple fault-free, faulty and hardened models over a dataset
//! and produce the paper's three output sets.

pub mod classification;
pub mod config;
pub mod detection;

pub use classification::{
    ClassificationCampaignResult, ClassificationRow, CsvVariant, ImgClassCampaign, TopK,
};
pub use config::RunConfig;
pub use detection::{DetectionCampaignResult, DetectionRow, ObjDetCampaign};
