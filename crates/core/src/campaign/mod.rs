//! High-level campaign runners: the `TestErrorModels_*` equivalents that
//! tightly couple fault-free, faulty and hardened models over a dataset
//! and produce the paper's three output sets.
//!
//! All campaigns are thin [`CampaignTask`] adapters over the shared
//! [`Engine`] in [`engine`], which owns policy iteration, fault-slot
//! assignment, replay validation, tracing, pool fan-out and
//! persistence for every campaign type and thread count.

pub mod classification;
pub mod config;
pub mod detection;
pub mod engine;
pub mod report;
pub(crate) mod stop;
pub mod vit;

pub use alfi_scenario::{ArtifactFormat, CiMethod, StopPolicy, StopScope};
pub use classification::{
    ClassificationCampaignResult, ClassificationRow, CsvVariant, ImgClassCampaign, TopK,
};
pub use config::RunConfig;
pub use detection::{DetectionCampaignResult, DetectionRow, ObjDetCampaign};
pub use engine::{CampaignTask, Engine, ScopeCtx, ScopeSink, SlotCursor};
pub use report::{install_report_hook, report_hook_installed, ReportHook};
pub use vit::VitCampaign;
