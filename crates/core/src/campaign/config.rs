//! Unified campaign run configuration.
//!
//! [`RunConfig`] is the single entry point for everything that used to
//! be spread across `run()` / `run_parallel(threads)` call sites plus
//! ad-hoc `save_outputs` calls: threading, observability and
//! persistence are configured in one builder-style value and handed to
//! [`run_with`](crate::campaign::ImgClassCampaign::run_with).
//! `RunConfig::default()` reproduces the historical `run()` behaviour
//! byte-for-byte: sequential, untraced, nothing written to disk.

use alfi_metrics::{HealthPolicy, Registry};
use alfi_scenario::{ArtifactFormat, Scenario, StopPolicy};
use alfi_tensor::gemm::KernelPath;
use alfi_trace::Recorder;
use std::path::{Path, PathBuf};

/// How a campaign run executes: thread count, observability recorder
/// and optional output directory.
///
/// ```
/// use alfi_core::campaign::RunConfig;
/// use alfi_trace::Recorder;
///
/// let cfg = RunConfig::new().threads(4).recorder(Recorder::new());
/// assert_eq!(cfg.threads, 4);
/// assert!(cfg.recorder.is_enabled());
/// assert!(cfg.save_dir.is_none());
/// ```
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Parallelism of the campaign driver. `1` (the default) runs the
    /// sequential driver, which supports every injection policy. Values
    /// above `1` fan independent per-image work out on the shared
    /// [`alfi_pool`] pool (requires the `per_image` policy; clamped by
    /// `ALFI_POOL_THREADS`). `0` means "auto": the pool's default
    /// parallelism for `per_image` scenarios, sequential otherwise.
    pub threads: usize,
    /// Observability sink. The default [`Recorder::disabled`] collects
    /// nothing and costs nothing; pass [`Recorder::new`] to get span
    /// timings, injection counters, outcome tallies and the JSONL event
    /// log.
    pub recorder: Recorder,
    /// When set, the campaign persists its full output set (scenario,
    /// fault/trace binaries, result CSVs and — with an enabled recorder
    /// — `events.jsonl`; with metrics attached — `metrics.prom`) into
    /// this directory after the run.
    pub save_dir: Option<PathBuf>,
    /// Live metrics registry. When set, the engine publishes scope
    /// throughput, injection counts and outcome tallies into it as the
    /// campaign runs (and a `metrics.prom` snapshot lands under
    /// [`save_dir`](RunConfig::save_dir)). When `None` but
    /// [`metrics_addr`](RunConfig::metrics_addr) or
    /// [`health`](RunConfig::health) is set, the process-global
    /// registry ([`alfi_metrics::global`]) is used instead.
    pub metrics: Option<Registry>,
    /// When set, an HTTP endpoint serving Prometheus text at
    /// `GET /metrics` is bound on this address (e.g. `127.0.0.1:9184`)
    /// for the lifetime of the process. Implies metrics collection.
    pub metrics_addr: Option<String>,
    /// When set, a watchdog thread samples the metrics registry at the
    /// policy's interval and raises [`alfi_metrics::HealthEvent`]s
    /// (stall, DUE/SDC rate, NaN storm), which are surfaced on the
    /// recorder and in [`alfi_trace::TraceSummary::health`]. Implies
    /// metrics collection.
    pub health: Option<HealthPolicy>,
    /// Statistical early-stop policy. When set, the engine evaluates
    /// SDC/DUE confidence intervals at deterministic scope boundaries
    /// and ends the campaign (or retires per-layer strata) once the
    /// target half-width is reached. Overrides the scenario's
    /// `stop_policy` key; `None` falls back to the scenario, and a
    /// scenario without one runs the full matrix.
    pub stop: Option<StopPolicy>,
    /// Row-artifact encoding under [`save_dir`](RunConfig::save_dir):
    /// [`ArtifactFormat::Csv`] writes the historical `results_*.csv`
    /// files, [`ArtifactFormat::Binary`] writes one columnar
    /// `rows.alfic` store instead (convertible back to the exact CSV
    /// bytes with `alfi store convert`). Overrides the scenario's
    /// `format` key; `None` falls back to the scenario, and a scenario
    /// without one writes CSV.
    pub format: Option<ArtifactFormat>,
    /// Whether to generate `report.json` / `report.md` into
    /// [`save_dir`](RunConfig::save_dir) at finalize, through the
    /// process-global hook registered with
    /// [`install_report_hook`](crate::campaign::install_report_hook)
    /// (the `alfi` binary registers `alfi-analyze`'s generator at
    /// startup). Overrides the scenario's `report` key; `None` falls
    /// back to the scenario, and a scenario without one skips the
    /// report.
    pub report: Option<bool>,
    /// GEMM kernel path for every matmul / conv / linear the campaign
    /// executes. When set, the engine installs a process-wide kernel
    /// override for the duration of the run (restoring the previous
    /// selection afterwards); `None` leaves the ambient selection —
    /// the `ALFI_KERNEL` environment variable, defaulting to
    /// [`KernelPath::Blocked`] — untouched. Both paths are bit-exact
    /// by contract, so this only affects wall-clock, never results.
    pub kernel: Option<KernelPath>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            threads: 1,
            recorder: Recorder::disabled(),
            save_dir: None,
            metrics: None,
            metrics_addr: None,
            health: None,
            stop: None,
            format: None,
            report: None,
            kernel: None,
        }
    }
}

impl RunConfig {
    /// Alias for [`RunConfig::default`]: sequential, untraced, no
    /// persistence.
    pub fn new() -> Self {
        RunConfig::default()
    }

    /// Sets the driver parallelism (see [`RunConfig::threads`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Attaches an observability recorder (see [`RunConfig::recorder`]).
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Persists campaign outputs into `dir` after the run.
    pub fn save_dir(mut self, dir: impl AsRef<Path>) -> Self {
        self.save_dir = Some(dir.as_ref().to_path_buf());
        self
    }

    /// Attaches a live metrics registry (see [`RunConfig::metrics`]).
    pub fn metrics(mut self, registry: Registry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Serves Prometheus text on `addr` (see
    /// [`RunConfig::metrics_addr`]).
    pub fn metrics_addr(mut self, addr: impl Into<String>) -> Self {
        self.metrics_addr = Some(addr.into());
        self
    }

    /// Runs a health watchdog under `policy` (see
    /// [`RunConfig::health`]).
    pub fn health(mut self, policy: HealthPolicy) -> Self {
        self.health = Some(policy);
        self
    }

    /// Enables statistical early stopping (see [`RunConfig::stop`]).
    pub fn stop_policy(mut self, policy: StopPolicy) -> Self {
        self.stop = Some(policy);
        self
    }

    /// Selects the row-artifact encoding (see [`RunConfig::format`]).
    pub fn format(mut self, format: ArtifactFormat) -> Self {
        self.format = Some(format);
        self
    }

    /// Enables end-of-run report generation (see
    /// [`RunConfig::report`]).
    pub fn report(mut self, enabled: bool) -> Self {
        self.report = Some(enabled);
        self
    }

    /// Pins the GEMM kernel path for the run (see
    /// [`RunConfig::kernel`]).
    pub fn kernel(mut self, path: KernelPath) -> Self {
        self.kernel = Some(path);
        self
    }

    /// The effective stop policy for a scenario: an explicit
    /// [`stop`](RunConfig::stop) wins, else the scenario's
    /// `stop_policy` key, else none (run the full matrix).
    pub(crate) fn resolve_stop(&self, scenario: &Scenario) -> Option<StopPolicy> {
        self.stop.or(scenario.stop_policy)
    }

    /// The effective row-artifact format for a scenario: an explicit
    /// [`format`](RunConfig::format) wins, else the scenario's
    /// `format` key, else CSV.
    pub(crate) fn resolve_format(&self, scenario: &Scenario) -> ArtifactFormat {
        self.format.or(scenario.artifact_format).unwrap_or_default()
    }

    /// Whether the run should emit `report.json` / `report.md` at
    /// finalize: an explicit [`report`](RunConfig::report) wins, else
    /// the scenario's `report` key, else off.
    pub(crate) fn resolve_report(&self, scenario: &Scenario) -> bool {
        self.report.or(scenario.report).unwrap_or(false)
    }

    /// The registry the engine should publish into, if any: an explicit
    /// [`metrics`](RunConfig::metrics) registry wins; otherwise the
    /// process-global one when an endpoint or watchdog needs data.
    pub(crate) fn resolve_metrics(&self) -> Option<Registry> {
        self.metrics.clone().or_else(|| {
            (self.metrics_addr.is_some() || self.health.is_some())
                .then(|| alfi_metrics::global().clone())
        })
    }

    /// The driver parallelism to use for a scenario, resolving the `0`
    /// = "auto" sentinel: per-image scenarios get the global pool's
    /// default, everything else falls back to the sequential driver.
    pub(crate) fn resolve_threads(&self, per_image: bool) -> usize {
        match self.threads {
            0 if per_image => alfi_pool::global().threads(),
            0 => 1,
            n => n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sequential_untraced_and_unsaved() {
        let cfg = RunConfig::default();
        assert_eq!(cfg.threads, 1);
        assert!(!cfg.recorder.is_enabled());
        assert!(cfg.save_dir.is_none());
    }

    #[test]
    fn builder_sets_every_field() {
        let cfg = RunConfig::new().threads(8).recorder(Recorder::new()).save_dir("/tmp/x");
        assert_eq!(cfg.threads, 8);
        assert!(cfg.recorder.is_enabled());
        assert_eq!(cfg.save_dir.as_deref(), Some(Path::new("/tmp/x")));
    }

    #[test]
    fn metrics_resolution_prefers_explicit_registry() {
        assert!(RunConfig::new().resolve_metrics().is_none(), "metrics are opt-in");

        let own = Registry::new();
        let cfg = RunConfig::new().metrics(own.clone()).metrics_addr("127.0.0.1:0");
        let resolved = cfg.resolve_metrics().expect("explicit registry resolves");
        resolved.counter("cfg_test_total", "probe", alfi_metrics::Class::Runtime).inc();
        assert_eq!(own.snapshot().counter("cfg_test_total"), 1, "same registry");

        let cfg = RunConfig::new().health(HealthPolicy::default());
        assert!(cfg.resolve_metrics().is_some(), "watchdog alone implies the global registry");
    }

    #[test]
    fn stop_policy_resolution_prefers_explicit_config() {
        let mut scenario = Scenario::default();
        assert!(RunConfig::new().resolve_stop(&scenario).is_none(), "stop is opt-in");

        let from_yaml = StopPolicy { half_width: 0.2, ..StopPolicy::default() };
        scenario.stop_policy = Some(from_yaml);
        assert_eq!(RunConfig::new().resolve_stop(&scenario), Some(from_yaml));

        let explicit = StopPolicy { half_width: 0.01, ..StopPolicy::default() };
        let cfg = RunConfig::new().stop_policy(explicit);
        assert_eq!(cfg.resolve_stop(&scenario), Some(explicit), "RunConfig wins");
    }

    #[test]
    fn format_resolution_prefers_explicit_config() {
        let mut scenario = Scenario::default();
        assert_eq!(
            RunConfig::new().resolve_format(&scenario),
            ArtifactFormat::Csv,
            "CSV is the default"
        );

        scenario.artifact_format = Some(ArtifactFormat::Binary);
        assert_eq!(RunConfig::new().resolve_format(&scenario), ArtifactFormat::Binary);

        let cfg = RunConfig::new().format(ArtifactFormat::Csv);
        assert_eq!(cfg.resolve_format(&scenario), ArtifactFormat::Csv, "RunConfig wins");
    }

    #[test]
    fn report_resolution_prefers_explicit_config() {
        let mut scenario = Scenario::default();
        assert!(!RunConfig::new().resolve_report(&scenario), "reports are opt-in");

        scenario.report = Some(true);
        assert!(RunConfig::new().resolve_report(&scenario), "scenario key enables");

        let cfg = RunConfig::new().report(false);
        assert!(!cfg.resolve_report(&scenario), "RunConfig wins over the scenario");
        assert!(RunConfig::new().report(true).resolve_report(&Scenario::default()));
    }

    #[test]
    fn auto_threads_resolve_by_policy() {
        let cfg = RunConfig::new().threads(0);
        assert_eq!(cfg.resolve_threads(false), 1, "non-per-image stays sequential");
        assert!(cfg.resolve_threads(true) >= 1, "per-image uses the pool default");
        assert_eq!(RunConfig::new().threads(3).resolve_threads(false), 3);
    }
}
