//! End-of-run report hook registry.
//!
//! `alfi-analyze` (the post-run analysis crate) depends on `alfi-core`,
//! so the engine cannot call into it directly. Instead the engine
//! finalizes `report`-enabled runs through a process-global hook:
//! `alfi-analyze` registers its generator once via
//! [`install_report_hook`] (the `alfi` binary does this at startup) and
//! the engine invokes it with the artifact directory after every other
//! artifact has been written — so the hook sees the complete run.
//!
//! Installation is first-wins and permanent for the process; a
//! `report`-enabled run with no hook installed warns to stderr and
//! continues, because a missing report must never fail a finished
//! campaign.

use std::path::Path;
use std::sync::OnceLock;

/// An end-of-run report generator: receives the artifact directory
/// (every artifact already written) and writes its reports into it.
pub type ReportHook = fn(&Path) -> Result<(), String>;

static HOOK: OnceLock<ReportHook> = OnceLock::new();

/// Installs the process-global report hook. First-wins: returns `true`
/// when `hook` was installed, `false` when a hook was already present
/// (the existing one stays).
pub fn install_report_hook(hook: ReportHook) -> bool {
    HOOK.set(hook).is_ok()
}

/// Whether a report hook has been installed.
pub fn report_hook_installed() -> bool {
    HOOK.get().is_some()
}

/// Runs the installed hook against a finished run's artifact
/// directory. With no hook installed this warns to stderr and succeeds
/// — report generation is additive and must never fail a campaign that
/// already persisted its artifacts.
pub(crate) fn run_report_hook(dir: &Path) -> Result<(), String> {
    match HOOK.get() {
        Some(hook) => hook(dir),
        None => {
            eprintln!(
                "alfi: report requested for {} but no report hook is installed \
                 (run through the `alfi` binary or call \
                 alfi_analyze::install_engine_hook first)",
                dir.display()
            );
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_hook(_dir: &Path) -> Result<(), String> {
        Ok(())
    }

    #[test]
    fn install_is_first_wins_and_uninstalled_runs_warn_but_succeed() {
        // Before any install, a report-enabled run must not fail.
        if !report_hook_installed() {
            assert_eq!(run_report_hook(Path::new("/nonexistent")), Ok(()));
        }
        let first = install_report_hook(probe_hook);
        assert!(report_hook_installed());
        // A second install never displaces the first.
        assert!(!install_report_hook(probe_hook) || first);
        assert_eq!(run_report_hook(Path::new("/nonexistent")), Ok(()));
    }
}
