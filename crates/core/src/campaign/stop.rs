//! Statistical early-stop evaluation for the campaign engine.
//!
//! A [`StopPolicy`](alfi_scenario::StopPolicy) asks the engine to end a
//! campaign — or retire individual per-layer strata — once the SDC/DUE
//! rate confidence interval is tighter than a target half-width. The
//! paper's validation-efficiency argument (§V) is that most of a large
//! fault matrix buys no additional precision; this module is the
//! decision procedure that makes truncation safe and reproducible.
//!
//! # Determinism contract
//!
//! Decisions depend only on classified outcome counts, and they fire
//! only at *scope boundaries*: after every `check_every`-th armed scope
//! (armed = executed + skipped — a scope whose stratum is already
//! retired still advances the boundary clock). Nothing here reads the
//! wall clock, thread count or pool schedule, so a stopped run produces
//! byte-identical artifacts for any `ALFI_POOL_THREADS`, and the
//! executed scope set of a truncated campaign-scope run is a strict
//! prefix of the equivalent unbounded run. The parallel driver
//! preserves the contract by fanning out in rounds of `check_every`
//! scopes with an ordered merge, so it observes exactly the state the
//! sequential driver would at each boundary.

use crate::fault::FaultRecord;
use crate::matrix::FaultMatrix;
use crate::stats::{clopper_pearson_interval, wilson_interval, z_for_confidence, BinomialCi};
use alfi_scenario::{CiMethod, StopPolicy, StopScope};
use alfi_trace::{StopEvent, StopOutcome, StopVerdict};
use std::collections::{BTreeMap, BTreeSet};

/// What [`StopState::begin_scope`] decided for one armed scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ScopeDecision {
    /// Process the scope normally.
    Execute,
    /// The scope's stratum is retired: record nothing, advance the
    /// boundary clock and move on.
    Skip,
}

/// Classified-outcome tally for one stratum (or the whole campaign).
#[derive(Debug, Clone, Copy, Default)]
struct Tally {
    samples: u64,
    sdc: u64,
    due: u64,
}

/// Everything a driver hands back about early stopping: the decision
/// events (in decision order) and the end-of-run precision outcome.
#[derive(Debug, Clone)]
pub(crate) struct StopReport {
    /// Stop decisions in the order they fired.
    pub events: Vec<StopEvent>,
    /// Achieved-vs-requested precision summary.
    pub outcome: StopOutcome,
}

/// Incremental stop-policy evaluator shared by both drivers.
///
/// Call order per scope: [`begin_scope`](Self::begin_scope) (arms the
/// boundary clock, decides execute/skip), [`observe`](Self::observe)
/// for executed scopes, then [`boundary_check`](Self::boundary_check);
/// consult [`stopped`](Self::stopped) before arming the next scope.
#[derive(Debug)]
pub(crate) struct StopState {
    policy: StopPolicy,
    z: f64,
    /// Strata that exist in the matrix (first-fault layer per slot) —
    /// the set a per-layer run must fully retire to stop.
    universe: BTreeSet<usize>,
    strata: BTreeMap<usize, Tally>,
    total: Tally,
    retired: BTreeSet<usize>,
    stopped: bool,
    armed: u64,
    executed: u64,
    skipped: u64,
    last_boundary: u64,
    planned: u64,
    events: Vec<StopEvent>,
}

impl StopState {
    /// Builds the evaluator for one run. The stratum universe and the
    /// planned scope budget both come from the fault matrix, which
    /// bounds the run for every injection policy.
    pub(crate) fn new(policy: StopPolicy, matrix: &FaultMatrix) -> Self {
        let universe = (0..matrix.num_slots())
            .filter_map(|slot| stratum_of(matrix.faults_for_slot(slot)))
            .collect();
        StopState {
            z: z_for_confidence(policy.confidence),
            policy,
            universe,
            strata: BTreeMap::new(),
            total: Tally::default(),
            retired: BTreeSet::new(),
            stopped: false,
            armed: 0,
            executed: 0,
            skipped: 0,
            last_boundary: 0,
            planned: matrix.num_slots() as u64,
            events: Vec::new(),
        }
    }

    /// Whether a stop-the-campaign decision has fired; drivers break
    /// before arming the next scope.
    pub(crate) fn stopped(&self) -> bool {
        self.stopped
    }

    /// Arms one scope on the boundary clock and decides whether to
    /// execute it. Skipped scopes (retired stratum) still count toward
    /// boundary indices, so decision points stay fixed relative to the
    /// slot sequence whatever was retired earlier.
    pub(crate) fn begin_scope(&mut self, faults: &[FaultRecord]) -> ScopeDecision {
        self.armed += 1;
        let retired = matches!(stratum_of(faults), Some(s) if self.retired.contains(&s));
        if retired {
            self.skipped += 1;
            ScopeDecision::Skip
        } else {
            self.executed += 1;
            ScopeDecision::Execute
        }
    }

    /// Folds one executed scope's classified rows into its stratum and
    /// the campaign totals.
    pub(crate) fn observe(&mut self, faults: &[FaultRecord], samples: u64, sdc: u64, due: u64) {
        if let Some(s) = stratum_of(faults) {
            let t = self.strata.entry(s).or_default();
            t.samples += samples;
            t.sdc += sdc;
            t.due += due;
        }
        self.total.samples += samples;
        self.total.sdc += sdc;
        self.total.due += due;
    }

    /// Runs the decision procedure if the boundary clock sits exactly
    /// on a `check_every` multiple not yet evaluated. Returns whether a
    /// boundary fired (decisions may or may not have been taken).
    pub(crate) fn boundary_check(&mut self) -> bool {
        if self.stopped
            || self.armed == 0
            || !self.armed.is_multiple_of(self.policy.check_every as u64)
            || self.armed == self.last_boundary
        {
            return false;
        }
        self.last_boundary = self.armed;
        self.evaluate();
        true
    }

    /// Finishes the run and summarizes achieved-vs-requested precision.
    pub(crate) fn finish(self) -> StopReport {
        let (sdc_ci, due_ci) = self.intervals(&self.total);
        let outcome = StopOutcome {
            requested_half_width: self.policy.half_width,
            confidence: self.policy.confidence,
            achieved_sdc_half_width: sdc_ci.half_width(),
            achieved_due_half_width: due_ci.half_width(),
            executed_scopes: self.executed,
            skipped_scopes: self.skipped,
            planned_scopes: self.planned,
            decisions: self.events.len() as u64,
            stopped_early: self.stopped,
        };
        StopReport { events: self.events, outcome }
    }

    fn evaluate(&mut self) {
        match self.policy.scope {
            StopScope::Campaign => self.evaluate_campaign(),
            StopScope::PerLayer => self.evaluate_per_layer(),
        }
    }

    fn evaluate_campaign(&mut self) {
        if self.precise_enough(&self.total) {
            self.push_event(StopVerdict::StopCampaign, None, self.total);
            self.stopped = true;
        }
    }

    fn evaluate_per_layer(&mut self) {
        // Retire qualifying strata in ascending layer order so the
        // event sequence is canonical.
        let candidates: Vec<usize> =
            self.universe.iter().filter(|s| !self.retired.contains(s)).copied().collect();
        for s in candidates {
            let tally = self.strata.get(&s).copied().unwrap_or_default();
            if self.precise_enough(&tally) {
                self.retired.insert(s);
                self.push_event(StopVerdict::RetireStratum, Some(s), tally);
            }
        }
        if !self.universe.is_empty() && self.retired.len() == self.universe.len() {
            self.push_event(StopVerdict::StopCampaign, None, self.total);
            self.stopped = true;
        }
    }

    /// Whether a tally meets the floor and both rate intervals are
    /// within the target half-width.
    fn precise_enough(&self, tally: &Tally) -> bool {
        if tally.samples < self.policy.min_samples as u64 {
            return false;
        }
        let (sdc_ci, due_ci) = self.intervals(tally);
        sdc_ci.half_width().max(due_ci.half_width()) <= self.policy.half_width
    }

    fn intervals(&self, tally: &Tally) -> (BinomialCi, BinomialCi) {
        let ci = |hits: u64| match self.policy.method {
            CiMethod::Wilson => wilson_interval(hits as usize, tally.samples as usize, self.z),
            CiMethod::ClopperPearson => clopper_pearson_interval(
                hits as usize,
                tally.samples as usize,
                self.policy.confidence,
            ),
        };
        (ci(tally.sdc), ci(tally.due))
    }

    fn push_event(&mut self, verdict: StopVerdict, stratum: Option<usize>, tally: Tally) {
        let (sdc_ci, due_ci) = self.intervals(&tally);
        self.events.push(StopEvent {
            verdict,
            stratum,
            scope_index: self.armed,
            samples: tally.samples,
            sdc: tally.sdc,
            due: tally.due,
            sdc_ci: (sdc_ci.low, sdc_ci.high),
            due_ci: (due_ci.low, due_ci.high),
            half_width: sdc_ci.half_width().max(due_ci.half_width()),
        });
    }
}

/// The stratum of a fault scope: the injectable-layer index of its
/// first fault. Fault-free scopes (`faults_per_image: 0`) have no
/// stratum — they always execute and count only toward campaign totals.
fn stratum_of(faults: &[FaultRecord]) -> Option<usize> {
    faults.first().map(|f| f.layer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultValue;
    use alfi_scenario::InjectionTarget;

    fn record(layer: usize) -> FaultRecord {
        FaultRecord {
            batch: 0,
            layer,
            channel: 0,
            channel_in: 0,
            depth: None,
            height: 0,
            width: 0,
            value: FaultValue::BitFlip(0),
        }
    }

    /// One single-fault slot per entry of `layers`.
    fn matrix(layers: &[usize]) -> FaultMatrix {
        FaultMatrix {
            records: layers.iter().map(|&l| record(l)).collect(),
            target: InjectionTarget::Weights,
            faults_per_image: 1,
        }
    }

    // Wilson half-width for 0/4 at 95% is ~0.245; 0.3 lets an
    // all-masked stratum retire right at the 4-sample floor.
    fn policy() -> StopPolicy {
        StopPolicy {
            half_width: 0.3,
            confidence: 0.95,
            min_samples: 4,
            check_every: 4,
            scope: StopScope::Campaign,
            method: CiMethod::Wilson,
        }
    }

    /// Arms and observes `n` all-masked scopes on layer 0.
    fn feed_masked(state: &mut StopState, n: usize) {
        let faults = [record(0)];
        for _ in 0..n {
            assert_eq!(state.begin_scope(&faults), ScopeDecision::Execute);
            state.observe(&faults, 1, 0, 0);
            state.boundary_check();
        }
    }

    #[test]
    fn campaign_scope_stops_only_at_boundaries() {
        let m = matrix(&[0; 16]);
        let mut state = StopState::new(policy(), &m);
        // 3 masked samples: below the floor and off-boundary.
        feed_masked(&mut state, 3);
        assert!(!state.stopped());
        // The 4th sample lands exactly on a boundary with a tight
        // all-masked interval -> stop.
        feed_masked(&mut state, 1);
        assert!(state.stopped());
        let report = state.finish();
        assert_eq!(report.events.len(), 1);
        let ev = &report.events[0];
        assert_eq!(ev.verdict, StopVerdict::StopCampaign);
        assert_eq!(ev.scope_index, 4);
        assert_eq!((ev.samples, ev.sdc, ev.due), (4, 0, 0));
        assert!(report.outcome.stopped_early);
        assert_eq!(report.outcome.executed_scopes, 4);
        assert_eq!(report.outcome.planned_scopes, 16);
    }

    #[test]
    fn min_samples_floor_defers_the_decision() {
        let m = matrix(&[0; 32]);
        let mut state = StopState::new(StopPolicy { min_samples: 9, ..policy() }, &m);
        feed_masked(&mut state, 8);
        assert!(!state.stopped(), "8 < floor of 9 even though the CI is tight");
        feed_masked(&mut state, 4);
        assert!(state.stopped(), "next boundary (12 samples) clears the floor");
    }

    #[test]
    fn per_layer_retires_strata_then_stops_and_skips_retired() {
        let layers: Vec<usize> = (0..16).map(|i| i % 2).collect();
        let m = matrix(&layers);
        let pol = StopPolicy { scope: StopScope::PerLayer, check_every: 8, ..policy() };
        let mut state = StopState::new(pol, &m);
        // First 8 slots alternate layers 0/1: each stratum reaches 4
        // masked samples at the first boundary -> both retire, then the
        // exhausted universe stops the campaign.
        for &layer in layers.iter().take(8) {
            let faults = [record(layer)];
            assert_eq!(state.begin_scope(&faults), ScopeDecision::Execute);
            state.observe(&faults, 1, 0, 0);
            state.boundary_check();
        }
        assert!(state.stopped());
        let report = state.finish();
        let verdicts: Vec<_> = report.events.iter().map(|e| (e.verdict, e.stratum)).collect();
        assert_eq!(
            verdicts,
            vec![
                (StopVerdict::RetireStratum, Some(0)),
                (StopVerdict::RetireStratum, Some(1)),
                (StopVerdict::StopCampaign, None),
            ],
            "ascending retirement order, campaign stop last"
        );
        assert_eq!(report.events[2].samples, 8, "campaign event carries totals");
    }

    #[test]
    fn skipped_scopes_advance_the_boundary_clock() {
        // Layer 0 retires at the first boundary; layer-0 scopes after
        // that are skipped but still count toward boundary indices.
        let layers = [0, 0, 0, 0, 0, 0, 1, 1];
        let m = matrix(&layers);
        let pol = StopPolicy { scope: StopScope::PerLayer, ..policy() };
        let mut state = StopState::new(pol, &m);
        let mut decisions = Vec::new();
        for &l in &layers {
            if state.stopped() {
                break;
            }
            let faults = [record(l)];
            let d = state.begin_scope(&faults);
            if d == ScopeDecision::Execute {
                state.observe(&faults, 1, 0, 0);
            }
            decisions.push(d);
            state.boundary_check();
        }
        use ScopeDecision::{Execute as E, Skip as S};
        assert_eq!(decisions, vec![E, E, E, E, S, S, E, E]);
        let report = state.finish();
        assert_eq!(report.outcome.skipped_scopes, 2);
        // Layer 1 has only 2 samples at the final boundary (scope 8):
        // retired layer 0 only, campaign still open.
        assert_eq!(report.events.len(), 1);
        assert!(!report.outcome.stopped_early);
    }

    #[test]
    fn loose_interval_runs_to_completion() {
        let m = matrix(&[0; 8]);
        let tight = StopPolicy { half_width: 0.01, ..policy() };
        let mut state = StopState::new(tight, &m);
        for _ in 0..8 {
            let faults = [record(0)];
            state.begin_scope(&faults);
            // Alternate SDC outcomes: p ~ 0.5, tiny n -> wide interval.
            state.observe(&faults, 1, 1, 0);
            state.boundary_check();
        }
        assert!(!state.stopped());
        let report = state.finish();
        assert!(report.events.is_empty());
        assert!(!report.outcome.stopped_early);
        assert_eq!(report.outcome.executed_scopes, 8);
        assert!(report.outcome.achieved_sdc_half_width > 0.01);
    }

    #[test]
    fn boundary_is_idempotent_per_index() {
        let m = matrix(&[0; 8]);
        let mut state = StopState::new(StopPolicy { half_width: 1e-9, ..policy() }, &m);
        feed_masked(&mut state, 3);
        assert!(!state.boundary_check(), "off-boundary index never evaluates");
        let faults = [record(0)];
        state.begin_scope(&faults);
        state.observe(&faults, 1, 0, 1);
        assert!(state.boundary_check(), "index 4 is a boundary");
        assert!(!state.boundary_check(), "same index does not re-evaluate");
    }
}
