//! The generic campaign engine — one driver for every campaign type,
//! injection policy and thread count.
//!
//! The paper's harness couples fault-free, faulty and hardened model
//! instances behind a single scenario-driven loop (§III). This module
//! is that loop, extracted once: a campaign implements [`CampaignTask`]
//! (how to resolve injectable targets, stream fault scopes, process one
//! scope into rows and finalize a result) and the [`Engine`] owns
//! everything the campaigns used to duplicate:
//!
//! - epoch/batch/slot iteration for all three
//!   [`InjectionPolicy`] variants (via [`SlotCursor`]),
//! - replay validation of a pre-generated [`FaultMatrix`],
//! - hardened-model injectable-layer cross-checking,
//! - [`Recorder`] meta / span / outcome / event wiring,
//! - the [`alfi_pool`] fan-out with ordered merge and
//!   [`CoreError::WorkerPanic`] propagation,
//! - `save_dir` persistence: the replay set ([`Artifacts`]) plus a
//!   streaming row sink ([`ArtifactSink`]) fed one row at a time at
//!   scope boundaries, in CSV or columnar binary format
//!   ([`ArtifactFormat`]).
//!
//! Every persisted row carries a deterministic
//! [`RowKey`] `(epoch, batch, fault_id)`: `fault_id` is the fault
//! matrix slot that was armed while the row's scope ran, `batch` the
//! ordinal of its loader batch within the epoch. Both drivers assign
//! keys identically, so row artifacts are byte-identical at every
//! thread count — and the columnar store's fault-id index answers
//! "what did fault *n* do?" without a full scan.
//!
//! Scopes are *streamed* from the task (one batch materialized at a
//! time), so memory stays bounded on large scenarios. The engine is
//! deterministic by construction: the sequential and parallel drivers
//! assign fault slots in the same order, and the pool merges worker
//! results in work order, so outputs are bit-identical for any thread
//! count.

use crate::artifact::{ArtifactSink, Artifacts};
use crate::campaign::config::RunConfig;
use crate::campaign::stop::{ScopeDecision, StopReport, StopState};
use crate::error::CoreError;
use crate::fault::FaultRecord;
use crate::injector::injection_event;
use crate::matrix::{FaultMatrix, LayerTarget};
use crate::persist::{save_events, save_fault_matrix, save_metrics, RunTrace, TraceEntry};
use alfi_metrics::{names, Class, Counter, HealthSink, Histogram, Registry, Watchdog};
use alfi_scenario::{ArtifactFormat, InjectionPolicy, Scenario, StopPolicy};
use alfi_store::RowKey;
use alfi_tensor::gemm::{self, KernelPath};
use alfi_trace::{EffectClass, Phase, Recorder, RunMeta};
use std::collections::BTreeMap;
use std::ops::ControlFlow;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Read-only context handed to scope processing: the scenario, the
/// resolved injectable-layer targets (primary and hardened) and the
/// fault set armed for the current scope.
#[derive(Debug, Clone, Copy)]
pub struct ScopeCtx<'r> {
    /// The scenario driving the run.
    pub scenario: &'r Scenario,
    /// Injectable-layer targets of the primary model.
    pub targets: &'r [LayerTarget],
    /// Aligned targets of the hardened model, when one was attached.
    pub resil_targets: Option<&'r [LayerTarget]>,
    /// Faults to arm while processing this scope.
    pub faults: &'r [FaultRecord],
}

/// Streaming sink for [`CampaignTask::stream_scopes`]. Called once per
/// scope with `(first_in_batch, scope)`; returns `Break` when the
/// engine wants the stream to stop (exhausted fault matrix).
pub type ScopeSink<'a, S> = dyn FnMut(bool, S) -> Result<ControlFlow<()>, CoreError> + 'a;

/// A campaign workload the [`Engine`] can drive.
///
/// Implementations own the *what* (model forwards, fault arming, row
/// shapes); the engine owns the *how* (policy iteration, slot
/// assignment, replay validation, tracing, pooling, persistence).
/// [`ImgClassCampaign`](crate::campaign::ImgClassCampaign) and
/// [`ObjDetCampaign`](crate::campaign::ObjDetCampaign) are the two
/// in-tree implementations.
pub trait CampaignTask {
    /// Unit of work armed with one fault set — a single image or a
    /// whole batch, at the task's discretion.
    type Scope: Send + Sync;
    /// Per-image output row.
    type Row: Send;
    /// Finalized campaign output.
    type Result;
    /// Shared read-only state for parallel workers (model references,
    /// per-item detector clones); built once per parallel run.
    type ParCtx<'s>: Sync
    where
        Self: 's;

    /// Campaign kind recorded in the trace header (`"classification"`,
    /// `"detection"`).
    fn kind(&self) -> &'static str;

    /// Model name recorded in the trace header.
    fn model_name(&self) -> String;

    /// The scenario driving the run.
    fn scenario(&self) -> &Scenario;

    /// Noun used in the hardened-model cross-check error message
    /// (`"model"` or `"detector"`).
    fn hardened_noun(&self) -> &'static str {
        "model"
    }

    /// A replayed fault matrix, when one was attached. The engine
    /// validates it against the scenario before use.
    fn replay_matrix(&self) -> Option<&FaultMatrix>;

    /// Resolves injectable-layer targets for the primary model and,
    /// when a hardened model is attached, aligned targets for it. The
    /// engine cross-checks that both lists have the same length.
    #[allow(clippy::type_complexity)]
    fn resolve_targets(&self) -> Result<(Vec<LayerTarget>, Option<Vec<LayerTarget>>), CoreError>;

    /// Streams the fault scopes of `epoch` into `sink` in dataset
    /// order, one batch materialized at a time. `first_in_batch` must
    /// be `true` exactly for each batch's first scope (it drives
    /// `per_batch` slot advancement). Returns `Break` when the sink
    /// stopped the stream.
    fn stream_scopes(
        &self,
        epoch: u64,
        sink: &mut ScopeSink<'_, Self::Scope>,
    ) -> Result<ControlFlow<()>, CoreError>;

    /// Runs the fault-free / faulty (/ hardened) passes for one scope,
    /// appending one row per contained image and the applied-fault
    /// trace entries. Used by the sequential driver.
    fn process_scope(
        &self,
        ctx: &ScopeCtx<'_>,
        scope: &Self::Scope,
        rec: &Recorder,
        rows: &mut Vec<Self::Row>,
        trace: &mut RunTrace,
    ) -> Result<(), CoreError>;

    /// Builds the shared worker context for a parallel run over
    /// `items` scopes (e.g. one detector clone per item).
    fn prepare_parallel<'s>(&'s self, items: usize) -> Result<Self::ParCtx<'s>, CoreError>;

    /// Parallel counterpart of [`process_scope`](Self::process_scope):
    /// processes work item `idx` using only the [`Sync`] context (the
    /// task itself is not shared with workers). Results are merged by
    /// the engine in work order.
    fn process_parallel(
        ctx: &Self::ParCtx<'_>,
        scope_ctx: &ScopeCtx<'_>,
        idx: usize,
        scope: &Self::Scope,
        rec: &Recorder,
    ) -> Result<(Vec<Self::Row>, Vec<TraceEntry>), CoreError>;

    /// Trace-level fault-effect classification of one row
    /// (masked / SDC / DUE), recorded as an outcome tally. An
    /// associated function (no `&self`) so both drivers can classify
    /// rows as they are produced — the parallel workers never see the
    /// task itself.
    fn classify(row: &Self::Row) -> EffectClass;

    /// NaN / Inf element counts observed in a row's corrupted output,
    /// feeding the live `alfi_campaign_nonfinite_total` counters (the
    /// watchdog's NaN-storm signal). The default reports none.
    fn row_nonfinite(_row: &Self::Row) -> (u64, u64) {
        (0, 0)
    }

    /// Assembles the campaign result from the collected rows, the
    /// fault matrix that drove the run and the applied-fault trace.
    fn finalize(&self, rows: Vec<Self::Row>, matrix: FaultMatrix, trace: RunTrace) -> Self::Result;

    /// Builds the streaming row sink for `save_dir` persistence in the
    /// given format, or `None` when this campaign has no per-row
    /// artifact under `format` (detection keeps its JSON writers in
    /// `alfi-eval` for the CSV format). Called once before the driver
    /// starts; the engine appends every produced row in deterministic
    /// order with its [`RowKey`] and finalizes the sink under the
    /// `persist` trace phase. The replay set (scenario, fault matrix,
    /// trace, events, metrics) is written by the engine itself.
    fn make_row_sink(
        &self,
        format: ArtifactFormat,
        artifacts: &Artifacts,
    ) -> Result<Option<Box<dyn ArtifactSink<Self::Row>>>, CoreError>;
}

/// Fault-slot bookkeeping for the sequential driver: decides, per
/// scope, whether to advance to a fresh matrix slot or reuse the last
/// armed one, for all three [`InjectionPolicy`] variants.
///
/// The run stops (`arm` returns `None`) as soon as the matrix has no
/// slot left to hand out — checked before *every* scope, so even a
/// non-advancing `per_batch`/`per_epoch` scope ends the run once the
/// matrix is exhausted (reuse requires a live matrix). This matches
/// the paper's semantics of a pre-sized fault matrix bounding the run.
#[derive(Debug)]
pub struct SlotCursor<'m> {
    matrix: &'m FaultMatrix,
    policy: InjectionPolicy,
    slot: usize,
    epoch_armed: bool,
}

impl<'m> SlotCursor<'m> {
    /// Creates a cursor at slot 0.
    pub fn new(matrix: &'m FaultMatrix, policy: InjectionPolicy) -> Self {
        SlotCursor { matrix, policy, slot: 0, epoch_armed: false }
    }

    /// Marks the start of a new epoch (`per_epoch` re-arms once per
    /// epoch).
    pub fn begin_epoch(&mut self) {
        self.epoch_armed = false;
    }

    /// Returns the fault set for the next scope, or `None` when the
    /// matrix is exhausted and the run should end gracefully.
    ///
    /// Advancement: `per_image` takes a fresh slot for every scope,
    /// `per_batch` for each batch's first scope, `per_epoch` once per
    /// epoch; non-advancing scopes reuse the last armed slot.
    pub fn arm(&mut self, first_in_batch: bool) -> Option<&'m [FaultRecord]> {
        if self.slot >= self.matrix.num_slots() {
            return None;
        }
        let advance = match self.policy {
            InjectionPolicy::PerImage => true,
            InjectionPolicy::PerBatch => first_in_batch,
            InjectionPolicy::PerEpoch => !self.epoch_armed,
        };
        // The first scope of a run always advances (nothing is armed
        // yet), whatever the policy flags claim.
        if advance || self.slot == 0 {
            self.epoch_armed = true;
            self.slot += 1;
        }
        Some(self.matrix.faults_for_slot(self.slot - 1))
    }

    /// The next fresh slot index (also the number of slots consumed).
    pub fn position(&self) -> usize {
        self.slot
    }
}

/// Collected raw output of a driver, before task finalization.
struct Parts<T: CampaignTask + ?Sized> {
    rows: Vec<T::Row>,
    matrix: FaultMatrix,
    trace: RunTrace,
    /// Early-stop decisions and achieved precision, when a
    /// [`StopPolicy`] governed the run.
    stop: Option<StopReport>,
}

/// Pre-resolved counter handles for the engine's live instrumentation.
///
/// Registered once per run; both drivers bump these as scopes finish,
/// so a metrics endpoint or health watchdog sees throughput, injection
/// and outcome data *while* the campaign runs instead of after it. All
/// counters are [`Class::Deterministic`] — their final values depend
/// only on the scenario, never on thread count or timing — except the
/// scope-latency histogram, which is wall-clock and stays out of
/// deterministic renders by construction (histograms are always
/// runtime-class).
pub(crate) struct EngineMetrics {
    registry: Registry,
    scopes: Counter,
    items: Counter,
    injections: Counter,
    masked: Counter,
    sdc: Counter,
    due: Counter,
    nan: Counter,
    inf: Counter,
    scope_seconds: Histogram,
    /// Lazily-registered per-layer injection counters, keyed by
    /// injectable-layer index.
    layers: Mutex<BTreeMap<usize, Counter>>,
}

impl EngineMetrics {
    fn new(registry: Registry) -> Self {
        let outcome = |value: &str| {
            registry.counter_with(
                names::CAMPAIGN_OUTCOMES,
                "Classified fault effects by outcome class",
                Class::Deterministic,
                "outcome",
                value,
            )
        };
        let nonfinite = |value: &str| {
            registry.counter_with(
                names::CAMPAIGN_NONFINITE,
                "Non-finite elements observed in corrupted outputs",
                Class::Deterministic,
                "kind",
                value,
            )
        };
        EngineMetrics {
            scopes: registry.counter(
                names::ENGINE_SCOPES,
                "Fault scopes processed by the campaign engine",
                Class::Deterministic,
            ),
            items: registry.counter(
                names::ENGINE_ITEMS,
                "Per-image result rows produced by the campaign engine",
                Class::Deterministic,
            ),
            injections: registry.counter(
                names::CAMPAIGN_INJECTIONS,
                "Faults applied across the campaign",
                Class::Deterministic,
            ),
            masked: outcome("masked"),
            sdc: outcome("sdc"),
            due: outcome("due"),
            nan: nonfinite("nan"),
            inf: nonfinite("inf"),
            scope_seconds: registry
                .histogram(names::ENGINE_SCOPE_SECONDS, "Wall-clock latency of one fault scope"),
            layers: Mutex::new(BTreeMap::new()),
            registry,
        }
    }

    /// Records one finished scope: its rows (classified live) and the
    /// applied-fault trace entries it produced.
    fn scope_done<T: CampaignTask + ?Sized>(
        &self,
        rows: &[T::Row],
        entries: &[TraceEntry],
        started: Instant,
    ) {
        self.scopes.inc();
        self.items.add(rows.len() as u64);
        self.scope_seconds.observe(started.elapsed().as_secs_f64());
        for row in rows {
            match T::classify(row) {
                EffectClass::Masked => self.masked.inc(),
                EffectClass::Sdc => self.sdc.inc(),
                EffectClass::Due => self.due.inc(),
            }
            let (nan, inf) = T::row_nonfinite(row);
            if nan > 0 {
                self.nan.add(nan);
            }
            if inf > 0 {
                self.inf.add(inf);
            }
        }
        for entry in entries {
            self.injections.inc();
            self.layer_counter(entry.applied.record.layer).inc();
        }
    }

    /// Publishes a run's stop decisions into the registry. Registered
    /// lazily — runs without a stop policy (or with one that never
    /// fired) leave no zero-valued series behind, so deterministic
    /// renders of policy-free runs are unchanged.
    fn stop_report(&self, report: &StopReport) {
        for event in &report.events {
            self.registry
                .counter_with(
                    names::CAMPAIGN_STOP_DECISIONS,
                    "Statistical stop decisions by verdict",
                    Class::Deterministic,
                    "verdict",
                    event.verdict.name(),
                )
                .inc();
        }
        if report.outcome.skipped_scopes > 0 {
            self.registry
                .counter(
                    names::ENGINE_SCOPES_SKIPPED,
                    "Fault scopes skipped after stratum retirement",
                    Class::Deterministic,
                )
                .add(report.outcome.skipped_scopes);
        }
    }

    fn layer_counter(&self, layer: usize) -> Counter {
        let mut layers = self.layers.lock().unwrap_or_else(|p| p.into_inner());
        layers
            .entry(layer)
            .or_insert_with(|| {
                self.registry.counter_with(
                    names::CAMPAIGN_LAYER_INJECTIONS,
                    "Faults applied per injectable-layer index",
                    Class::Deterministic,
                    "layer",
                    &layer.to_string(),
                )
            })
            .clone()
    }
}

/// Scoped process-wide kernel-path override: installs the
/// [`RunConfig::kernel`] selection for the duration of a campaign run
/// and restores whatever was in effect before (another override or the
/// `ALFI_KERNEL` environment default) when the run ends — including on
/// error paths, via `Drop`. The override is process-global so pool
/// workers resolve the same path as the driver thread.
struct KernelGuard {
    prev: Option<KernelPath>,
}

impl KernelGuard {
    fn install(path: KernelPath) -> Self {
        let prev = gemm::kernel_override();
        gemm::set_kernel_override(Some(path));
        KernelGuard { prev }
    }
}

impl Drop for KernelGuard {
    fn drop(&mut self) {
        gemm::set_kernel_override(self.prev);
    }
}

/// The one campaign driver: runs any [`CampaignTask`] under a
/// [`RunConfig`], sequentially or fanned out on the shared
/// [`alfi_pool`] pool, with identical outputs either way.
#[derive(Debug, Clone, Copy)]
pub struct Engine<'c> {
    cfg: &'c RunConfig,
}

impl<'c> Engine<'c> {
    /// Creates an engine over a run configuration.
    pub fn new(cfg: &'c RunConfig) -> Self {
        Engine { cfg }
    }

    /// Runs the task end to end: trace header + item count, driver
    /// dispatch (`threads` ≤ 1 sequential, otherwise pooled),
    /// outcome/injection event recording in deterministic row order,
    /// task finalization and optional `save_dir` persistence.
    ///
    /// # Errors
    ///
    /// Returns resolution/injection errors; an exhausted fault matrix
    /// ends the run gracefully instead. With `threads > 1` a
    /// non-`per_image` policy is rejected (those fault scopes are
    /// inherently sequential) and a panicking worker surfaces as
    /// [`CoreError::WorkerPanic`].
    pub fn run<T: CampaignTask>(&self, task: &T) -> Result<T::Result, CoreError> {
        let cfg = self.cfg;
        let _kernel = cfg.kernel.map(KernelGuard::install);
        let rec = cfg.recorder.clone();
        let scenario = task.scenario();
        if rec.is_enabled() {
            rec.set_meta(RunMeta {
                campaign: task.kind().into(),
                model: task.model_name(),
                scenario_hash: alfi_trace::hash_hex(scenario.to_yaml_string().as_bytes()),
                seed: scenario.seed,
                threads: cfg.threads,
            });
            rec.begin_items((scenario.dataset_size * scenario.num_runs) as u64);
        }
        let registry = cfg.resolve_metrics();
        if registry.is_some() {
            // Light up the background pool/tensor instrumentation too —
            // those publish into the process-global registry.
            alfi_metrics::set_global_enabled(true);
        }
        if let (Some(addr), Some(reg)) = (&cfg.metrics_addr, &registry) {
            alfi_metrics::serve_once(addr, reg)
                .map_err(|e| CoreError::Io(format!("binding metrics endpoint on {addr}: {e}")))?;
        }
        let metrics = registry.clone().map(EngineMetrics::new);
        let watchdog = match (&cfg.health, &registry) {
            (Some(policy), Some(reg)) => {
                let sink: Option<HealthSink> = rec.is_enabled().then(|| {
                    let rec = rec.clone();
                    Arc::new(move |e: &alfi_metrics::HealthEvent| rec.record_health(e.to_string()))
                        as HealthSink
                });
                Some(Watchdog::spawn(policy.clone(), reg.clone(), sink))
            }
            _ => None,
        };
        let per_image = scenario.injection_policy == InjectionPolicy::PerImage;
        let stop_policy = cfg.resolve_stop(scenario);
        let artifacts = cfg.save_dir.as_ref().map(Artifacts::new);
        let mut sink = match &artifacts {
            Some(a) => {
                std::fs::create_dir_all(a.dir())?;
                task.make_row_sink(cfg.resolve_format(scenario), a)?
            }
            None => None,
        };
        let parts = match cfg.resolve_threads(per_image) {
            0 | 1 => sequential_parts(task, &rec, metrics.as_ref(), stop_policy, &mut sink),
            threads => {
                parallel_parts(task, threads, &rec, metrics.as_ref(), stop_policy, &mut sink)
            }
        };
        if let Some(watchdog) = watchdog {
            // Final registry sample happens inside stop(), so an
            // end-of-run threshold breach is still raised (and already
            // delivered to the recorder via the sink).
            watchdog.stop();
        }
        let parts = parts?;
        if rec.is_enabled() {
            // Outcome tallies and structured injection events in
            // deterministic row/trace order — the same order for any
            // thread count, which keeps the event log byte-reproducible.
            for row in &parts.rows {
                rec.record_outcome(T::classify(row));
            }
            for entry in &parts.trace.entries {
                rec.record_injection(injection_event(entry.image_id, &entry.applied));
            }
        }
        if let Some(report) = &parts.stop {
            if rec.is_enabled() {
                // Decisions in decision order — deterministic, so the
                // event log stays byte-reproducible across thread
                // counts even for stopped runs.
                for event in &report.events {
                    rec.record_stop(*event);
                }
                rec.set_stop_outcome(report.outcome);
            }
            if let Some(m) = metrics.as_ref() {
                m.stop_report(report);
            }
        }
        if let Some(a) = &artifacts {
            let _span = rec.span(Phase::Persist);
            scenario.save(a.scenario()).map_err(|e| CoreError::Io(e.to_string()))?;
            save_fault_matrix(&parts.matrix, a.faults())?;
            parts.trace.save(a.trace())?;
            if let Some(s) = sink.as_mut() {
                let stats = s.finalize()?;
                if let Some(reg) = &registry {
                    reg.counter(
                        names::STORE_ROWS_WRITTEN,
                        "Result rows persisted by the artifact sink",
                        Class::Deterministic,
                    )
                    .add(stats.rows);
                    reg.counter(
                        names::STORE_BYTES_WRITTEN,
                        "Bytes persisted by the artifact sink",
                        Class::Deterministic,
                    )
                    .add(stats.bytes);
                }
            }
            save_events(&rec, a.dir())?;
            save_metrics(registry.as_ref(), a.dir())?;
            if cfg.resolve_report(scenario) {
                // Last, so the hook sees the complete artifact set.
                super::report::run_report_hook(a.dir())
                    .map_err(|e| CoreError::Io(format!("report generation: {e}")))?;
            }
        }
        Ok(task.finalize(parts.rows, parts.matrix, parts.trace))
    }

    /// Bare pooled run with tracing and persistence disabled. Unlike
    /// [`run`](Self::run) with `threads: 1`, `threads == 1` here still
    /// uses the parallel driver (pool task guards stay active), which
    /// makes it the hook for tests that must exercise pooled fan-out
    /// regardless of configuration.
    ///
    /// # Errors
    ///
    /// As [`run`](Self::run); non-`per_image` policies are rejected.
    pub fn forced_parallel<T: CampaignTask>(
        task: &T,
        threads: usize,
    ) -> Result<T::Result, CoreError> {
        let parts = parallel_parts(task, threads, &Recorder::disabled(), None, None, &mut None)?;
        Ok(task.finalize(parts.rows, parts.matrix, parts.trace))
    }
}

/// Resolves targets and cross-checks the hardened model's list: a
/// mitigation wrapper must expose the same injectable layers as the
/// model it hardens, or slot-aligned fault replay would be meaningless.
#[allow(clippy::type_complexity)]
fn resolve_checked<T: CampaignTask + ?Sized>(
    task: &T,
) -> Result<(Vec<LayerTarget>, Option<Vec<LayerTarget>>), CoreError> {
    let (targets, resil_targets) = task.resolve_targets()?;
    if let Some(rt) = &resil_targets {
        if rt.len() != targets.len() {
            return Err(CoreError::FaultOutOfBounds {
                detail: format!(
                    "hardened {} exposes {} injectable layers, original {}",
                    task.hardened_noun(),
                    rt.len(),
                    targets.len()
                ),
            });
        }
    }
    Ok((targets, resil_targets))
}

/// Resolves the fault matrix: a replayed one (validated against the
/// scenario) or a freshly generated one.
fn take_or_generate<T: CampaignTask + ?Sized>(
    task: &T,
    targets: &[LayerTarget],
) -> Result<FaultMatrix, CoreError> {
    match task.replay_matrix() {
        Some(m) => {
            m.validate_replay(task.scenario())?;
            Ok(m.clone())
        }
        None => FaultMatrix::generate(task.scenario(), targets),
    }
}

/// SDC/DUE counts among freshly produced rows, for stop-policy
/// observation. Classification is pure, so recounting here costs one
/// extra pass over the scope's rows and nothing else.
fn classify_delta<T: CampaignTask + ?Sized>(rows: &[T::Row]) -> (u64, u64) {
    let (mut sdc, mut due) = (0u64, 0u64);
    for row in rows {
        match T::classify(row) {
            EffectClass::Sdc => sdc += 1,
            EffectClass::Due => due += 1,
            EffectClass::Masked => {}
        }
    }
    (sdc, due)
}

/// Sequential driver: streams scopes epoch by epoch, arming fault
/// slots through a [`SlotCursor`] (all three policies) and processing
/// each scope in place. With a [`StopPolicy`], every scope advances the
/// stop state's boundary clock and the stream breaks as soon as a
/// campaign-stop decision fires. Rows stream into `sink` (when
/// persistence is on) as each scope completes, keyed by
/// `(epoch, batch, armed slot)`.
fn sequential_parts<T: CampaignTask + ?Sized>(
    task: &T,
    rec: &Recorder,
    metrics: Option<&EngineMetrics>,
    policy: Option<StopPolicy>,
    sink: &mut Option<Box<dyn ArtifactSink<T::Row>>>,
) -> Result<Parts<T>, CoreError> {
    let (targets, resil_targets) = resolve_checked(task)?;
    let matrix = take_or_generate(task, &targets)?;
    let scenario = task.scenario();
    let mut rows = Vec::new();
    let mut trace = RunTrace::default();
    let mut stop = policy.map(|p| StopState::new(p, &matrix));
    let mut cursor = SlotCursor::new(&matrix, scenario.injection_policy);
    for epoch in 0..scenario.num_runs as u64 {
        cursor.begin_epoch();
        // Loader-batch ordinal within the epoch; −1 until the first
        // scope so a stream that never flags `first_in_batch` still
        // lands in batch 0.
        let mut batch_no: i64 = -1;
        let flow = task.stream_scopes(epoch, &mut |first_in_batch, scope| {
            if stop.as_ref().is_some_and(StopState::stopped) {
                return Ok(ControlFlow::Break(()));
            }
            if first_in_batch || batch_no < 0 {
                batch_no += 1;
            }
            let Some(faults) = cursor.arm(first_in_batch) else {
                return Ok(ControlFlow::Break(()));
            };
            if let Some(state) = stop.as_mut() {
                if state.begin_scope(faults) == ScopeDecision::Skip {
                    state.boundary_check();
                    return Ok(ControlFlow::Continue(()));
                }
            }
            let ctx = ScopeCtx {
                scenario,
                targets: &targets,
                resil_targets: resil_targets.as_deref(),
                faults,
            };
            let started = Instant::now();
            let (row_mark, entry_mark) = (rows.len(), trace.entries.len());
            task.process_scope(&ctx, &scope, rec, &mut rows, &mut trace)?;
            if let Some(m) = metrics {
                m.scope_done::<T>(&rows[row_mark..], &trace.entries[entry_mark..], started);
            }
            if let Some(s) = sink.as_mut() {
                let key =
                    RowKey::new(epoch as u32, batch_no as u32, (cursor.position() - 1) as u64);
                for row in &rows[row_mark..] {
                    s.append(key, row)?;
                }
            }
            if let Some(state) = stop.as_mut() {
                let fresh = &rows[row_mark..];
                let (sdc, due) = classify_delta::<T>(fresh);
                state.observe(faults, fresh.len() as u64, sdc, due);
                state.boundary_check();
            }
            Ok(ControlFlow::Continue(()))
        })?;
        if flow.is_break() {
            break;
        }
    }
    Ok(Parts { rows, matrix, trace, stop: stop.map(StopState::finish) })
}

/// Parallel driver (`per_image` only — the other policies couple
/// scopes through shared slots): materializes the scope list (slot ==
/// work index), builds the task's worker context and fans out on the
/// shared pool. `try_run_indexed` merges results in work order, so
/// row order, fault assignment and all outputs are bit-identical to
/// the sequential driver for any thread count (clamped by
/// `ALFI_POOL_THREADS`), and a worker panic is converted into an
/// error instead of unwinding through campaign state.
fn parallel_parts<T: CampaignTask>(
    task: &T,
    threads: usize,
    rec: &Recorder,
    metrics: Option<&EngineMetrics>,
    policy: Option<StopPolicy>,
    sink: &mut Option<Box<dyn ArtifactSink<T::Row>>>,
) -> Result<Parts<T>, CoreError> {
    if task.scenario().injection_policy != InjectionPolicy::PerImage {
        return Err(CoreError::Scenario(alfi_scenario::ScenarioError::InvalidField {
            field: "injection_policy",
            reason: "run_parallel requires per_image".into(),
        }));
    }
    let threads = threads.max(1);
    let (targets, resil_targets) = resolve_checked(task)?;
    let matrix = take_or_generate(task, &targets)?;

    // Materialize scopes with their row keys: slot == work index under
    // `per_image`, and the batch ordinal is counted exactly as the
    // sequential driver counts it, so both drivers key rows
    // identically.
    let mut work: Vec<T::Scope> = Vec::new();
    let mut keys: Vec<RowKey> = Vec::new();
    for epoch in 0..task.scenario().num_runs as u64 {
        let mut batch_no: i64 = -1;
        let flow = task.stream_scopes(epoch, &mut |first_in_batch, scope| {
            if work.len() >= matrix.num_slots() {
                return Ok(ControlFlow::Break(()));
            }
            if first_in_batch || batch_no < 0 {
                batch_no += 1;
            }
            keys.push(RowKey::new(epoch as u32, batch_no as u32, work.len() as u64));
            work.push(scope);
            Ok(ControlFlow::Continue(()))
        })?;
        if flow.is_break() {
            break;
        }
    }

    let ctx = task.prepare_parallel(work.len())?;
    let scenario = task.scenario();
    let targets_ref: &[LayerTarget] = &targets;
    let resil_ref = resil_targets.as_deref();
    let matrix_ref = &matrix;
    let work_ref = &work;
    let ctx_ref = &ctx;
    let process = |idx: usize| {
        let scope_ctx = ScopeCtx {
            scenario,
            targets: targets_ref,
            resil_targets: resil_ref,
            faults: matrix_ref.faults_for_slot(idx),
        };
        let started = Instant::now();
        let out = T::process_parallel(ctx_ref, &scope_ctx, idx, &work_ref[idx], rec);
        if let (Some(m), Ok((rows, entries))) = (metrics, &out) {
            // Counter bumps commute, so live publication from
            // workers in completion order still snapshots to the
            // same final values as the sequential driver.
            m.scope_done::<T>(rows, entries, started);
        }
        out
    };

    let Some(stop_policy) = policy else {
        // No stop policy: one fan-out over the whole work list.
        let outcomes = alfi_pool::global()
            .try_run_indexed(threads, work.len(), process)
            .map_err(|p| CoreError::WorkerPanic { message: p.message() })?;
        let mut rows = Vec::with_capacity(work.len());
        let mut trace = RunTrace::default();
        for (idx, outcome) in outcomes.into_iter().enumerate() {
            let (r, entries) = outcome?;
            if let Some(s) = sink.as_mut() {
                for row in &r {
                    s.append(keys[idx], row)?;
                }
            }
            rows.extend(r);
            trace.entries.extend(entries);
        }
        return Ok(Parts { rows, matrix, trace, stop: None });
    };

    // Stop-policy runs fan out in rounds of `check_every` scopes with
    // an ordered merge: all of a round's scopes are armed (or skipped)
    // before any work is dispatched, and the boundary is evaluated only
    // after the whole round has been merged — exactly the state the
    // sequential driver sees at the same boundary, so decisions,
    // executed scope sets and row order are bit-identical for any
    // thread count.
    let mut state = StopState::new(stop_policy, &matrix);
    let mut rows = Vec::new();
    let mut trace = RunTrace::default();
    let mut next = 0usize;
    while next < work.len() && !state.stopped() {
        let round_end = (next + stop_policy.check_every).min(work.len());
        let mut round: Vec<usize> = Vec::with_capacity(round_end - next);
        for idx in next..round_end {
            if state.begin_scope(matrix.faults_for_slot(idx)) == ScopeDecision::Execute {
                round.push(idx);
            }
        }
        next = round_end;
        let round_ref = &round;
        let outcomes = alfi_pool::global()
            .try_run_indexed(threads, round.len(), |i| process(round_ref[i]))
            .map_err(|p| CoreError::WorkerPanic { message: p.message() })?;
        for (i, outcome) in outcomes.into_iter().enumerate() {
            let (r, entries) = outcome?;
            let (sdc, due) = classify_delta::<T>(&r);
            state.observe(matrix.faults_for_slot(round[i]), r.len() as u64, sdc, due);
            if let Some(s) = sink.as_mut() {
                for row in &r {
                    s.append(keys[round[i]], row)?;
                }
            }
            rows.extend(r);
            trace.entries.extend(entries);
        }
        state.boundary_check();
    }
    Ok(Parts { rows, matrix, trace, stop: Some(state.finish()) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultValue;
    use alfi_scenario::InjectionTarget;

    /// A matrix with `slots` single-fault slots; slot `i`'s record has
    /// `layer == i`, so tests can read back which slot armed a scope.
    fn matrix(slots: usize) -> FaultMatrix {
        let records = (0..slots)
            .map(|i| FaultRecord {
                batch: 0,
                layer: i,
                channel: 0,
                channel_in: 0,
                depth: None,
                height: 0,
                width: 0,
                value: FaultValue::BitFlip(0),
            })
            .collect();
        FaultMatrix { records, target: InjectionTarget::Weights, faults_per_image: 1 }
    }

    /// Drives `epochs × batches × images` scopes through a cursor and
    /// returns the armed slot (its `layer`) per scope, `None` marking
    /// where the run ended.
    fn drive(
        cursor: &mut SlotCursor<'_>,
        epochs: usize,
        batches: usize,
        images: usize,
    ) -> Vec<Option<usize>> {
        let mut armed = Vec::new();
        'run: for _ in 0..epochs {
            cursor.begin_epoch();
            for _ in 0..batches {
                for i in 0..images {
                    match cursor.arm(i == 0) {
                        Some(f) => armed.push(Some(f[0].layer)),
                        None => {
                            armed.push(None);
                            break 'run;
                        }
                    }
                }
            }
        }
        armed
    }

    #[test]
    fn per_image_advances_every_scope() {
        let m = matrix(12);
        let mut c = SlotCursor::new(&m, InjectionPolicy::PerImage);
        let armed = drive(&mut c, 2, 2, 3);
        let want: Vec<Option<usize>> = (0..12).map(Some).collect();
        assert_eq!(armed, want);
        assert_eq!(c.position(), 12);
    }

    #[test]
    fn per_batch_advances_on_batch_starts_only() {
        let m = matrix(5);
        let mut c = SlotCursor::new(&m, InjectionPolicy::PerBatch);
        // 2 epochs × 2 batches × 3 images: one slot per batch.
        let armed = drive(&mut c, 2, 2, 3);
        assert_eq!(
            armed,
            vec![
                Some(0), Some(0), Some(0),
                Some(1), Some(1), Some(1),
                Some(2), Some(2), Some(2),
                Some(3), Some(3), Some(3),
            ]
        );
        assert_eq!(c.position(), 4);
    }

    #[test]
    fn per_epoch_advances_once_per_epoch() {
        let m = matrix(4);
        let mut c = SlotCursor::new(&m, InjectionPolicy::PerEpoch);
        let armed = drive(&mut c, 3, 2, 2);
        assert_eq!(
            armed,
            vec![
                Some(0), Some(0), Some(0), Some(0),
                Some(1), Some(1), Some(1), Some(1),
                Some(2), Some(2), Some(2), Some(2),
            ]
        );
    }

    #[test]
    fn truncated_matrix_ends_per_image_run_mid_batch() {
        let m = matrix(4);
        let mut c = SlotCursor::new(&m, InjectionPolicy::PerImage);
        let armed = drive(&mut c, 1, 2, 3);
        assert_eq!(armed, vec![Some(0), Some(1), Some(2), Some(3), None]);
    }

    #[test]
    fn truncated_matrix_stops_non_advancing_scopes_too() {
        // Reuse requires a live matrix: once the slots are gone, even a
        // per_batch scope that would only reuse slot 0 ends the run —
        // the pre-sized matrix bounds the campaign.
        let m = matrix(1);
        let mut c = SlotCursor::new(&m, InjectionPolicy::PerBatch);
        let armed = drive(&mut c, 1, 2, 3);
        assert_eq!(armed, vec![Some(0), None]);
    }

    #[test]
    fn per_epoch_truncated_matrix_stops_at_epoch_boundary() {
        // The last slot arms the final epoch's first scope; the next
        // scope finds the matrix exhausted and ends the run (matching
        // the drivers' historical break-on-exhausted-slot check).
        let m = matrix(2);
        let mut c = SlotCursor::new(&m, InjectionPolicy::PerEpoch);
        let armed = drive(&mut c, 3, 1, 2);
        assert_eq!(armed, vec![Some(0), Some(0), Some(1), None]);
    }

    #[test]
    fn empty_matrix_arms_nothing() {
        let m = matrix(0);
        let mut c = SlotCursor::new(&m, InjectionPolicy::PerImage);
        assert!(c.arm(true).is_none());
        assert_eq!(c.position(), 0);
    }

    #[test]
    fn first_scope_always_arms_a_fresh_slot() {
        // Defensive: even if a task's stream never flags a batch start,
        // the first scope arms slot 0 instead of underflowing.
        let m = matrix(2);
        let mut c = SlotCursor::new(&m, InjectionPolicy::PerBatch);
        assert_eq!(c.arm(false).unwrap()[0].layer, 0);
        assert_eq!(c.arm(false).unwrap()[0].layer, 0);
        assert_eq!(c.position(), 1);
    }
}
