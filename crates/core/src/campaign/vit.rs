//! ViT-style transformer classification campaign — the third
//! [`CampaignTask`] next to image classification and object detection.
//!
//! Transformer fault-injection studies perturb the GEMM-backed
//! projections (patch embedding, q/k/v, attention output, MLP, head)
//! while treating softmax, layer norm and token plumbing as control
//! structure. The seeded [`alfi_nn::models::vit`] model family
//! encodes exactly that substitution rule, so the campaign itself is a
//! thin adapter: it owns the transformer architecture parameters and
//! delegates every row-producing step to the shared classification
//! pipeline — same [`ClassificationRow`] shape, same CSV files, same
//! columnar store layout (`kind: classification`, so `alfi store
//! convert` keeps working), plus transformer meta (`campaign=vit`,
//! `vit_depth`, `vit_heads`) and the per-layer `layers:` override keys
//! on the binary schema.

use crate::artifact::{ArtifactSink, Artifacts, ColumnarSink};
use crate::campaign::classification::{
    store_schema, store_values, with_layer_override_meta, ClassificationCampaignResult,
    ClassificationCsvSink, ClassificationRow, ClassificationScope, ImgClassCampaign,
};
use crate::campaign::config::RunConfig;
use crate::campaign::engine::{CampaignTask, Engine, ScopeCtx, ScopeSink};
use crate::error::CoreError;
use crate::matrix::{FaultMatrix, LayerTarget};
use crate::persist::{RunTrace, TraceEntry};
use alfi_datasets::loader::ClassificationLoader;
use alfi_nn::models::{vit, ModelConfig, VIT_TINY_DEPTH, VIT_TINY_HEADS};
use alfi_nn::Network;
use alfi_scenario::{ArtifactFormat, Scenario};
use alfi_trace::{EffectClass, Recorder};
use std::ops::ControlFlow;

/// The transformer classification campaign runner.
///
/// Wraps the classification pipeline around a ViT-family model and
/// records the architecture (depth, heads) in the trace header and the
/// binary store meta.
#[derive(Debug)]
pub struct VitCampaign {
    inner: ImgClassCampaign,
    depth: usize,
    heads: usize,
}

impl VitCampaign {
    /// Creates a campaign over an explicit ViT-family `model` built
    /// with the given transformer `depth` and `heads` (recorded as
    /// run metadata, not re-derived from the graph).
    pub fn new(
        model: Network,
        depth: usize,
        heads: usize,
        scenario: Scenario,
        loader: ClassificationLoader,
    ) -> Self {
        VitCampaign { inner: ImgClassCampaign::new(model, scenario, loader), depth, heads }
    }

    /// Creates a campaign over the ViT-Tiny configuration
    /// ([`alfi_nn::models::vit_tiny`]): the fast default registered in
    /// the CLI as `--model vit`.
    pub fn tiny(mcfg: &ModelConfig, scenario: Scenario, loader: ClassificationLoader) -> Self {
        Self::new(
            vit(mcfg, VIT_TINY_DEPTH, VIT_TINY_HEADS),
            VIT_TINY_DEPTH,
            VIT_TINY_HEADS,
            scenario,
            loader,
        )
    }

    /// Replays a previously persisted fault matrix instead of
    /// generating a new one.
    pub fn with_fault_matrix(mut self, matrix: FaultMatrix) -> Self {
        self.inner = self.inner.with_fault_matrix(matrix);
        self
    }

    /// Adds a hardened model to run in lock-step under the same faults.
    /// It must expose the same injectable-layer list as the primary
    /// transformer.
    pub fn with_resil_model(mut self, resil: Network) -> Self {
        self.inner = self.inner.with_resil_model(resil);
        self
    }

    /// Transformer depth (number of attention + MLP blocks).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Attention heads per block.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Runs the campaign with the given [`RunConfig`] — identical
    /// engine semantics to the classification campaign (see
    /// [`ImgClassCampaign::run_with`]).
    ///
    /// # Errors
    ///
    /// Returns resolution/injection errors; an exhausted fault matrix
    /// ends the run gracefully instead. With `threads > 1` a
    /// non-`per_image` policy is rejected and a panicking worker
    /// surfaces as [`CoreError::WorkerPanic`].
    pub fn run_with(&mut self, cfg: &RunConfig) -> Result<ClassificationCampaignResult, CoreError> {
        Engine::new(cfg).run(&*self)
    }
}

impl CampaignTask for VitCampaign {
    type Scope = ClassificationScope;
    type Row = ClassificationRow;
    type Result = ClassificationCampaignResult;
    /// Workers only need the wrapped classification pipeline.
    type ParCtx<'s> = &'s ImgClassCampaign;

    fn kind(&self) -> &'static str {
        "vit"
    }

    fn model_name(&self) -> String {
        format!("{}(d{},h{})", self.inner.model_name(), self.depth, self.heads)
    }

    fn scenario(&self) -> &Scenario {
        self.inner.scenario()
    }

    fn replay_matrix(&self) -> Option<&FaultMatrix> {
        self.inner.replay_matrix()
    }

    fn resolve_targets(&self) -> Result<(Vec<LayerTarget>, Option<Vec<LayerTarget>>), CoreError> {
        self.inner.resolve_targets()
    }

    fn stream_scopes(
        &self,
        epoch: u64,
        sink: &mut ScopeSink<'_, ClassificationScope>,
    ) -> Result<ControlFlow<()>, CoreError> {
        self.inner.stream_scopes(epoch, sink)
    }

    fn process_scope(
        &self,
        ctx: &ScopeCtx<'_>,
        scope: &ClassificationScope,
        rec: &Recorder,
        rows: &mut Vec<ClassificationRow>,
        trace: &mut RunTrace,
    ) -> Result<(), CoreError> {
        self.inner.process_scope(ctx, scope, rec, rows, trace)
    }

    fn prepare_parallel<'s>(&'s self, items: usize) -> Result<Self::ParCtx<'s>, CoreError> {
        self.inner.prepare_parallel(items)
    }

    fn process_parallel(
        ctx: &Self::ParCtx<'_>,
        scope_ctx: &ScopeCtx<'_>,
        idx: usize,
        scope: &ClassificationScope,
        rec: &Recorder,
    ) -> Result<(Vec<ClassificationRow>, Vec<TraceEntry>), CoreError> {
        ImgClassCampaign::process_parallel(ctx, scope_ctx, idx, scope, rec)
    }

    fn classify(row: &ClassificationRow) -> EffectClass {
        ImgClassCampaign::classify(row)
    }

    fn row_nonfinite(row: &ClassificationRow) -> (u64, u64) {
        ImgClassCampaign::row_nonfinite(row)
    }

    fn finalize(
        &self,
        rows: Vec<ClassificationRow>,
        matrix: FaultMatrix,
        trace: RunTrace,
    ) -> ClassificationCampaignResult {
        self.inner.finalize(rows, matrix, trace)
    }

    /// CSV runs reuse the classification file set verbatim; binary runs
    /// keep the classification store layout (`kind: classification`, so
    /// the store→CSV converter applies unchanged) and stamp the
    /// transformer architecture plus any per-layer overrides into the
    /// schema meta.
    fn make_row_sink(
        &self,
        format: ArtifactFormat,
        artifacts: &Artifacts,
    ) -> Result<Option<Box<dyn ArtifactSink<ClassificationRow>>>, CoreError> {
        match format {
            ArtifactFormat::Csv => Ok(Some(Box::new(ClassificationCsvSink::create(artifacts)?))),
            ArtifactFormat::Binary => {
                let resil = self.inner.has_resil();
                let schema = store_schema(resil)
                    .with_meta("campaign", "vit")
                    .with_meta("vit_depth", self.depth.to_string())
                    .with_meta("vit_heads", self.heads.to_string());
                let schema = with_layer_override_meta(schema, self.scenario());
                Ok(Some(Box::new(ColumnarSink::create(
                    artifacts.rows_store(),
                    schema,
                    move |row: &ClassificationRow| store_values(row, resil),
                )?)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CsvVariant;
    use alfi_datasets::classification::ClassificationDataset;
    use alfi_scenario::{FaultMode, InjectionTarget, LayerOverride};
    use std::collections::BTreeMap;

    fn campaign(scenario: Scenario) -> VitCampaign {
        let mcfg = ModelConfig { input_hw: 16, width_mult: 0.0625, ..ModelConfig::default() };
        let ds = ClassificationDataset::new(scenario.dataset_size, mcfg.num_classes, 3, 16, 5);
        let loader = ClassificationLoader::new(ds, scenario.batch_size);
        VitCampaign::tiny(&mcfg, scenario, loader)
    }

    fn scenario(n: usize) -> Scenario {
        let mut s = Scenario::default();
        s.dataset_size = n;
        s.injection_target = InjectionTarget::Weights;
        s.fault_mode = FaultMode::exponent_bit_flip();
        s
    }

    #[test]
    fn vit_campaign_produces_classification_rows() {
        let result = campaign(scenario(4)).run_with(&RunConfig::default()).unwrap();
        assert_eq!(result.rows.len(), 4);
        for row in &result.rows {
            assert_eq!(row.orig_top5.len(), 5);
            assert_eq!(row.corr_top5.len(), 5);
            assert_eq!(row.faults.len(), 1);
        }
        // Faults land across the transformer's 14 injectable layers.
        assert!(result.fault_matrix.records.iter().all(|r| r.layer < 14));
        let csv = result.to_csv(CsvVariant::Corrupted);
        assert_eq!(csv.lines().count(), 5);
    }

    #[test]
    fn vit_campaign_is_deterministic_and_parallel_exact() {
        let sequential = campaign(scenario(6)).run_with(&RunConfig::default()).unwrap();
        let parallel = campaign(scenario(6)).run_with(&RunConfig::new().threads(4)).unwrap();
        assert_eq!(sequential.rows.len(), parallel.rows.len());
        for (a, b) in sequential.rows.iter().zip(parallel.rows.iter()) {
            assert_eq!(a.orig_top5, b.orig_top5);
            assert_eq!(a.corr_top5, b.corr_top5);
            assert_eq!(a.faults, b.faults);
        }
        assert_eq!(sequential.trace, parallel.trace);
        assert_eq!(sequential.fault_matrix, parallel.fault_matrix);
    }

    #[test]
    fn vit_trace_header_names_the_transformer() {
        let rec = Recorder::new();
        campaign(scenario(2)).run_with(&RunConfig::new().recorder(rec.clone())).unwrap();
        let meta = rec.summary().meta.unwrap();
        assert_eq!(meta.campaign, "vit");
        assert_eq!(meta.model, "vit(d2,h3)");
    }

    #[test]
    fn vit_binary_store_carries_architecture_and_layer_meta() {
        let mut s = scenario(3);
        s.layer_overrides = BTreeMap::from([(
            "blocks.0*".to_string(),
            LayerOverride { rate: Some(0.5), channel_range: Some((0, 0)), ..Default::default() },
        )]);
        let dir = std::env::temp_dir().join("alfi_vit_store_meta");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = RunConfig::new()
            .save_dir(dir.to_str().unwrap())
            .format(ArtifactFormat::Binary);
        campaign(s).run_with(&cfg).unwrap();
        let reader = crate::artifact::ReplayReader::open(dir.join("rows.alfic")).unwrap();
        let r = reader.reader();
        assert_eq!(r.meta("kind"), Some("classification"));
        assert_eq!(r.meta("campaign"), Some("vit"));
        assert_eq!(r.meta("vit_depth"), Some("2"));
        assert_eq!(r.meta("vit_heads"), Some("3"));
        assert_eq!(r.meta("layer.blocks.0*"), Some("rate=0.5,channels=0-0"));
    }

    #[test]
    fn vit_binary_store_converts_to_identical_csvs() {
        let dir_bin = std::env::temp_dir().join("alfi_vit_convert_bin");
        let dir_csv = std::env::temp_dir().join("alfi_vit_convert_csv");
        for d in [&dir_bin, &dir_csv] {
            let _ = std::fs::remove_dir_all(d);
        }
        campaign(scenario(3))
            .run_with(
                &RunConfig::new()
                    .save_dir(dir_bin.to_str().unwrap())
                    .format(ArtifactFormat::Binary),
            )
            .unwrap();
        campaign(scenario(3))
            .run_with(&RunConfig::new().save_dir(dir_csv.to_str().unwrap()))
            .unwrap();
        let converted = crate::artifact::store_to_texts(&dir_bin.join("rows.alfic")).unwrap();
        for (name, text) in converted {
            let direct = std::fs::read_to_string(dir_csv.join(&name)).unwrap();
            assert_eq!(text, direct, "{name} differs between formats");
        }
    }

    #[test]
    fn vit_replayed_matrix_reproduces_rows() {
        let first = campaign(scenario(3)).run_with(&RunConfig::default()).unwrap();
        let replay = campaign(scenario(3))
            .with_fault_matrix(first.fault_matrix.clone())
            .run_with(&RunConfig::default())
            .unwrap();
        assert_eq!(first.trace, replay.trace);
        for (a, b) in first.rows.iter().zip(replay.rows.iter()) {
            assert_eq!(a.corr_top5, b.corr_top5);
        }
    }
}
