//! High-level image-classification campaign — the
//! `test_error_models_imgclass.py` equivalent.
//!
//! Runs fault-free, faulty and (optionally) hardened model instances in
//! lock-step over a dataset, producing per-image top-5 rows, the applied
//! fault trace and CSV/YAML/binary output files (§V-B, §V-F-1).
//!
//! The campaign is a thin [`CampaignTask`] adapter: policy iteration,
//! fault-slot assignment, replay validation, tracing, pool fan-out and
//! persistence all live in the shared campaign [`Engine`].

use crate::campaign::config::RunConfig;
use crate::campaign::engine::{CampaignTask, Engine, ScopeCtx, ScopeSink};
use crate::error::CoreError;
use crate::fault::AppliedFault;
use crate::injector::arm_faults;
use crate::matrix::{FaultMatrix, LayerTarget};
use crate::monitor::{attach_monitor, NanInfMonitor};
use crate::persist::{save_fault_matrix, RunTrace, TraceEntry};
use alfi_datasets::loader::ClassificationLoader;
use alfi_nn::Network;
use alfi_scenario::{InjectionPolicy, Scenario};
use alfi_tensor::Tensor;
use alfi_trace::{EffectClass, Phase, Recorder};
use std::ops::ControlFlow;
use std::path::Path;
use std::sync::Arc;

/// Top-K classes with probabilities for one model output.
pub type TopK = Vec<(usize, f32)>;

/// Per-image campaign result row.
#[derive(Debug, Clone)]
pub struct ClassificationRow {
    /// Dataset image id.
    pub image_id: u64,
    /// Virtual file path from the dataset record.
    pub file_name: String,
    /// Ground-truth label.
    pub label: usize,
    /// Fault-free model top-5 `(class, probability)`.
    pub orig_top5: TopK,
    /// Fault-injected model top-5.
    pub corr_top5: TopK,
    /// Hardened (mitigation) model top-5, when a resil model was given.
    pub resil_top5: Option<TopK>,
    /// Faults applied while this image was processed.
    pub faults: Vec<AppliedFault>,
    /// NaN elements observed anywhere in the corrupted model.
    pub corr_nan: usize,
    /// Infinite elements observed anywhere in the corrupted model.
    pub corr_inf: usize,
}

/// Full campaign output: rows plus everything needed for exact replay.
#[derive(Debug, Clone)]
pub struct ClassificationCampaignResult {
    /// One row per processed image.
    pub rows: Vec<ClassificationRow>,
    /// The scenario that ran.
    pub scenario: Scenario,
    /// The pre-generated fault matrix (reusable across experiments).
    pub fault_matrix: FaultMatrix,
    /// Applied-fault trace with per-inference NaN/Inf counts.
    pub trace: RunTrace,
}

impl ClassificationCampaignResult {
    /// Writes the paper's three output sets into `dir`:
    /// `scenario.yml` (meta), `faults.bin` + `trace.bin` (binary fault
    /// files), `results_orig.csv` / `results_corr.csv`
    /// (/`results_resil.csv`) (model outputs).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] on filesystem failures.
    pub fn save_outputs(&self, dir: impl AsRef<Path>) -> Result<(), CoreError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        self.scenario
            .save(dir.join("scenario.yml"))
            .map_err(|e| CoreError::Io(e.to_string()))?;
        save_fault_matrix(&self.fault_matrix, dir.join("faults.bin"))?;
        self.trace.save(dir.join("trace.bin"))?;
        std::fs::write(dir.join("results_orig.csv"), self.to_csv(CsvVariant::Original))?;
        std::fs::write(dir.join("results_corr.csv"), self.to_csv(CsvVariant::Corrupted))?;
        if self.rows.iter().any(|r| r.resil_top5.is_some()) {
            std::fs::write(dir.join("results_resil.csv"), self.to_csv(CsvVariant::Resilient))?;
        }
        Ok(())
    }

    /// Renders one of the CSV result files. Columns: image identity,
    /// label, top-5 classes and probabilities, fault positions (layer,
    /// channel, depth, height, width, bit) and NaN/Inf counts.
    pub fn to_csv(&self, variant: CsvVariant) -> String {
        let mut out = String::from(
            "image_id,file_name,label,\
             top1,top1_p,top2,top2_p,top3,top3_p,top4,top4_p,top5,top5_p,\
             fault_layers,fault_channels,fault_depths,fault_heights,fault_widths,fault_bits,\
             nan_count,inf_count\n",
        );
        for row in &self.rows {
            let topk: &TopK = match variant {
                CsvVariant::Original => &row.orig_top5,
                CsvVariant::Corrupted => &row.corr_top5,
                CsvVariant::Resilient => match &row.resil_top5 {
                    Some(t) => t,
                    None => continue,
                },
            };
            out.push_str(&format!("{},{},{}", row.image_id, row.file_name, row.label));
            for k in 0..5 {
                match topk.get(k) {
                    Some((c, p)) => out.push_str(&format!(",{c},{p}")),
                    None => out.push_str(",,"),
                }
            }
            let join = |f: &dyn Fn(&AppliedFault) -> String| {
                row.faults.iter().map(f).collect::<Vec<_>>().join(";")
            };
            out.push_str(&format!(
                ",{},{},{},{},{},{}",
                join(&|a| a.record.layer.to_string()),
                join(&|a| a.record.channel.to_string()),
                join(&|a| a.record.depth.map_or("-".into(), |d| d.to_string())),
                join(&|a| a.record.height.to_string()),
                join(&|a| a.record.width.to_string()),
                join(&|a| match a.record.value {
                    crate::fault::FaultValue::BitFlip(p) => p.to_string(),
                    crate::fault::FaultValue::StuckAt { pos, .. } => format!("s{pos}"),
                    crate::fault::FaultValue::Replace(_) => "v".into(),
                }),
            ));
            out.push_str(&format!(",{},{}\n", row.corr_nan, row.corr_inf));
        }
        out
    }
}

/// Which of the three synchronized model instances a CSV file reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsvVariant {
    /// The fault-free model.
    Original,
    /// The fault-injected model.
    Corrupted,
    /// The hardened (mitigation) model under the same faults.
    Resilient,
}

/// One classification fault scope: a stacked `[n, c, h, w]` image
/// tensor with the matching dataset records and labels — a single
/// image under `per_image`, a whole batch under
/// `per_batch`/`per_epoch`.
#[derive(Debug)]
pub struct ClassificationScope {
    images: Tensor,
    records: Vec<alfi_datasets::ImageRecord>,
    labels: Vec<usize>,
}

/// The high-level classification campaign runner.
#[derive(Debug)]
pub struct ImgClassCampaign {
    model: Network,
    resil_model: Option<Network>,
    scenario: Scenario,
    loader: ClassificationLoader,
    fault_matrix: Option<FaultMatrix>,
}

impl ImgClassCampaign {
    /// Creates a campaign over `model` with the given scenario and data.
    pub fn new(model: Network, scenario: Scenario, loader: ClassificationLoader) -> Self {
        ImgClassCampaign { model, resil_model: None, scenario, loader, fault_matrix: None }
    }

    /// Replays a previously persisted fault matrix instead of generating
    /// a new one — the paper's `fault_file` parameter, letting "the
    /// identical set of faults be utilized across various experiments".
    pub fn with_fault_matrix(mut self, matrix: FaultMatrix) -> Self {
        self.fault_matrix = Some(matrix);
        self
    }

    /// Adds a hardened model to run in lock-step under the *same* faults
    /// — the paper's "tight integration of fault-free, faulty, and
    /// enhanced models". It must expose the same injectable-layer list.
    pub fn with_resil_model(mut self, resil: Network) -> Self {
        self.resil_model = Some(resil);
        self
    }

    /// Runs the campaign with the given [`RunConfig`] — the single
    /// entry point for every driver and thread count, delegating to the
    /// shared campaign [`Engine`] (see its docs for dispatch, tracing
    /// and persistence semantics). `RunConfig::default()` reproduces
    /// the sequential driver byte-for-byte.
    ///
    /// # Errors
    ///
    /// Returns resolution/injection errors; an exhausted fault matrix
    /// ends the run gracefully instead. With `threads > 1` a
    /// non-`per_image` policy is rejected and a panicking worker
    /// surfaces as [`CoreError::WorkerPanic`].
    pub fn run_with(&mut self, cfg: &RunConfig) -> Result<ClassificationCampaignResult, CoreError> {
        Engine::new(cfg).run(&*self)
    }

    /// Runs the campaign sequentially with tracing and persistence off.
    ///
    /// # Errors
    ///
    /// As [`run_with`](Self::run_with).
    #[deprecated(since = "0.2.0", note = "use `run_with(&RunConfig::default())`")]
    pub fn run(&mut self) -> Result<ClassificationCampaignResult, CoreError> {
        Engine::sequential(&*self)
    }

    /// Parallel variant of [`run_with`](Self::run_with) for `per_image`
    /// scenarios. Unlike `run_with` with `threads: 1`, `threads == 1`
    /// here still uses the parallel driver (pool task guards stay
    /// active).
    ///
    /// # Errors
    ///
    /// As [`run_with`](Self::run_with).
    #[deprecated(since = "0.2.0", note = "use `run_with(&RunConfig::new().threads(n))`")]
    pub fn run_parallel(&mut self, threads: usize) -> Result<ClassificationCampaignResult, CoreError> {
        Engine::forced_parallel(&*self, threads)
    }
}

impl CampaignTask for ImgClassCampaign {
    type Scope = ClassificationScope;
    type Row = ClassificationRow;
    type Result = ClassificationCampaignResult;
    /// Models are [`Sync`], so workers share the campaign itself.
    type ParCtx<'s> = &'s ImgClassCampaign;

    fn kind(&self) -> &'static str {
        "classification"
    }

    fn model_name(&self) -> String {
        self.model.name().to_string()
    }

    fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    fn replay_matrix(&self) -> Option<&FaultMatrix> {
        self.fault_matrix.as_ref()
    }

    fn resolve_targets(&self) -> Result<(Vec<LayerTarget>, Option<Vec<LayerTarget>>), CoreError> {
        let input_dims = {
            let ds = self.loader.dataset();
            vec![1, ds.channels(), ds.image_hw(), ds.image_hw()]
        };
        let targets =
            crate::matrix::resolve_targets(&[&self.model], &self.scenario, &[Some(input_dims.clone())])?;
        let resil_targets = match &self.resil_model {
            Some(r) => {
                Some(crate::matrix::resolve_targets(&[r], &self.scenario, &[Some(input_dims)])?)
            }
            None => None,
        };
        Ok((targets, resil_targets))
    }

    fn stream_scopes(
        &self,
        epoch: u64,
        sink: &mut ScopeSink<'_, ClassificationScope>,
    ) -> Result<ControlFlow<()>, CoreError> {
        let per_image = self.scenario.injection_policy == InjectionPolicy::PerImage;
        for batch in self.loader.iter_epoch(epoch) {
            if per_image {
                // One single-image scope per image: fault batch
                // coordinates are always 0.
                for i in 0..batch.labels.len() {
                    let image = batch.images.batch_item(i).map_err(alfi_nn::NnError::from)?;
                    let images = Tensor::stack(&[image]).map_err(alfi_nn::NnError::from)?;
                    let scope = ClassificationScope {
                        images,
                        records: vec![batch.records[i].clone()],
                        labels: vec![batch.labels[i]],
                    };
                    if sink(i == 0, scope)?.is_break() {
                        return Ok(ControlFlow::Break(()));
                    }
                }
            } else {
                // One whole-batch scope per batch: a single forward
                // pass, so neuron faults may target any batch
                // coordinate, exactly as in the paper.
                let scope = ClassificationScope {
                    images: batch.images,
                    records: batch.records,
                    labels: batch.labels,
                };
                if sink(true, scope)?.is_break() {
                    return Ok(ControlFlow::Break(()));
                }
            }
        }
        Ok(ControlFlow::Continue(()))
    }

    /// Runs the fault-free / faulty / hardened triple for one fault
    /// scope (a single image or a whole batch) and appends one row per
    /// contained image. Trace entries attribute each applied fault to
    /// the image its batch coordinate addressed (weight faults and
    /// out-of-range coordinates attribute to the scope's first image).
    fn process_scope(
        &self,
        ctx: &ScopeCtx<'_>,
        scope: &ClassificationScope,
        rec: &Recorder,
        rows: &mut Vec<ClassificationRow>,
        trace: &mut RunTrace,
    ) -> Result<(), CoreError> {
        let worker = alfi_pool::worker_index();
        let images = &scope.images;
        let n = scope.records.len();
        let orig_logits = {
            let _span = rec.span_on(Phase::Forward, worker);
            self.model.forward_traced(images, rec)?
        };

        let mut corrupted = self.model.clone();
        let monitor = Arc::new(NanInfMonitor::new());
        attach_monitor(&mut corrupted, Arc::<NanInfMonitor>::clone(&monitor) as _)?;
        let armed = {
            let _span = rec.span_on(Phase::Inject, worker);
            let mut nets = [&mut corrupted];
            arm_faults(&mut nets, ctx.targets, ctx.faults, self.scenario.injection_target)?
        };
        let corr_logits = {
            let _span = rec.span_on(Phase::Forward, worker);
            corrupted.forward_traced(images, rec)?
        };
        let applied = armed.collect_applied();
        rec.record_applied(applied.len() as u64);
        let totals = monitor.totals();
        monitor.report_to(rec);

        let resil_logits = match (&self.resil_model, ctx.resil_targets) {
            (Some(resil), Some(rt)) => {
                let mut hardened = resil.clone();
                let _armed_r = {
                    let _span = rec.span_on(Phase::Inject, worker);
                    let mut nets = [&mut hardened];
                    arm_faults(&mut nets, rt, ctx.faults, self.scenario.injection_target)?
                };
                let _span = rec.span_on(Phase::Forward, worker);
                Some(hardened.forward_traced(images, rec)?)
            }
            _ => None,
        };

        let _eval = rec.span_on(Phase::Eval, worker);
        for a in &applied {
            let img_idx = match self.scenario.injection_target {
                alfi_scenario::InjectionTarget::Neurons => a.record.batch.min(n - 1),
                _ => 0,
            };
            trace.entries.push(TraceEntry {
                image_id: scope.records[img_idx].image_id,
                applied: *a,
                output_nan_count: totals.nan as u32,
                output_inf_count: totals.inf as u32,
            });
        }
        for i in 0..n {
            // Faults are listed on every row of the scope; per-image
            // attribution lives in the trace entries above.
            rows.push(ClassificationRow {
                image_id: scope.records[i].image_id,
                file_name: scope.records[i].file_name.clone(),
                label: scope.labels[i],
                orig_top5: softmax_topk_row(&orig_logits, i, 5)?,
                corr_top5: softmax_topk_row(&corr_logits, i, 5)?,
                resil_top5: resil_logits
                    .as_ref()
                    .map(|l| softmax_topk_row(l, i, 5))
                    .transpose()?,
                faults: applied.clone(),
                corr_nan: totals.nan,
                corr_inf: totals.inf,
            });
            rec.item_finished();
        }
        Ok(())
    }

    fn prepare_parallel<'s>(&'s self, _items: usize) -> Result<Self::ParCtx<'s>, CoreError> {
        Ok(self)
    }

    fn process_parallel(
        ctx: &Self::ParCtx<'_>,
        scope_ctx: &ScopeCtx<'_>,
        _idx: usize,
        scope: &ClassificationScope,
        rec: &Recorder,
    ) -> Result<(Vec<ClassificationRow>, Vec<TraceEntry>), CoreError> {
        let mut rows = Vec::with_capacity(1);
        let mut trace = RunTrace::default();
        ctx.process_scope(scope_ctx, scope, rec, &mut rows, &mut trace)?;
        Ok((rows, trace.entries))
    }

    fn classify(row: &ClassificationRow) -> EffectClass {
        classify_row(row)
    }

    fn row_nonfinite(row: &ClassificationRow) -> (u64, u64) {
        (row.corr_nan as u64, row.corr_inf as u64)
    }

    fn finalize(
        &self,
        rows: Vec<ClassificationRow>,
        matrix: FaultMatrix,
        trace: RunTrace,
    ) -> ClassificationCampaignResult {
        ClassificationCampaignResult {
            rows,
            scenario: self.scenario.clone(),
            fault_matrix: matrix,
            trace,
        }
    }

    fn save_result(
        &self,
        result: &ClassificationCampaignResult,
        dir: &Path,
    ) -> Result<(), CoreError> {
        result.save_outputs(dir)
    }
}

/// Trace-level fault-effect classification of one row, mirroring the
/// KPI rules in `alfi-eval`: DUE when non-finite values surfaced, SDC
/// when the top-1 prediction silently changed, masked otherwise.
fn classify_row(row: &ClassificationRow) -> EffectClass {
    let corr_top1 = row.corr_top5.first();
    if row.corr_nan + row.corr_inf > 0 || corr_top1.is_some_and(|&(_, p)| !p.is_finite()) {
        EffectClass::Due
    } else if row.orig_top5.first().map(|t| t.0) != corr_top1.map(|t| t.0) {
        EffectClass::Sdc
    } else {
        EffectClass::Masked
    }
}

/// Softmax over batch logits `[n, classes]` and top-k extraction of row `i`.
fn softmax_topk_row(logits: &Tensor, i: usize, k: usize) -> Result<TopK, CoreError> {
    let probs = logits.softmax_lastdim().map_err(alfi_nn::NnError::from)?;
    let row = probs.batch_item(i).map_err(alfi_nn::NnError::from)?;
    Ok(row.topk(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_datasets::classification::ClassificationDataset;
    use alfi_nn::models::{alexnet, ModelConfig};
    use alfi_scenario::{FaultCount, FaultMode, InjectionTarget};

    fn campaign(scenario: Scenario) -> ImgClassCampaign {
        let mcfg = ModelConfig { input_hw: 16, width_mult: 0.0625, ..ModelConfig::default() };
        let model = alexnet(&mcfg);
        let ds = ClassificationDataset::new(scenario.dataset_size, mcfg.num_classes, 3, 16, 5);
        let loader = ClassificationLoader::new(ds, scenario.batch_size);
        ImgClassCampaign::new(model, scenario, loader)
    }

    #[test]
    fn per_image_campaign_produces_one_row_per_image() {
        let mut s = Scenario::default();
        s.dataset_size = 6;
        s.injection_target = InjectionTarget::Weights;
        s.fault_mode = FaultMode::exponent_bit_flip();
        let result = campaign(s).run_with(&RunConfig::default()).unwrap();
        assert_eq!(result.rows.len(), 6);
        for row in &result.rows {
            assert_eq!(row.orig_top5.len(), 5);
            assert_eq!(row.corr_top5.len(), 5);
            assert_eq!(row.faults.len(), 1);
            assert!(row.resil_top5.is_none());
        }
        assert_eq!(result.trace.entries.len(), 6);
    }

    #[test]
    fn per_epoch_policy_reuses_one_slot() {
        let mut s = Scenario::default();
        s.dataset_size = 5;
        s.injection_policy = InjectionPolicy::PerEpoch;
        s.injection_target = InjectionTarget::Weights;
        let result = campaign(s).run_with(&RunConfig::default()).unwrap();
        assert_eq!(result.rows.len(), 5);
        // every image saw the identical fault record
        let first = result.rows[0].faults[0].record;
        for row in &result.rows {
            assert_eq!(row.faults[0].record, first);
        }
    }

    #[test]
    fn per_batch_policy_advances_per_batch() {
        let mut s = Scenario::default();
        s.dataset_size = 6;
        s.batch_size = 3;
        s.injection_policy = InjectionPolicy::PerBatch;
        s.injection_target = InjectionTarget::Weights;
        let result = campaign(s).run_with(&RunConfig::default()).unwrap();
        let r = &result.rows;
        assert_eq!(r[0].faults[0].record, r[1].faults[0].record);
        assert_eq!(r[0].faults[0].record, r[2].faults[0].record);
        assert_ne!(r[2].faults[0].record, r[3].faults[0].record);
    }

    #[test]
    fn neuron_campaign_logs_applications() {
        let mut s = Scenario::default();
        s.dataset_size = 3;
        s.injection_target = InjectionTarget::Neurons;
        s.faults_per_image = FaultCount::Fixed(2);
        let result = campaign(s).run_with(&RunConfig::default()).unwrap();
        for row in &result.rows {
            assert_eq!(row.faults.len(), 2, "both neuron faults applied");
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut s = Scenario::default();
        s.dataset_size = 2;
        s.injection_target = InjectionTarget::Weights;
        let result = campaign(s).run_with(&RunConfig::default()).unwrap();
        let csv = result.to_csv(CsvVariant::Corrupted);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("image_id,file_name,label,top1"));
        assert!(lines[1].contains("synthetic/class/"));
    }

    #[test]
    fn outputs_are_saved_and_replayable() {
        let mut s = Scenario::default();
        s.dataset_size = 2;
        s.injection_target = InjectionTarget::Weights;
        let result = campaign(s).run_with(&RunConfig::default()).unwrap();
        let dir = std::env::temp_dir().join("alfi_campaign_out");
        let _ = std::fs::remove_dir_all(&dir);
        result.save_outputs(&dir).unwrap();
        for f in ["scenario.yml", "faults.bin", "trace.bin", "results_orig.csv", "results_corr.csv"] {
            assert!(dir.join(f).exists(), "{f} missing");
        }
        // fault file round-trips
        let m = crate::persist::load_fault_matrix(dir.join("faults.bin")).unwrap();
        assert_eq!(m, result.fault_matrix);
        let t = RunTrace::load(dir.join("trace.bin")).unwrap();
        assert_eq!(t, result.trace);
        // scenario replays
        let s2 = Scenario::load(dir.join("scenario.yml")).unwrap();
        assert_eq!(s2, result.scenario);
    }

    #[test]
    fn per_batch_neuron_faults_can_hit_any_batch_coordinate() {
        // With batch_size 4 and per-batch policy the whole batch goes
        // through one forward pass, so neuron faults targeting batch
        // index > 0 land instead of being skipped.
        let mut s = Scenario::default();
        s.dataset_size = 8;
        s.batch_size = 4;
        s.injection_policy = InjectionPolicy::PerBatch;
        s.injection_target = InjectionTarget::Neurons;
        s.fault_mode = FaultMode::RandomValue { min: 7.0, max: 7.1 };
        s.seed = 3; // seed chosen so at least one fault has batch > 0
        let result = campaign(s).run_with(&RunConfig::default()).unwrap();
        assert_eq!(result.rows.len(), 8);
        let applied: Vec<_> = result.trace.entries.iter().map(|e| e.applied).collect();
        assert_eq!(applied.len(), 2, "one neuron fault per batch, two batches");
        assert!(
            applied.iter().any(|a| a.record.batch > 0),
            "expected a fault with batch > 0 to be applied: {applied:?}"
        );
        // trace attribution points at the image the coordinate addressed
        for e in &result.trace.entries {
            let expect_row = e.applied.record.batch;
            let batch_start = result
                .rows
                .iter()
                .position(|r| r.image_id == e.image_id)
                .unwrap();
            assert_eq!(batch_start % 4, expect_row);
        }
    }

    #[test]
    fn replayed_fault_matrix_reproduces_identical_rows() {
        let mut s = Scenario::default();
        s.dataset_size = 4;
        s.injection_target = InjectionTarget::Weights;
        let first = campaign(s.clone()).run_with(&RunConfig::default()).unwrap();
        let replay = campaign(s)
            .with_fault_matrix(first.fault_matrix.clone())
            .run_with(&RunConfig::default())
            .unwrap();
        assert_eq!(first.trace, replay.trace);
        for (a, b) in first.rows.iter().zip(replay.rows.iter()) {
            assert_eq!(a.corr_top5, b.corr_top5);
        }
    }

    #[test]
    fn replayed_matrix_with_wrong_target_is_rejected() {
        let mut s = Scenario::default();
        s.dataset_size = 2;
        s.injection_target = InjectionTarget::Weights;
        let first = campaign(s.clone()).run_with(&RunConfig::default()).unwrap();
        s.injection_target = InjectionTarget::Neurons;
        let err = campaign(s).with_fault_matrix(first.fault_matrix).run_with(&RunConfig::default()).unwrap_err();
        assert!(matches!(err, crate::CoreError::CorruptFile { .. }));
    }

    #[test]
    fn parallel_run_matches_sequential_bit_exactly() {
        let mut s = Scenario::default();
        s.dataset_size = 8;
        s.injection_target = InjectionTarget::Weights;
        s.fault_mode = FaultMode::exponent_bit_flip();
        let sequential = campaign(s.clone()).run_with(&RunConfig::default()).unwrap();
        let parallel = campaign(s).run_with(&RunConfig::new().threads(4)).unwrap();
        assert_eq!(sequential.rows.len(), parallel.rows.len());
        for (a, b) in sequential.rows.iter().zip(parallel.rows.iter()) {
            assert_eq!(a.image_id, b.image_id);
            assert_eq!(a.orig_top5, b.orig_top5);
            assert_eq!(a.corr_top5, b.corr_top5);
            assert_eq!(a.faults, b.faults);
        }
        assert_eq!(sequential.trace, parallel.trace);
        assert_eq!(sequential.fault_matrix, parallel.fault_matrix);
    }

    #[test]
    fn parallel_run_rejects_non_per_image_policy() {
        let mut s = Scenario::default();
        s.dataset_size = 4;
        s.injection_policy = InjectionPolicy::PerEpoch;
        assert!(campaign(s).run_with(&RunConfig::new().threads(2)).is_err());
    }

    #[test]
    fn parallel_run_surfaces_worker_panic_as_error() {
        let mut s = Scenario::default();
        s.dataset_size = 4;
        s.injection_target = InjectionTarget::Weights;
        let mut c = campaign(s);
        // A monitor that blows up mid-forward inside a pool task: the
        // pool must contain the panic and the campaign must report it as
        // an error instead of unwinding through (or poisoning) campaign
        // state. The `in_parallel_task` guard keeps the caller-side
        // shape-inference forward in `resolve_targets` alive.
        let bomb: std::sync::Arc<dyn alfi_nn::graph::ForwardHook> =
            std::sync::Arc::new(|_: &alfi_nn::graph::LayerCtx, _: &mut Tensor| {
                if alfi_pool::in_parallel_task() {
                    panic!("monitor exploded");
                }
            });
        attach_monitor(&mut c.model, bomb).unwrap();
        for threads in [1, 3] {
            // `forced_parallel(1)` keeps the parallel driver (unlike
            // `run_with` with `threads: 1`, which is sequential), so the
            // pool guard still fires — exercised here on purpose.
            let err = crate::campaign::Engine::forced_parallel(&c, threads).unwrap_err();
            match err {
                CoreError::WorkerPanic { message } => {
                    assert!(message.contains("monitor exploded"), "message: {message}")
                }
                other => panic!("expected WorkerPanic, got {other:?}"),
            }
        }
    }

    #[test]
    fn deprecated_run_matches_run_with_default() {
        let mut s = Scenario::default();
        s.dataset_size = 4;
        s.injection_target = InjectionTarget::Weights;
        s.fault_mode = FaultMode::exponent_bit_flip();
        let via_config = campaign(s.clone()).run_with(&RunConfig::default()).unwrap();
        #[allow(deprecated)]
        let via_run = campaign(s).run().unwrap();
        assert_eq!(via_config.rows.len(), via_run.rows.len());
        for (a, b) in via_config.rows.iter().zip(via_run.rows.iter()) {
            assert_eq!(a.orig_top5, b.orig_top5);
            assert_eq!(a.corr_top5, b.corr_top5);
            assert_eq!(a.faults, b.faults);
        }
        assert_eq!(via_config.trace, via_run.trace);
        assert_eq!(via_config.fault_matrix, via_run.fault_matrix);
    }

    #[test]
    fn recorder_collects_counters_and_identical_outputs() {
        let mut s = Scenario::default();
        s.dataset_size = 4;
        s.injection_target = InjectionTarget::Weights;
        s.fault_mode = FaultMode::exponent_bit_flip();
        let plain = campaign(s.clone()).run_with(&RunConfig::default()).unwrap();
        let rec = alfi_trace::Recorder::new();
        let traced = campaign(s)
            .run_with(&RunConfig::new().recorder(rec.clone()))
            .unwrap();
        for (a, b) in plain.rows.iter().zip(traced.rows.iter()) {
            assert_eq!(a.corr_top5, b.corr_top5, "tracing must not change results");
        }
        let summary = rec.summary();
        assert_eq!(summary.items, 4);
        assert_eq!(summary.injections, 4);
        assert_eq!(summary.outcomes.total(), 4);
        assert_eq!(summary.meta.as_ref().unwrap().campaign, "classification");
        assert!(summary.phases.contains_key("forward"));
        assert!(!summary.layer_forward.is_empty(), "per-layer forward timings recorded");
    }

    #[test]
    fn campaign_is_deterministic() {
        let mut s = Scenario::default();
        s.dataset_size = 3;
        s.injection_target = InjectionTarget::Weights;
        let a = campaign(s.clone()).run_with(&RunConfig::default()).unwrap();
        let b = campaign(s).run_with(&RunConfig::default()).unwrap();
        assert_eq!(a.rows.len(), b.rows.len());
        for (ra, rb) in a.rows.iter().zip(b.rows.iter()) {
            assert_eq!(ra.corr_top5, rb.corr_top5);
            assert_eq!(ra.faults, rb.faults);
        }
    }
}
