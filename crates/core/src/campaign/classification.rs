//! High-level image-classification campaign — the
//! `test_error_models_imgclass.py` equivalent.
//!
//! Runs fault-free, faulty and (optionally) hardened model instances in
//! lock-step over a dataset, producing per-image top-5 rows, the applied
//! fault trace and CSV/YAML/binary output files (§V-B, §V-F-1).
//!
//! The campaign is a thin [`CampaignTask`] adapter: policy iteration,
//! fault-slot assignment, replay validation, tracing, pool fan-out and
//! persistence all live in the shared campaign [`Engine`].

use crate::artifact::{ArtifactSink, Artifacts, ColumnarSink, SinkStats};
use crate::campaign::config::RunConfig;
use crate::campaign::engine::{CampaignTask, Engine, ScopeCtx, ScopeSink};
use crate::error::CoreError;
use crate::fault::AppliedFault;
use crate::injector::arm_faults;
use crate::matrix::{FaultMatrix, LayerTarget};
use crate::monitor::{attach_monitor, NanInfMonitor};
use crate::persist::{save_fault_matrix, RunTrace, TraceEntry};
use alfi_datasets::loader::ClassificationLoader;
use alfi_nn::Network;
use alfi_scenario::{ArtifactFormat, InjectionPolicy, Scenario};
use alfi_store::{ColumnSpec, ColumnType, Encoding, RowKey, Schema, Value};
use alfi_tensor::Tensor;
use alfi_trace::{EffectClass, Phase, Recorder};
use std::fs::File;
use std::io::{self, Write};
use std::ops::ControlFlow;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Top-K classes with probabilities for one model output.
pub type TopK = Vec<(usize, f32)>;

/// Per-image campaign result row.
#[derive(Debug, Clone)]
pub struct ClassificationRow {
    /// Dataset image id.
    pub image_id: u64,
    /// Virtual file path from the dataset record.
    pub file_name: String,
    /// Ground-truth label.
    pub label: usize,
    /// Fault-free model top-5 `(class, probability)`.
    pub orig_top5: TopK,
    /// Fault-injected model top-5.
    pub corr_top5: TopK,
    /// Hardened (mitigation) model top-5, when a resil model was given.
    pub resil_top5: Option<TopK>,
    /// Faults applied while this image was processed.
    pub faults: Vec<AppliedFault>,
    /// NaN elements observed anywhere in the corrupted model.
    pub corr_nan: usize,
    /// Infinite elements observed anywhere in the corrupted model.
    pub corr_inf: usize,
}

/// Full campaign output: rows plus everything needed for exact replay.
#[derive(Debug, Clone)]
pub struct ClassificationCampaignResult {
    /// One row per processed image.
    pub rows: Vec<ClassificationRow>,
    /// The scenario that ran.
    pub scenario: Scenario,
    /// The pre-generated fault matrix (reusable across experiments).
    pub fault_matrix: FaultMatrix,
    /// Applied-fault trace with per-inference NaN/Inf counts.
    pub trace: RunTrace,
}

impl ClassificationCampaignResult {
    /// Writes the paper's three output sets into `dir`:
    /// `scenario.yml` (meta), `faults.bin` + `trace.bin` (binary fault
    /// files), `results_orig.csv` / `results_corr.csv`
    /// (/`results_resil.csv`) (model outputs).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] on filesystem failures.
    pub fn save_outputs(&self, dir: impl AsRef<Path>) -> Result<(), CoreError> {
        let a = Artifacts::new(dir);
        std::fs::create_dir_all(a.dir())?;
        self.scenario.save(a.scenario()).map_err(|e| CoreError::Io(e.to_string()))?;
        save_fault_matrix(&self.fault_matrix, a.faults())?;
        self.trace.save(a.trace())?;
        std::fs::write(a.rows_orig(), self.to_csv(CsvVariant::Original))?;
        std::fs::write(a.rows_corr(), self.to_csv(CsvVariant::Corrupted))?;
        if self.rows.iter().any(|r| r.resil_top5.is_some()) {
            std::fs::write(a.rows_resil(), self.to_csv(CsvVariant::Resilient))?;
        }
        Ok(())
    }

    /// Renders one of the CSV result files. Columns: image identity,
    /// label, top-5 classes and probabilities, fault positions (layer,
    /// channel, depth, height, width, bit) and NaN/Inf counts.
    pub fn to_csv(&self, variant: CsvVariant) -> String {
        let mut out = String::from(CSV_HEADER);
        for row in &self.rows {
            let topk: &TopK = match variant {
                CsvVariant::Original => &row.orig_top5,
                CsvVariant::Corrupted => &row.corr_top5,
                CsvVariant::Resilient => match &row.resil_top5 {
                    Some(t) => t,
                    None => continue,
                },
            };
            out.push_str(&csv_line(
                row.image_id,
                &row.file_name,
                row.label as u64,
                &padded_topk(topk),
                &fault_columns(&row.faults),
                row.corr_nan as u64,
                row.corr_inf as u64,
            ));
        }
        out
    }
}

/// Header line shared by [`ClassificationCampaignResult::to_csv`],
/// the streaming CSV sink and the store→CSV converter.
pub(crate) const CSV_HEADER: &str = "image_id,file_name,label,\
     top1,top1_p,top2,top2_p,top3,top3_p,top4,top4_p,top5,top5_p,\
     fault_layers,fault_channels,fault_depths,fault_heights,fault_widths,fault_bits,\
     nan_count,inf_count\n";

/// Sentinel class marking an absent top-k entry in the fixed-width
/// representation; renders as the empty CSV cells.
pub(crate) const TOPK_PAD_CLASS: u32 = u32::MAX;

/// Pads a top-k list to exactly five `(class, probability)` pairs.
pub(crate) fn padded_topk(topk: &TopK) -> [(u32, f32); 5] {
    let mut out = [(TOPK_PAD_CLASS, 0.0f32); 5];
    for (slot, &(c, p)) in out.iter_mut().zip(topk.iter()) {
        *slot = (c as u32, p);
    }
    out
}

/// The six `;`-joined fault-position columns (layer, channel, depth,
/// height, width, bit), shared by every row renderer.
pub(crate) fn fault_columns(faults: &[AppliedFault]) -> [String; 6] {
    let join =
        |f: &dyn Fn(&AppliedFault) -> String| faults.iter().map(f).collect::<Vec<_>>().join(";");
    [
        join(&|a| a.record.layer.to_string()),
        join(&|a| a.record.channel.to_string()),
        join(&|a| a.record.depth.map_or("-".into(), |d| d.to_string())),
        join(&|a| a.record.height.to_string()),
        join(&|a| a.record.width.to_string()),
        join(&|a| match a.record.value {
            crate::fault::FaultValue::BitFlip(p) => p.to_string(),
            crate::fault::FaultValue::StuckAt { pos, .. } => format!("s{pos}"),
            crate::fault::FaultValue::Replace(_) => "v".into(),
            crate::fault::FaultValue::QuantStep { bit, .. } => format!("q{bit}"),
        }),
    ]
}

/// Renders one CSV data line from plain cells — the single formatting
/// point shared by the batch writer, the streaming sink and the
/// store→CSV converter, so all three produce identical bytes by
/// construction.
pub(crate) fn csv_line(
    image_id: u64,
    file_name: &str,
    label: u64,
    topk: &[(u32, f32); 5],
    faults: &[String; 6],
    nan: u64,
    inf: u64,
) -> String {
    let mut out = format!("{image_id},{file_name},{label}");
    for &(c, p) in topk {
        if c == TOPK_PAD_CLASS {
            out.push_str(",,");
        } else {
            out.push_str(&format!(",{c},{p}"));
        }
    }
    out.push_str(&format!(
        ",{},{},{},{},{},{}",
        faults[0], faults[1], faults[2], faults[3], faults[4], faults[5]
    ));
    out.push_str(&format!(",{nan},{inf}\n"));
    out
}

/// Which of the three synchronized model instances a CSV file reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsvVariant {
    /// The fault-free model.
    Original,
    /// The fault-injected model.
    Corrupted,
    /// The hardened (mitigation) model under the same faults.
    Resilient,
}

/// One classification fault scope: a stacked `[n, c, h, w]` image
/// tensor with the matching dataset records and labels — a single
/// image under `per_image`, a whole batch under
/// `per_batch`/`per_epoch`.
#[derive(Debug)]
pub struct ClassificationScope {
    images: Tensor,
    records: Vec<alfi_datasets::ImageRecord>,
    labels: Vec<usize>,
}

/// The high-level classification campaign runner.
#[derive(Debug)]
pub struct ImgClassCampaign {
    model: Network,
    resil_model: Option<Network>,
    scenario: Scenario,
    loader: ClassificationLoader,
    fault_matrix: Option<FaultMatrix>,
}

impl ImgClassCampaign {
    /// Creates a campaign over `model` with the given scenario and data.
    pub fn new(model: Network, scenario: Scenario, loader: ClassificationLoader) -> Self {
        ImgClassCampaign { model, resil_model: None, scenario, loader, fault_matrix: None }
    }

    /// Replays a previously persisted fault matrix instead of generating
    /// a new one — the paper's `fault_file` parameter, letting "the
    /// identical set of faults be utilized across various experiments".
    pub fn with_fault_matrix(mut self, matrix: FaultMatrix) -> Self {
        self.fault_matrix = Some(matrix);
        self
    }

    /// Adds a hardened model to run in lock-step under the *same* faults
    /// — the paper's "tight integration of fault-free, faulty, and
    /// enhanced models". It must expose the same injectable-layer list.
    pub fn with_resil_model(mut self, resil: Network) -> Self {
        self.resil_model = Some(resil);
        self
    }

    /// Whether a hardened model is attached (drives the store schema's
    /// column arity).
    pub(crate) fn has_resil(&self) -> bool {
        self.resil_model.is_some()
    }

    /// Runs the campaign with the given [`RunConfig`] — the single
    /// entry point for every driver and thread count, delegating to the
    /// shared campaign [`Engine`] (see its docs for dispatch, tracing
    /// and persistence semantics). `RunConfig::default()` reproduces
    /// the sequential driver byte-for-byte.
    ///
    /// # Errors
    ///
    /// Returns resolution/injection errors; an exhausted fault matrix
    /// ends the run gracefully instead. With `threads > 1` a
    /// non-`per_image` policy is rejected and a panicking worker
    /// surfaces as [`CoreError::WorkerPanic`].
    pub fn run_with(&mut self, cfg: &RunConfig) -> Result<ClassificationCampaignResult, CoreError> {
        Engine::new(cfg).run(&*self)
    }
}

impl CampaignTask for ImgClassCampaign {
    type Scope = ClassificationScope;
    type Row = ClassificationRow;
    type Result = ClassificationCampaignResult;
    /// Models are [`Sync`], so workers share the campaign itself.
    type ParCtx<'s> = &'s ImgClassCampaign;

    fn kind(&self) -> &'static str {
        "classification"
    }

    fn model_name(&self) -> String {
        self.model.name().to_string()
    }

    fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    fn replay_matrix(&self) -> Option<&FaultMatrix> {
        self.fault_matrix.as_ref()
    }

    fn resolve_targets(&self) -> Result<(Vec<LayerTarget>, Option<Vec<LayerTarget>>), CoreError> {
        let input_dims = {
            let ds = self.loader.dataset();
            vec![1, ds.channels(), ds.image_hw(), ds.image_hw()]
        };
        let targets =
            crate::matrix::resolve_targets(&[&self.model], &self.scenario, &[Some(input_dims.clone())])?;
        let resil_targets = match &self.resil_model {
            Some(r) => {
                Some(crate::matrix::resolve_targets(&[r], &self.scenario, &[Some(input_dims)])?)
            }
            None => None,
        };
        Ok((targets, resil_targets))
    }

    fn stream_scopes(
        &self,
        epoch: u64,
        sink: &mut ScopeSink<'_, ClassificationScope>,
    ) -> Result<ControlFlow<()>, CoreError> {
        let per_image = self.scenario.injection_policy == InjectionPolicy::PerImage;
        for batch in self.loader.iter_epoch(epoch) {
            if per_image {
                // One single-image scope per image: fault batch
                // coordinates are always 0.
                for i in 0..batch.labels.len() {
                    let image = batch.images.batch_item(i).map_err(alfi_nn::NnError::from)?;
                    let images = Tensor::stack(&[image]).map_err(alfi_nn::NnError::from)?;
                    let scope = ClassificationScope {
                        images,
                        records: vec![batch.records[i].clone()],
                        labels: vec![batch.labels[i]],
                    };
                    if sink(i == 0, scope)?.is_break() {
                        return Ok(ControlFlow::Break(()));
                    }
                }
            } else {
                // One whole-batch scope per batch: a single forward
                // pass, so neuron faults may target any batch
                // coordinate, exactly as in the paper.
                let scope = ClassificationScope {
                    images: batch.images,
                    records: batch.records,
                    labels: batch.labels,
                };
                if sink(true, scope)?.is_break() {
                    return Ok(ControlFlow::Break(()));
                }
            }
        }
        Ok(ControlFlow::Continue(()))
    }

    /// Runs the fault-free / faulty / hardened triple for one fault
    /// scope (a single image or a whole batch) and appends one row per
    /// contained image. Trace entries attribute each applied fault to
    /// the image its batch coordinate addressed (weight faults and
    /// out-of-range coordinates attribute to the scope's first image).
    fn process_scope(
        &self,
        ctx: &ScopeCtx<'_>,
        scope: &ClassificationScope,
        rec: &Recorder,
        rows: &mut Vec<ClassificationRow>,
        trace: &mut RunTrace,
    ) -> Result<(), CoreError> {
        let worker = alfi_pool::worker_index();
        let images = &scope.images;
        let n = scope.records.len();
        let orig_logits = {
            let _span = rec.span_on(Phase::Forward, worker);
            self.model.forward_traced(images, rec)?
        };

        let mut corrupted = self.model.clone();
        let monitor = Arc::new(NanInfMonitor::new());
        attach_monitor(&mut corrupted, Arc::<NanInfMonitor>::clone(&monitor) as _)?;
        let armed = {
            let _span = rec.span_on(Phase::Inject, worker);
            let mut nets = [&mut corrupted];
            arm_faults(&mut nets, ctx.targets, ctx.faults, self.scenario.injection_target)?
        };
        let corr_logits = {
            let _span = rec.span_on(Phase::Forward, worker);
            corrupted.forward_traced(images, rec)?
        };
        let applied = armed.collect_applied();
        rec.record_applied(applied.len() as u64);
        let totals = monitor.totals();
        monitor.report_to(rec);

        let resil_logits = match (&self.resil_model, ctx.resil_targets) {
            (Some(resil), Some(rt)) => {
                let mut hardened = resil.clone();
                let _armed_r = {
                    let _span = rec.span_on(Phase::Inject, worker);
                    let mut nets = [&mut hardened];
                    arm_faults(&mut nets, rt, ctx.faults, self.scenario.injection_target)?
                };
                let _span = rec.span_on(Phase::Forward, worker);
                Some(hardened.forward_traced(images, rec)?)
            }
            _ => None,
        };

        let _eval = rec.span_on(Phase::Eval, worker);
        for a in &applied {
            let img_idx = match self.scenario.injection_target {
                alfi_scenario::InjectionTarget::Neurons => a.record.batch.min(n - 1),
                _ => 0,
            };
            trace.entries.push(TraceEntry {
                image_id: scope.records[img_idx].image_id,
                applied: *a,
                output_nan_count: totals.nan as u32,
                output_inf_count: totals.inf as u32,
            });
        }
        for i in 0..n {
            // Faults are listed on every row of the scope; per-image
            // attribution lives in the trace entries above.
            rows.push(ClassificationRow {
                image_id: scope.records[i].image_id,
                file_name: scope.records[i].file_name.clone(),
                label: scope.labels[i],
                orig_top5: softmax_topk_row(&orig_logits, i, 5)?,
                corr_top5: softmax_topk_row(&corr_logits, i, 5)?,
                resil_top5: resil_logits
                    .as_ref()
                    .map(|l| softmax_topk_row(l, i, 5))
                    .transpose()?,
                faults: applied.clone(),
                corr_nan: totals.nan,
                corr_inf: totals.inf,
            });
            rec.item_finished();
        }
        Ok(())
    }

    fn prepare_parallel<'s>(&'s self, _items: usize) -> Result<Self::ParCtx<'s>, CoreError> {
        Ok(self)
    }

    fn process_parallel(
        ctx: &Self::ParCtx<'_>,
        scope_ctx: &ScopeCtx<'_>,
        _idx: usize,
        scope: &ClassificationScope,
        rec: &Recorder,
    ) -> Result<(Vec<ClassificationRow>, Vec<TraceEntry>), CoreError> {
        let mut rows = Vec::with_capacity(1);
        let mut trace = RunTrace::default();
        ctx.process_scope(scope_ctx, scope, rec, &mut rows, &mut trace)?;
        Ok((rows, trace.entries))
    }

    fn classify(row: &ClassificationRow) -> EffectClass {
        classify_row(row)
    }

    fn row_nonfinite(row: &ClassificationRow) -> (u64, u64) {
        (row.corr_nan as u64, row.corr_inf as u64)
    }

    fn finalize(
        &self,
        rows: Vec<ClassificationRow>,
        matrix: FaultMatrix,
        trace: RunTrace,
    ) -> ClassificationCampaignResult {
        ClassificationCampaignResult {
            rows,
            scenario: self.scenario.clone(),
            fault_matrix: matrix,
            trace,
        }
    }

    fn make_row_sink(
        &self,
        format: ArtifactFormat,
        artifacts: &Artifacts,
    ) -> Result<Option<Box<dyn ArtifactSink<ClassificationRow>>>, CoreError> {
        match format {
            ArtifactFormat::Csv => Ok(Some(Box::new(ClassificationCsvSink::create(artifacts)?))),
            ArtifactFormat::Binary => {
                let resil = self.resil_model.is_some();
                let schema = with_layer_override_meta(store_schema(resil), &self.scenario);
                Ok(Some(Box::new(ColumnarSink::create(
                    artifacts.rows_store(),
                    schema,
                    move |row: &ClassificationRow| store_values(row, resil),
                )?)))
            }
        }
    }
}

/// Streaming CSV sink: the historical `results_orig.csv` /
/// `results_corr.csv` (/`results_resil.csv`) files written row by row
/// as the engine produces them. The resil file is created lazily on
/// the first hardened row, so runs without a resil model keep the
/// two-file layout. Shared with the ViT campaign, whose rows use the
/// identical CSV shape.
pub(crate) struct ClassificationCsvSink {
    orig: io::BufWriter<File>,
    corr: io::BufWriter<File>,
    resil: Option<io::BufWriter<File>>,
    resil_path: PathBuf,
    rows: u64,
    bytes: u64,
}

impl ClassificationCsvSink {
    pub(crate) fn create(artifacts: &Artifacts) -> Result<Self, CoreError> {
        let mut bytes = 0u64;
        let mut open = |path: PathBuf| -> Result<io::BufWriter<File>, CoreError> {
            let mut w = io::BufWriter::new(File::create(path)?);
            w.write_all(CSV_HEADER.as_bytes())?;
            bytes += CSV_HEADER.len() as u64;
            Ok(w)
        };
        let orig = open(artifacts.rows_orig())?;
        let corr = open(artifacts.rows_corr())?;
        Ok(ClassificationCsvSink {
            orig,
            corr,
            resil: None,
            resil_path: artifacts.rows_resil(),
            rows: 0,
            bytes,
        })
    }
}

impl ArtifactSink<ClassificationRow> for ClassificationCsvSink {
    fn append(&mut self, _key: RowKey, row: &ClassificationRow) -> Result<(), CoreError> {
        let faults = fault_columns(&row.faults);
        let line = |topk: &TopK| {
            csv_line(
                row.image_id,
                &row.file_name,
                row.label as u64,
                &padded_topk(topk),
                &faults,
                row.corr_nan as u64,
                row.corr_inf as u64,
            )
        };
        let orig_line = line(&row.orig_top5);
        self.orig.write_all(orig_line.as_bytes())?;
        self.bytes += orig_line.len() as u64;
        let corr_line = line(&row.corr_top5);
        self.corr.write_all(corr_line.as_bytes())?;
        self.bytes += corr_line.len() as u64;
        if let Some(topk) = &row.resil_top5 {
            if self.resil.is_none() {
                let mut w = io::BufWriter::new(File::create(&self.resil_path)?);
                w.write_all(CSV_HEADER.as_bytes())?;
                self.bytes += CSV_HEADER.len() as u64;
                self.resil = Some(w);
            }
            if let Some(w) = self.resil.as_mut() {
                let resil_line = line(topk);
                w.write_all(resil_line.as_bytes())?;
                self.bytes += resil_line.len() as u64;
            }
        }
        self.rows += 1;
        Ok(())
    }

    fn finalize(&mut self) -> Result<SinkStats, CoreError> {
        self.orig.flush()?;
        self.corr.flush()?;
        if let Some(w) = self.resil.as_mut() {
            w.flush()?;
        }
        Ok(SinkStats { rows: self.rows, bytes: self.bytes })
    }
}

/// Columnar store schema for classification rows: the fixed
/// `image_id, file_name, label` prefix, five `(class, p)` pairs per
/// model variant, the six fault columns and the NaN/Inf counts.
/// Probabilities are stored as raw f32 bits, so re-rendering them
/// reproduces the CSV text exactly.
pub(crate) fn store_schema(resil: bool) -> Schema {
    let mut cols = vec![
        ColumnSpec::new("image_id", ColumnType::U64, Encoding::Delta),
        ColumnSpec::new("file_name", ColumnType::Str, Encoding::Prefix),
        ColumnSpec::new("label", ColumnType::U32, Encoding::Plain),
    ];
    let variants: &[&str] = if resil { &["orig", "corr", "resil"] } else { &["orig", "corr"] };
    for v in variants {
        for k in 1..=5 {
            cols.push(ColumnSpec::new(format!("{v}_class{k}"), ColumnType::U32, Encoding::Plain));
            cols.push(ColumnSpec::new(format!("{v}_p{k}"), ColumnType::F32, Encoding::Plain));
        }
    }
    for name in
        ["fault_layers", "fault_channels", "fault_depths", "fault_heights", "fault_widths", "fault_bits"]
    {
        cols.push(ColumnSpec::new(name, ColumnType::Str, Encoding::Plain));
    }
    cols.push(ColumnSpec::new("nan_count", ColumnType::U32, Encoding::Plain));
    cols.push(ColumnSpec::new("inf_count", ColumnType::U32, Encoding::Plain));
    Schema::new(cols)
        .with_meta("kind", "classification")
        .with_meta("resil", if resil { "1" } else { "0" })
}

/// Appends one `layer.<pattern>` meta key per scenario `layers:`
/// override, making binary stores self-describing about the
/// multi-resolution fault model that produced their rows (`alfi store
/// info` prints them as a dedicated section). Scenarios without
/// overrides add nothing, so historical store bytes are unchanged.
pub(crate) fn with_layer_override_meta(mut schema: Schema, scenario: &Scenario) -> Schema {
    for (pattern, o) in &scenario.layer_overrides {
        let mut parts = Vec::new();
        if let Some(r) = o.rate {
            parts.push(format!("rate={r}"));
        }
        if let Some(m) = &o.mode {
            let name = match m {
                alfi_scenario::FaultMode::BitFlip { .. } => "bit_flip",
                alfi_scenario::FaultMode::StuckAt { .. } => "stuck_at",
                alfi_scenario::FaultMode::RandomValue { .. } => "random_value",
                alfi_scenario::FaultMode::QuantStep { .. } => "quant_step",
            };
            parts.push(format!("mode={name}"));
        }
        if let Some((lo, hi)) = o.channel_range {
            parts.push(format!("channels={lo}-{hi}"));
        }
        schema = schema.with_meta(format!("layer.{pattern}"), parts.join(","));
    }
    schema
}

/// Projects one row onto the [`store_schema`] column order.
pub(crate) fn store_values(row: &ClassificationRow, resil: bool) -> Vec<Value> {
    let mut values = vec![
        Value::U64(row.image_id),
        Value::Str(row.file_name.clone()),
        Value::U32(row.label as u32),
    ];
    fn push_topk(values: &mut Vec<Value>, topk: &TopK) {
        for (c, p) in padded_topk(topk) {
            values.push(Value::U32(c));
            values.push(Value::F32(p));
        }
    }
    push_topk(&mut values, &row.orig_top5);
    push_topk(&mut values, &row.corr_top5);
    if resil {
        // Schema arity is fixed per store; a campaign with a resil
        // model produces a resil top-5 for every row, so the empty
        // fallback only pads degenerate rows.
        let empty = TopK::new();
        push_topk(&mut values, row.resil_top5.as_ref().unwrap_or(&empty));
    }
    for col in fault_columns(&row.faults) {
        values.push(Value::Str(col));
    }
    values.push(Value::U32(row.corr_nan as u32));
    values.push(Value::U32(row.corr_inf as u32));
    values
}

/// Rebuilds the CSV artifact set from decoded store rows —
/// byte-identical to what a CSV-format run writes, because it renders
/// through the same [`csv_line`] as the live sinks.
pub(crate) fn store_rows_to_csvs(
    rows: &[alfi_store::Row],
    resil: bool,
) -> Result<Vec<(String, String)>, CoreError> {
    use crate::artifact::{cell_f32, cell_str, cell_u64};
    let mut orig = String::from(CSV_HEADER);
    let mut corr = String::from(CSV_HEADER);
    let mut resil_csv = String::from(CSV_HEADER);
    for (_, values) in rows {
        let image_id = cell_u64(values, 0)?;
        let file_name = cell_str(values, 1)?;
        let label = cell_u64(values, 2)?;
        let topk_at = |base: usize| -> Result<[(u32, f32); 5], CoreError> {
            let mut out = [(TOPK_PAD_CLASS, 0.0f32); 5];
            for (k, slot) in out.iter_mut().enumerate() {
                *slot = (
                    cell_u64(values, base + 2 * k)? as u32,
                    cell_f32(values, base + 2 * k + 1)?,
                );
            }
            Ok(out)
        };
        let variants = if resil { 3 } else { 2 };
        let tail = 3 + variants * 10;
        let mut faults: [String; 6] = Default::default();
        for (i, f) in faults.iter_mut().enumerate() {
            *f = cell_str(values, tail + i)?.to_string();
        }
        let nan = cell_u64(values, tail + 6)?;
        let inf = cell_u64(values, tail + 7)?;
        orig.push_str(&csv_line(image_id, file_name, label, &topk_at(3)?, &faults, nan, inf));
        corr.push_str(&csv_line(image_id, file_name, label, &topk_at(13)?, &faults, nan, inf));
        if resil {
            resil_csv
                .push_str(&csv_line(image_id, file_name, label, &topk_at(23)?, &faults, nan, inf));
        }
    }
    let mut out = vec![
        (Artifacts::ROWS_ORIG.to_string(), orig),
        (Artifacts::ROWS_CORR.to_string(), corr),
    ];
    if resil && !rows.is_empty() {
        out.push((Artifacts::ROWS_RESIL.to_string(), resil_csv));
    }
    Ok(out)
}

/// Trace-level fault-effect classification of one row, mirroring the
/// KPI rules in `alfi-eval`: DUE when non-finite values surfaced, SDC
/// when the top-1 prediction silently changed, masked otherwise.
pub(crate) fn classify_row(row: &ClassificationRow) -> EffectClass {
    let corr_top1 = row.corr_top5.first();
    if row.corr_nan + row.corr_inf > 0 || corr_top1.is_some_and(|&(_, p)| !p.is_finite()) {
        EffectClass::Due
    } else if row.orig_top5.first().map(|t| t.0) != corr_top1.map(|t| t.0) {
        EffectClass::Sdc
    } else {
        EffectClass::Masked
    }
}

/// Softmax over batch logits `[n, classes]` and top-k extraction of row `i`.
fn softmax_topk_row(logits: &Tensor, i: usize, k: usize) -> Result<TopK, CoreError> {
    let probs = logits.softmax_lastdim().map_err(alfi_nn::NnError::from)?;
    let row = probs.batch_item(i).map_err(alfi_nn::NnError::from)?;
    Ok(row.topk(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_datasets::classification::ClassificationDataset;
    use alfi_nn::models::{alexnet, ModelConfig};
    use alfi_scenario::{FaultCount, FaultMode, InjectionTarget};

    fn campaign(scenario: Scenario) -> ImgClassCampaign {
        let mcfg = ModelConfig { input_hw: 16, width_mult: 0.0625, ..ModelConfig::default() };
        let model = alexnet(&mcfg);
        let ds = ClassificationDataset::new(scenario.dataset_size, mcfg.num_classes, 3, 16, 5);
        let loader = ClassificationLoader::new(ds, scenario.batch_size);
        ImgClassCampaign::new(model, scenario, loader)
    }

    #[test]
    fn per_image_campaign_produces_one_row_per_image() {
        let mut s = Scenario::default();
        s.dataset_size = 6;
        s.injection_target = InjectionTarget::Weights;
        s.fault_mode = FaultMode::exponent_bit_flip();
        let result = campaign(s).run_with(&RunConfig::default()).unwrap();
        assert_eq!(result.rows.len(), 6);
        for row in &result.rows {
            assert_eq!(row.orig_top5.len(), 5);
            assert_eq!(row.corr_top5.len(), 5);
            assert_eq!(row.faults.len(), 1);
            assert!(row.resil_top5.is_none());
        }
        assert_eq!(result.trace.entries.len(), 6);
    }

    #[test]
    fn per_epoch_policy_reuses_one_slot() {
        let mut s = Scenario::default();
        s.dataset_size = 5;
        s.injection_policy = InjectionPolicy::PerEpoch;
        s.injection_target = InjectionTarget::Weights;
        let result = campaign(s).run_with(&RunConfig::default()).unwrap();
        assert_eq!(result.rows.len(), 5);
        // every image saw the identical fault record
        let first = result.rows[0].faults[0].record;
        for row in &result.rows {
            assert_eq!(row.faults[0].record, first);
        }
    }

    #[test]
    fn per_batch_policy_advances_per_batch() {
        let mut s = Scenario::default();
        s.dataset_size = 6;
        s.batch_size = 3;
        s.injection_policy = InjectionPolicy::PerBatch;
        s.injection_target = InjectionTarget::Weights;
        let result = campaign(s).run_with(&RunConfig::default()).unwrap();
        let r = &result.rows;
        assert_eq!(r[0].faults[0].record, r[1].faults[0].record);
        assert_eq!(r[0].faults[0].record, r[2].faults[0].record);
        assert_ne!(r[2].faults[0].record, r[3].faults[0].record);
    }

    #[test]
    fn neuron_campaign_logs_applications() {
        let mut s = Scenario::default();
        s.dataset_size = 3;
        s.injection_target = InjectionTarget::Neurons;
        s.faults_per_image = FaultCount::Fixed(2);
        let result = campaign(s).run_with(&RunConfig::default()).unwrap();
        for row in &result.rows {
            assert_eq!(row.faults.len(), 2, "both neuron faults applied");
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut s = Scenario::default();
        s.dataset_size = 2;
        s.injection_target = InjectionTarget::Weights;
        let result = campaign(s).run_with(&RunConfig::default()).unwrap();
        let csv = result.to_csv(CsvVariant::Corrupted);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("image_id,file_name,label,top1"));
        assert!(lines[1].contains("synthetic/class/"));
    }

    #[test]
    fn outputs_are_saved_and_replayable() {
        let mut s = Scenario::default();
        s.dataset_size = 2;
        s.injection_target = InjectionTarget::Weights;
        let result = campaign(s).run_with(&RunConfig::default()).unwrap();
        let dir = std::env::temp_dir().join("alfi_campaign_out");
        let _ = std::fs::remove_dir_all(&dir);
        result.save_outputs(&dir).unwrap();
        for f in ["scenario.yml", "faults.bin", "trace.bin", "results_orig.csv", "results_corr.csv"] {
            assert!(dir.join(f).exists(), "{f} missing");
        }
        // fault file round-trips
        let m = crate::persist::load_fault_matrix(dir.join("faults.bin")).unwrap();
        assert_eq!(m, result.fault_matrix);
        let t = RunTrace::load(dir.join("trace.bin")).unwrap();
        assert_eq!(t, result.trace);
        // scenario replays
        let s2 = Scenario::load(dir.join("scenario.yml")).unwrap();
        assert_eq!(s2, result.scenario);
    }

    #[test]
    fn per_batch_neuron_faults_can_hit_any_batch_coordinate() {
        // With batch_size 4 and per-batch policy the whole batch goes
        // through one forward pass, so neuron faults targeting batch
        // index > 0 land instead of being skipped.
        let mut s = Scenario::default();
        s.dataset_size = 8;
        s.batch_size = 4;
        s.injection_policy = InjectionPolicy::PerBatch;
        s.injection_target = InjectionTarget::Neurons;
        s.fault_mode = FaultMode::RandomValue { min: 7.0, max: 7.1 };
        s.seed = 3; // seed chosen so at least one fault has batch > 0
        let result = campaign(s).run_with(&RunConfig::default()).unwrap();
        assert_eq!(result.rows.len(), 8);
        let applied: Vec<_> = result.trace.entries.iter().map(|e| e.applied).collect();
        assert_eq!(applied.len(), 2, "one neuron fault per batch, two batches");
        assert!(
            applied.iter().any(|a| a.record.batch > 0),
            "expected a fault with batch > 0 to be applied: {applied:?}"
        );
        // trace attribution points at the image the coordinate addressed
        for e in &result.trace.entries {
            let expect_row = e.applied.record.batch;
            let batch_start = result
                .rows
                .iter()
                .position(|r| r.image_id == e.image_id)
                .unwrap();
            assert_eq!(batch_start % 4, expect_row);
        }
    }

    #[test]
    fn replayed_fault_matrix_reproduces_identical_rows() {
        let mut s = Scenario::default();
        s.dataset_size = 4;
        s.injection_target = InjectionTarget::Weights;
        let first = campaign(s.clone()).run_with(&RunConfig::default()).unwrap();
        let replay = campaign(s)
            .with_fault_matrix(first.fault_matrix.clone())
            .run_with(&RunConfig::default())
            .unwrap();
        assert_eq!(first.trace, replay.trace);
        for (a, b) in first.rows.iter().zip(replay.rows.iter()) {
            assert_eq!(a.corr_top5, b.corr_top5);
        }
    }

    #[test]
    fn replayed_matrix_with_wrong_target_is_rejected() {
        let mut s = Scenario::default();
        s.dataset_size = 2;
        s.injection_target = InjectionTarget::Weights;
        let first = campaign(s.clone()).run_with(&RunConfig::default()).unwrap();
        s.injection_target = InjectionTarget::Neurons;
        let err = campaign(s).with_fault_matrix(first.fault_matrix).run_with(&RunConfig::default()).unwrap_err();
        assert!(matches!(err, crate::CoreError::CorruptFile { .. }));
    }

    #[test]
    fn parallel_run_matches_sequential_bit_exactly() {
        let mut s = Scenario::default();
        s.dataset_size = 8;
        s.injection_target = InjectionTarget::Weights;
        s.fault_mode = FaultMode::exponent_bit_flip();
        let sequential = campaign(s.clone()).run_with(&RunConfig::default()).unwrap();
        let parallel = campaign(s).run_with(&RunConfig::new().threads(4)).unwrap();
        assert_eq!(sequential.rows.len(), parallel.rows.len());
        for (a, b) in sequential.rows.iter().zip(parallel.rows.iter()) {
            assert_eq!(a.image_id, b.image_id);
            assert_eq!(a.orig_top5, b.orig_top5);
            assert_eq!(a.corr_top5, b.corr_top5);
            assert_eq!(a.faults, b.faults);
        }
        assert_eq!(sequential.trace, parallel.trace);
        assert_eq!(sequential.fault_matrix, parallel.fault_matrix);
    }

    #[test]
    fn parallel_run_rejects_non_per_image_policy() {
        let mut s = Scenario::default();
        s.dataset_size = 4;
        s.injection_policy = InjectionPolicy::PerEpoch;
        assert!(campaign(s).run_with(&RunConfig::new().threads(2)).is_err());
    }

    #[test]
    fn parallel_run_surfaces_worker_panic_as_error() {
        let mut s = Scenario::default();
        s.dataset_size = 4;
        s.injection_target = InjectionTarget::Weights;
        let mut c = campaign(s);
        // A monitor that blows up mid-forward inside a pool task: the
        // pool must contain the panic and the campaign must report it as
        // an error instead of unwinding through (or poisoning) campaign
        // state. The `in_parallel_task` guard keeps the caller-side
        // shape-inference forward in `resolve_targets` alive.
        let bomb: std::sync::Arc<dyn alfi_nn::graph::ForwardHook> =
            std::sync::Arc::new(|_: &alfi_nn::graph::LayerCtx, _: &mut Tensor| {
                if alfi_pool::in_parallel_task() {
                    panic!("monitor exploded");
                }
            });
        attach_monitor(&mut c.model, bomb).unwrap();
        for threads in [1, 3] {
            // `forced_parallel(1)` keeps the parallel driver (unlike
            // `run_with` with `threads: 1`, which is sequential), so the
            // pool guard still fires — exercised here on purpose.
            let err = crate::campaign::Engine::forced_parallel(&c, threads).unwrap_err();
            match err {
                CoreError::WorkerPanic { message } => {
                    assert!(message.contains("monitor exploded"), "message: {message}")
                }
                other => panic!("expected WorkerPanic, got {other:?}"),
            }
        }
    }

    #[test]
    fn recorder_collects_counters_and_identical_outputs() {
        let mut s = Scenario::default();
        s.dataset_size = 4;
        s.injection_target = InjectionTarget::Weights;
        s.fault_mode = FaultMode::exponent_bit_flip();
        let plain = campaign(s.clone()).run_with(&RunConfig::default()).unwrap();
        let rec = alfi_trace::Recorder::new();
        let traced = campaign(s)
            .run_with(&RunConfig::new().recorder(rec.clone()))
            .unwrap();
        for (a, b) in plain.rows.iter().zip(traced.rows.iter()) {
            assert_eq!(a.corr_top5, b.corr_top5, "tracing must not change results");
        }
        let summary = rec.summary();
        assert_eq!(summary.items, 4);
        assert_eq!(summary.injections, 4);
        assert_eq!(summary.outcomes.total(), 4);
        assert_eq!(summary.meta.as_ref().unwrap().campaign, "classification");
        assert!(summary.phases.contains_key("forward"));
        assert!(!summary.layer_forward.is_empty(), "per-layer forward timings recorded");
    }

    #[test]
    fn campaign_is_deterministic() {
        let mut s = Scenario::default();
        s.dataset_size = 3;
        s.injection_target = InjectionTarget::Weights;
        let a = campaign(s.clone()).run_with(&RunConfig::default()).unwrap();
        let b = campaign(s).run_with(&RunConfig::default()).unwrap();
        assert_eq!(a.rows.len(), b.rows.len());
        for (ra, rb) in a.rows.iter().zip(b.rows.iter()) {
            assert_eq!(ra.corr_top5, rb.corr_top5);
            assert_eq!(ra.faults, rb.faults);
        }
    }
}
