#![warn(missing_docs)]
//! # alfi-core
//!
//! The fault-injection core of ALFI — a Rust reproduction of
//! PyTorchALFI's `alficore` (Gräfe et al., DSN 2023).
//!
//! Pipeline:
//!
//! 1. A [`Scenario`](alfi_scenario::Scenario) (from `default.yml`)
//!    describes the campaign: neuron vs weight faults, fault model, layer
//!    filters, counts and policies.
//! 2. [`matrix`] resolves the model's injectable layers, weights them by
//!    relative size (paper Eq. 1) and pre-generates the full fault matrix
//!    (`n = dataset_size · num_runs · faults_per_image`).
//! 3. [`injector`] arms faults: neuron faults via in-place forward hooks,
//!    weight faults via direct parameter mutation with bit-exact revert.
//!    [`Ptfiwrap`] is the paper's Listing-1 wrapper with
//!    `fimodel_iter()`.
//! 4. [`monitor`] observes NaN/Inf occurrences (DUE) and activation
//!    ranges (mitigation profiling).
//! 5. [`persist`] stores the fault matrix and the applied-fault trace as
//!    versioned, checksummed binary files for exact replay.
//! 6. [`campaign`] runs the high-level `TestErrorModels_*` flows over
//!    classification and detection models.
//! 7. [`artifact`] catalogs the output-file set ([`Artifacts`]) and
//!    streams per-image rows through an [`ArtifactSink`] — CSV or the
//!    columnar `alfi-store` binary, selected per run.
//! 8. [`baseline`] reimplements plain PyTorchFI-style ad-hoc injection as
//!    the efficiency comparator.
//!
//! # Example
//!
//! ```
//! use alfi_core::Ptfiwrap;
//! use alfi_nn::models::{vgg16, ModelConfig};
//! use alfi_scenario::{FaultMode, InjectionTarget, Scenario};
//! use alfi_tensor::Tensor;
//!
//! let cfg = ModelConfig { input_hw: 32, width_mult: 0.0625, ..ModelConfig::default() };
//! let model = vgg16(&cfg);
//! let mut scenario = Scenario::default();
//! scenario.dataset_size = 2;
//! scenario.injection_target = InjectionTarget::Weights;
//! scenario.fault_mode = FaultMode::exponent_bit_flip();
//!
//! let mut wrapper = Ptfiwrap::new(&model, scenario, &cfg.input_dims(1))?;
//! let x = Tensor::ones(&cfg.input_dims(1));
//! for faulty in wrapper.fimodel_iter() {
//!     let orig = model.forward(&x)?;
//!     let corr = faulty.forward(&x)?;
//!     assert_eq!(orig.dims(), corr.dims());
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod artifact;
pub mod baseline;
pub mod campaign;
pub mod error;
pub mod fault;
pub mod fault_model;
pub mod injector;
pub mod matrix;
pub mod monitor;
pub mod persist;
pub mod stats;
pub mod sweep;

pub use artifact::{
    store_to_files, store_to_texts, text_to_store, ArtifactSink, Artifacts, ColumnarSink,
    ReplayReader, SinkStats,
};
pub use error::CoreError;
pub use fault::{AppliedFault, FaultRecord, FaultValue};
pub use fault_model::{pattern_matches, FaultModel, LayerPlan};
pub use campaign::RunConfig;
pub use injector::{
    arm_faults, corrupt_value, injection_event, ArmedFaults, FaultyModel, FimodelIter, Ptfiwrap,
};
pub use matrix::{layer_weights, resolve_targets, FaultMatrix, LayerTarget};
pub use monitor::{attach_monitor, NanInfCounts, NanInfMonitor, RangeMonitor};
pub use sweep::ScenarioSweep;
pub use persist::{
    crc32, decode_fault_matrix, encode_fault_matrix, load_fault_matrix, save_events,
    save_fault_matrix, RunTrace, TraceEntry,
};
