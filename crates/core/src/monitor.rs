//! Run-time monitors: NaN/Inf detection and activation-range recording.
//!
//! PyTorchALFI's alficore offers "monitoring capabilities (enabling the
//! detection of NaN or Inf values and facilitating the integration of
//! custom monitoring)" (§IV-B). Monitors are ordinary forward hooks that
//! observe — never mutate — layer outputs; attach them to every node of a
//! network with [`attach_monitor`].

use alfi_nn::{ForwardHook, HookHandle, LayerCtx, Network, NnError};
use alfi_tensor::Tensor;
use std::sync::Mutex;
use std::sync::Arc;

/// Per-layer NaN/Inf counts observed by a [`NanInfMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NanInfCounts {
    /// NaN elements observed.
    pub nan: usize,
    /// Infinite elements observed.
    pub inf: usize,
}

/// Monitor counting NaN/Inf occurrences per layer — the raw signal behind
/// the DUE (detected uncorrectable error) KPI.
#[derive(Debug, Default)]
pub struct NanInfMonitor {
    counts: Mutex<Vec<(String, NanInfCounts)>>,
}

impl NanInfMonitor {
    /// Creates an idle monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total counts across all layers since the last reset.
    pub fn totals(&self) -> NanInfCounts {
        let guard = self.counts.lock().unwrap();
        let mut total = NanInfCounts::default();
        for (_, c) in guard.iter() {
            total.nan += c.nan;
            total.inf += c.inf;
        }
        total
    }

    /// Per-layer counts `(layer name, counts)` since the last reset,
    /// omitting clean layers.
    pub fn per_layer(&self) -> Vec<(String, NanInfCounts)> {
        self.counts.lock().unwrap().clone()
    }

    /// Whether any non-finite value was observed.
    pub fn any_detected(&self) -> bool {
        let t = self.totals();
        t.nan > 0 || t.inf > 0
    }

    /// Clears all recorded counts.
    pub fn reset(&self) {
        self.counts.lock().unwrap().clear();
    }

    /// Rolls the current totals up into a trace recorder's NaN/Inf
    /// tallies. No-op for a disabled recorder.
    pub fn report_to(&self, recorder: &alfi_trace::Recorder) {
        if recorder.is_enabled() {
            let t = self.totals();
            recorder.record_nonfinite(t.nan as u64, t.inf as u64);
        }
    }
}

impl ForwardHook for NanInfMonitor {
    fn on_output(&self, ctx: &LayerCtx, output: &mut Tensor) {
        let nan = output.count_nan();
        let inf = output.count_inf();
        if nan > 0 || inf > 0 {
            self.counts.lock().unwrap().push((ctx.name.clone(), NanInfCounts { nan, inf }));
        }
    }
}

/// Monitor recording the min/max activation per node — the profiling pass
/// that derives Ranger/Clipper protection bounds.
#[derive(Debug, Default)]
pub struct RangeMonitor {
    ranges: Mutex<std::collections::BTreeMap<usize, (f32, f32)>>,
}

impl RangeMonitor {
    /// Creates an idle monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// The observed `(min, max)` per node id.
    pub fn ranges(&self) -> std::collections::BTreeMap<usize, (f32, f32)> {
        self.ranges.lock().unwrap().clone()
    }

    /// The observed range for one node.
    pub fn range_of(&self, node_id: usize) -> Option<(f32, f32)> {
        self.ranges.lock().unwrap().get(&node_id).copied()
    }

    /// Clears all recorded ranges.
    pub fn reset(&self) {
        self.ranges.lock().unwrap().clear();
    }
}

impl ForwardHook for RangeMonitor {
    fn on_output(&self, ctx: &LayerCtx, output: &mut Tensor) {
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for &v in output.data() {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if lo <= hi {
            let mut guard = self.ranges.lock().unwrap();
            let e = guard.entry(ctx.node_id).or_insert((lo, hi));
            e.0 = e.0.min(lo);
            e.1 = e.1.max(hi);
        }
    }
}

/// Attaches a monitor hook to every node of a network, returning the
/// handles (use them with [`Network::remove_hook`] to detach).
///
/// # Errors
///
/// Propagates hook-registration errors (cannot occur for valid node ids).
pub fn attach_monitor(
    net: &mut Network,
    monitor: Arc<dyn ForwardHook>,
) -> Result<Vec<HookHandle>, NnError> {
    let n = net.num_nodes();
    let mut handles = Vec::with_capacity(n);
    for id in 0..n {
        handles.push(net.register_hook(id, Arc::clone(&monitor))?);
    }
    Ok(handles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_nn::{Layer, Linear};
    use alfi_tensor::Tensor;

    fn net_with_inf() -> Network {
        // Linear with a huge weight so ones-input overflows to inf after
        // squaring via two layers.
        let mut net = Network::new("inf");
        let l1 = Layer::Linear(Linear {
            weight: Tensor::full(&[4, 4], 1.0e30),
            bias: None,
        });
        let a = net.push("fc1", l1, &[]).unwrap();
        let l2 = Layer::Linear(Linear { weight: Tensor::full(&[2, 4], 1.0e30), bias: None });
        let b = net.push("fc2", l2, &[a]).unwrap();
        net.set_output(b).unwrap();
        net
    }

    #[test]
    fn nan_inf_monitor_detects_overflow() {
        let mut net = net_with_inf();
        let monitor = Arc::new(NanInfMonitor::new());
        attach_monitor(&mut net, Arc::<NanInfMonitor>::clone(&monitor) as _).unwrap();
        net.forward(&Tensor::ones(&[1, 4])).unwrap();
        assert!(monitor.any_detected());
        let totals = monitor.totals();
        assert!(totals.inf > 0);
        let layers = monitor.per_layer();
        assert!(layers.iter().any(|(name, _)| name == "fc2"));
        monitor.reset();
        assert!(!monitor.any_detected());
    }

    #[test]
    fn clean_network_reports_nothing() {
        let mut net = Network::new("clean");
        let a = net.push("relu", Layer::Relu, &[]).unwrap();
        net.set_output(a).unwrap();
        let monitor = Arc::new(NanInfMonitor::new());
        attach_monitor(&mut net, Arc::<NanInfMonitor>::clone(&monitor) as _).unwrap();
        net.forward(&Tensor::ones(&[1, 3])).unwrap();
        assert!(!monitor.any_detected());
        assert!(monitor.per_layer().is_empty());
    }

    #[test]
    fn range_monitor_records_min_max_across_passes() {
        let mut net = Network::new("range");
        let a = net.push("id", Layer::Identity, &[]).unwrap();
        net.set_output(a).unwrap();
        let monitor = Arc::new(RangeMonitor::new());
        attach_monitor(&mut net, Arc::<RangeMonitor>::clone(&monitor) as _).unwrap();
        net.forward(&Tensor::from_vec(vec![-1.0, 2.0], &[1, 2]).unwrap()).unwrap();
        net.forward(&Tensor::from_vec(vec![-5.0, 0.5], &[1, 2]).unwrap()).unwrap();
        assert_eq!(monitor.range_of(a), Some((-5.0, 2.0)));
    }

    #[test]
    fn range_monitor_ignores_non_finite_values() {
        let mut net = Network::new("range");
        let a = net.push("id", Layer::Identity, &[]).unwrap();
        net.set_output(a).unwrap();
        let monitor = Arc::new(RangeMonitor::new());
        attach_monitor(&mut net, Arc::<RangeMonitor>::clone(&monitor) as _).unwrap();
        net.forward(&Tensor::from_vec(vec![f32::INFINITY, 1.0, f32::NAN], &[1, 3]).unwrap())
            .unwrap();
        assert_eq!(monitor.range_of(a), Some((1.0, 1.0)));
    }
}
