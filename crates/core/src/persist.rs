//! Binary persistence of fault matrices and run traces.
//!
//! PyTorchALFI stores two binary files per campaign (§IV-B): the
//! pre-generated fault matrix ("the identical set of faults can be
//! utilized across various experiments") and a post-run trace with the
//! original/altered values, bit-flip directions and NaN/Inf monitor
//! counts for every applied fault. Both formats here are versioned,
//! length-prefixed and CRC32-checksummed so that corrupted or truncated
//! files are rejected instead of silently replaying wrong faults.

use crate::error::CoreError;
use crate::fault::{AppliedFault, FaultRecord, FaultValue};
use crate::matrix::FaultMatrix;
use alfi_scenario::InjectionTarget;
use alfi_tensor::bits::FlipDirection;
use std::path::Path;

const FAULT_MAGIC: &[u8; 8] = b"ALFIFLT1";
const TRACE_MAGIC: &[u8; 8] = b"ALFITRC1";
const FORMAT_VERSION: u32 = 1;

pub use alfi_store::crc32;


/// Little-endian write helpers over a plain `Vec<u8>` buffer — the
/// in-tree replacement for the `bytes` crate, emitting byte-identical
/// output.
trait PutExt {
    fn put_u8(&mut self, v: u8);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_f32_le(&mut self, v: f32);
    fn put_slice(&mut self, v: &[u8]);
}

impl PutExt for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, v: &[u8]) {
        self.extend_from_slice(v);
    }
}

/// Little-endian cursor over a byte slice.
///
/// Every `get_*` method is fallible: running past the end of the buffer
/// yields a typed [`CoreError::CorruptFile`] naming the file kind, so a
/// truncated or garbage file surfaces as an error instead of a panic.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
    kind: &'static str,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8], kind: &'static str) -> Self {
        Reader { data, pos: 0, kind }
    }

    fn corrupt(&self, reason: impl Into<String>) -> CoreError {
        CoreError::CorruptFile { kind: self.kind, reason: reason.into() }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// The not-yet-consumed tail (used for checksumming the body).
    fn rest(&self) -> &'a [u8] {
        &self.data[self.pos..]
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CoreError> {
        if self.remaining() < n {
            return Err(self.corrupt(format!(
                "truncated: need {n} more bytes, have {}",
                self.remaining()
            )));
        }
        let chunk = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(chunk)
    }

    fn get_u8(&mut self) -> Result<u8, CoreError> {
        Ok(self.take(1)?[0])
    }

    fn get_u32_le(&mut self) -> Result<u32, CoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap_or([0; 4])))
    }

    fn get_u64_le(&mut self) -> Result<u64, CoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap_or([0; 8])))
    }

    fn get_f32_le(&mut self) -> Result<f32, CoreError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap_or([0; 4])))
    }
}

fn put_record(buf: &mut Vec<u8>, r: &FaultRecord) {
    buf.put_u32_le(r.batch as u32);
    buf.put_u32_le(r.layer as u32);
    buf.put_u32_le(r.channel as u32);
    buf.put_u32_le(r.channel_in as u32);
    match r.depth {
        Some(d) => {
            buf.put_u8(1);
            buf.put_u32_le(d as u32);
        }
        None => {
            buf.put_u8(0);
            buf.put_u32_le(0);
        }
    }
    buf.put_u32_le(r.height as u32);
    buf.put_u32_le(r.width as u32);
    match r.value {
        FaultValue::BitFlip(p) => {
            buf.put_u8(0);
            buf.put_u8(p);
            buf.put_u8(0);
            buf.put_f32_le(0.0);
        }
        FaultValue::StuckAt { pos, high } => {
            buf.put_u8(1);
            buf.put_u8(pos);
            buf.put_u8(u8::from(high));
            buf.put_f32_le(0.0);
        }
        FaultValue::Replace(v) => {
            buf.put_u8(2);
            buf.put_u8(0);
            buf.put_u8(0);
            buf.put_f32_le(v);
        }
        FaultValue::QuantStep { bit, bits, amax } => {
            buf.put_u8(3);
            buf.put_u8(bit);
            buf.put_u8(bits);
            buf.put_f32_le(amax);
        }
    }
}

fn get_record(buf: &mut Reader<'_>) -> Result<FaultRecord, CoreError> {
    let batch = buf.get_u32_le()? as usize;
    let layer = buf.get_u32_le()? as usize;
    let channel = buf.get_u32_le()? as usize;
    let channel_in = buf.get_u32_le()? as usize;
    let has_depth = buf.get_u8()?;
    let depth_v = buf.get_u32_le()? as usize;
    let height = buf.get_u32_le()? as usize;
    let width = buf.get_u32_le()? as usize;
    let tag = buf.get_u8()?;
    let pos = buf.get_u8()?;
    let high = buf.get_u8()?;
    let fval = buf.get_f32_le()?;
    let value = match tag {
        0 => FaultValue::BitFlip(pos),
        1 => FaultValue::StuckAt { pos, high: high != 0 },
        2 => FaultValue::Replace(fval),
        3 => FaultValue::QuantStep { bit: pos, bits: high, amax: fval },
        t => return Err(buf.corrupt(format!("unknown value tag {t}"))),
    };
    Ok(FaultRecord {
        batch,
        layer,
        channel,
        channel_in,
        depth: (has_depth != 0).then_some(depth_v),
        height,
        width,
        value,
    })
}

/// Serializes a fault matrix to its binary wire form.
pub fn encode_fault_matrix(m: &FaultMatrix) -> Vec<u8> {
    let mut body: Vec<u8> = Vec::new();
    body.put_u8(match m.target {
        InjectionTarget::Neurons => 0,
        InjectionTarget::Weights => 1,
    });
    body.put_u32_le(m.faults_per_image as u32);
    body.put_u64_le(m.records.len() as u64);
    for r in &m.records {
        put_record(&mut body, r);
    }
    let mut out: Vec<u8> = Vec::new();
    out.put_slice(FAULT_MAGIC);
    out.put_u32_le(FORMAT_VERSION);
    out.put_u64_le(body.len() as u64);
    out.put_u32_le(crc32(&body));
    out.put_slice(&body);
    out
}

/// Parses a binary fault matrix, validating magic, version, length and
/// checksum.
///
/// # Errors
///
/// Returns [`CoreError::CorruptFile`] for any structural damage.
pub fn decode_fault_matrix(data: &[u8]) -> Result<FaultMatrix, CoreError> {
    let mut buf = Reader::new(data, "fault");
    let magic = buf.take(8)?;
    if magic != FAULT_MAGIC {
        return Err(buf.corrupt("bad magic"));
    }
    let version = buf.get_u32_le()?;
    if version != FORMAT_VERSION {
        return Err(buf.corrupt(format!("unsupported version {version}")));
    }
    let body_len = buf.get_u64_le()? as usize;
    let checksum = buf.get_u32_le()?;
    if buf.remaining() != body_len {
        return Err(buf.corrupt(format!(
            "body length mismatch: header says {body_len}, got {}",
            buf.remaining()
        )));
    }
    if crc32(buf.rest()) != checksum {
        return Err(buf.corrupt("checksum mismatch"));
    }
    let target = match buf.get_u8()? {
        0 => InjectionTarget::Neurons,
        1 => InjectionTarget::Weights,
        t => return Err(buf.corrupt(format!("unknown target tag {t}"))),
    };
    let faults_per_image = buf.get_u32_le()? as usize;
    let n = buf.get_u64_le()? as usize;
    let mut records = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        records.push(get_record(&mut buf)?);
    }
    if buf.has_remaining() {
        return Err(buf.corrupt("trailing bytes"));
    }
    Ok(FaultMatrix { records, target, faults_per_image })
}

/// Writes a fault matrix to a file.
///
/// # Errors
///
/// Returns [`CoreError::Io`] on filesystem failure.
pub fn save_fault_matrix(m: &FaultMatrix, path: impl AsRef<Path>) -> Result<(), CoreError> {
    std::fs::write(path.as_ref(), encode_fault_matrix(m))?;
    Ok(())
}

/// Reads and validates a fault matrix from a file.
///
/// # Errors
///
/// Returns [`CoreError::Io`] on filesystem failure or
/// [`CoreError::CorruptFile`] on validation failure.
pub fn load_fault_matrix(path: impl AsRef<Path>) -> Result<FaultMatrix, CoreError> {
    let data = std::fs::read(path.as_ref())?;
    decode_fault_matrix(&data)
}

/// Writes a recorder's JSONL event log as `events.jsonl` into `dir` —
/// the observability companion of the paper's three output sets. No-op
/// (and no file) for a disabled recorder.
///
/// # Errors
///
/// Returns [`CoreError::Io`] on filesystem failure.
pub fn save_events(recorder: &alfi_trace::Recorder, dir: impl AsRef<Path>) -> Result<(), CoreError> {
    if !recorder.is_enabled() {
        return Ok(());
    }
    std::fs::create_dir_all(dir.as_ref())?;
    recorder.write_events(dir.as_ref().join(alfi_trace::EVENTS_FILE))?;
    Ok(())
}

/// Writes a Prometheus-text snapshot of a metrics registry as
/// `metrics.prom` into `dir` — the file form of the live `/metrics`
/// endpoint, so a run's final counters survive the process. No-op (and
/// no file) when no registry was attached to the run.
///
/// # Errors
///
/// Returns [`CoreError::Io`] on filesystem failure.
pub fn save_metrics(
    registry: Option<&alfi_metrics::Registry>,
    dir: impl AsRef<Path>,
) -> Result<(), CoreError> {
    if let Some(registry) = registry {
        alfi_metrics::write_snapshot(registry, dir.as_ref())?;
    }
    Ok(())
}

/// One trace entry: what actually happened when a fault was applied
/// during inference, plus the per-inference NaN/Inf monitor counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// Image id (from the dataset record) the fault was active for.
    pub image_id: u64,
    /// The application outcome (location, original/corrupted values,
    /// flip direction).
    pub applied: AppliedFault,
    /// NaN values observed in the model output for this inference.
    pub output_nan_count: u32,
    /// Infinite values observed in the model output for this inference.
    pub output_inf_count: u32,
}

/// A full run trace — the paper's "second binary file ... generated after
/// the fault injection experiment".
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunTrace {
    /// All applied-fault entries in application order.
    pub entries: Vec<TraceEntry>,
}

impl RunTrace {
    /// Serializes the trace to its binary wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut body: Vec<u8> = Vec::new();
        body.put_u64_le(self.entries.len() as u64);
        for e in &self.entries {
            body.put_u64_le(e.image_id);
            put_record(&mut body, &e.applied.record);
            body.put_f32_le(e.applied.original);
            body.put_f32_le(e.applied.corrupted);
            body.put_u8(match e.applied.direction {
                None => 0,
                Some(FlipDirection::ZeroToOne) => 1,
                Some(FlipDirection::OneToZero) => 2,
            });
            body.put_u32_le(e.output_nan_count);
            body.put_u32_le(e.output_inf_count);
        }
        let mut out: Vec<u8> = Vec::new();
        out.put_slice(TRACE_MAGIC);
        out.put_u32_le(FORMAT_VERSION);
        out.put_u64_le(body.len() as u64);
        out.put_u32_le(crc32(&body));
        out.put_slice(&body);
        out
    }

    /// Parses and validates a binary trace.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CorruptFile`] for any structural damage.
    pub fn decode(data: &[u8]) -> Result<RunTrace, CoreError> {
        let mut buf = Reader::new(data, "trace");
        let magic = buf.take(8)?;
        if magic != TRACE_MAGIC {
            return Err(buf.corrupt("bad magic"));
        }
        let version = buf.get_u32_le()?;
        if version != FORMAT_VERSION {
            return Err(buf.corrupt(format!("unsupported version {version}")));
        }
        let body_len = buf.get_u64_le()? as usize;
        let checksum = buf.get_u32_le()?;
        if buf.remaining() != body_len {
            return Err(buf.corrupt("body length mismatch"));
        }
        if crc32(buf.rest()) != checksum {
            return Err(buf.corrupt("checksum mismatch"));
        }
        let n = buf.get_u64_le()? as usize;
        let mut entries = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let image_id = buf.get_u64_le()?;
            let record = get_record(&mut buf)?;
            let original = buf.get_f32_le()?;
            let corrupted = buf.get_f32_le()?;
            let direction = match buf.get_u8()? {
                0 => None,
                1 => Some(FlipDirection::ZeroToOne),
                2 => Some(FlipDirection::OneToZero),
                t => return Err(buf.corrupt(format!("unknown direction tag {t}"))),
            };
            let output_nan_count = buf.get_u32_le()?;
            let output_inf_count = buf.get_u32_le()?;
            entries.push(TraceEntry {
                image_id,
                applied: AppliedFault { record, original, corrupted, direction },
                output_nan_count,
                output_inf_count,
            });
        }
        if buf.has_remaining() {
            return Err(buf.corrupt("trailing bytes"));
        }
        Ok(RunTrace { entries })
    }

    /// Writes the trace to a file.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CoreError> {
        std::fs::write(path.as_ref(), self.encode())?;
        Ok(())
    }

    /// Reads and validates a trace from a file.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] or [`CoreError::CorruptFile`].
    pub fn load(path: impl AsRef<Path>) -> Result<RunTrace, CoreError> {
        let data = std::fs::read(path.as_ref())?;
        RunTrace::decode(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> FaultMatrix {
        FaultMatrix {
            records: vec![
                FaultRecord {
                    batch: 0,
                    layer: 3,
                    channel: 5,
                    channel_in: 2,
                    depth: None,
                    height: 1,
                    width: 2,
                    value: FaultValue::BitFlip(30),
                },
                FaultRecord {
                    batch: 1,
                    layer: 0,
                    channel: 0,
                    channel_in: 0,
                    depth: Some(4),
                    height: 0,
                    width: 7,
                    value: FaultValue::StuckAt { pos: 23, high: false },
                },
                FaultRecord {
                    batch: 2,
                    layer: 7,
                    channel: 9,
                    channel_in: 0,
                    depth: None,
                    height: 0,
                    width: 0,
                    value: FaultValue::Replace(-123.5),
                },
                FaultRecord {
                    batch: 3,
                    layer: 2,
                    channel: 1,
                    channel_in: 4,
                    depth: None,
                    height: 2,
                    width: 6,
                    value: FaultValue::QuantStep { bit: 6, bits: 8, amax: 4.0 },
                },
            ],
            target: InjectionTarget::Weights,
            faults_per_image: 3,
        }
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn fault_matrix_round_trips() {
        let m = sample_matrix();
        let bytes = encode_fault_matrix(&m);
        let back = decode_fault_matrix(&bytes).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn bitflip_in_file_is_detected() {
        let m = sample_matrix();
        let mut bytes = encode_fault_matrix(&m);
        // corrupt one body byte
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let err = decode_fault_matrix(&bytes).unwrap_err();
        assert!(matches!(err, CoreError::CorruptFile { kind: "fault", .. }));
    }

    #[test]
    fn truncation_is_detected() {
        let m = sample_matrix();
        let bytes = encode_fault_matrix(&m);
        for cut in [0, 10, bytes.len() - 5] {
            assert!(decode_fault_matrix(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let m = sample_matrix();
        let mut bytes = encode_fault_matrix(&m);
        bytes[0] = b'X';
        assert!(decode_fault_matrix(&bytes).is_err());
        let mut bytes = encode_fault_matrix(&m);
        bytes[8] = 99; // version
        assert!(decode_fault_matrix(&bytes).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("alfi_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("faults.bin");
        let m = sample_matrix();
        save_fault_matrix(&m, &path).unwrap();
        assert_eq!(load_fault_matrix(&path).unwrap(), m);
        assert!(load_fault_matrix(dir.join("missing.bin")).is_err());
    }

    #[test]
    fn trace_round_trips_with_all_directions() {
        let m = sample_matrix();
        let trace = RunTrace {
            entries: vec![
                TraceEntry {
                    image_id: 42,
                    applied: AppliedFault {
                        record: m.records[0],
                        original: 1.5,
                        corrupted: 3.0e38,
                        direction: Some(FlipDirection::ZeroToOne),
                    },
                    output_nan_count: 0,
                    output_inf_count: 2,
                },
                TraceEntry {
                    image_id: 43,
                    applied: AppliedFault {
                        record: m.records[2],
                        original: -0.25,
                        corrupted: -123.5,
                        direction: None,
                    },
                    output_nan_count: 1,
                    output_inf_count: 0,
                },
            ],
        };
        let back = RunTrace::decode(&trace.encode()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn trace_corruption_is_detected() {
        let trace = RunTrace { entries: vec![] };
        let mut bytes = trace.encode();
        bytes[9] ^= 1; // version field
        assert!(RunTrace::decode(&bytes).is_err());
        // fault magic is not trace magic
        let m = sample_matrix();
        assert!(RunTrace::decode(&encode_fault_matrix(&m)).is_err());
    }

    #[test]
    fn empty_matrix_and_trace_round_trip() {
        let m = FaultMatrix {
            records: vec![],
            target: InjectionTarget::Neurons,
            faults_per_image: 1,
        };
        assert_eq!(decode_fault_matrix(&encode_fault_matrix(&m)).unwrap(), m);
        let t = RunTrace::default();
        assert_eq!(RunTrace::decode(&t.encode()).unwrap(), t);
    }
}
