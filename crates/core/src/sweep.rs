//! Scenario sweeps — programmatic generation of the iterative
//! experiment series of §V-D ("iterating through layers ... faults per
//! image or bit position ... a change between neuron and weight faults
//! is equally possible. This method allows the efficient setup of fault
//! injection scenarios without manual reconfiguration").
//!
//! A [`ScenarioSweep`] takes a base scenario and derives one scenario
//! per sweep point; feed each into [`crate::Ptfiwrap::set_scenario`] or
//! a fresh campaign driven through
//! [`run_with`](crate::campaign::ImgClassCampaign::run_with) to run the
//! series — every sweep point goes through the same shared campaign
//! [`Engine`](crate::campaign::Engine), whatever the policy or thread
//! count.

use alfi_scenario::{FaultCount, FaultMode, InjectionTarget, Scenario};

/// Derives families of scenarios from a base configuration.
#[derive(Debug, Clone)]
pub struct ScenarioSweep {
    base: Scenario,
}

impl ScenarioSweep {
    /// Creates a sweep generator around a base scenario.
    pub fn new(base: Scenario) -> Self {
        ScenarioSweep { base }
    }

    /// The base scenario.
    pub fn base(&self) -> &Scenario {
        &self.base
    }

    /// One scenario per injectable layer `0..num_layers`, each pinning
    /// `layer_range` to that single layer (weighted selection disabled —
    /// the point of the sweep is uniform per-layer attention).
    pub fn over_layers(&self, num_layers: usize) -> Vec<Scenario> {
        (0..num_layers)
            .map(|layer| {
                let mut s = self.base.clone();
                s.layer_range = Some((layer, layer));
                s.weighted_layer_selection = false;
                s
            })
            .collect()
    }

    /// One scenario per bit position in `bits`, each restricting the
    /// flip range to that single bit.
    pub fn over_bit_positions(&self, bits: impl IntoIterator<Item = u8>) -> Vec<Scenario> {
        bits.into_iter()
            .map(|bit| {
                let mut s = self.base.clone();
                s.fault_mode = FaultMode::BitFlip { bit_range: (bit, bit) };
                s
            })
            .collect()
    }

    /// One scenario per simultaneous-fault count.
    pub fn over_fault_counts(&self, counts: impl IntoIterator<Item = usize>) -> Vec<Scenario> {
        counts
            .into_iter()
            .map(|k| {
                let mut s = self.base.clone();
                s.faults_per_image = FaultCount::Fixed(k);
                s
            })
            .collect()
    }

    /// The neuron/weight pair of scenarios (use case 2c).
    pub fn over_targets(&self) -> [Scenario; 2] {
        let mut weights = self.base.clone();
        weights.injection_target = InjectionTarget::Weights;
        let mut neurons = self.base.clone();
        neurons.injection_target = InjectionTarget::Neurons;
        [weights, neurons]
    }

    /// One scenario per seed — for repeating a campaign across
    /// independent fault draws to tighten confidence intervals.
    pub fn over_seeds(&self, seeds: impl IntoIterator<Item = u64>) -> Vec<Scenario> {
        seeds
            .into_iter()
            .map(|seed| {
                let mut s = self.base.clone();
                s.seed = seed;
                s
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ptfiwrap;
    use alfi_nn::models::{alexnet, ModelConfig};

    fn base() -> Scenario {
        let mut s = Scenario::default();
        s.dataset_size = 3;
        s.injection_target = InjectionTarget::Weights;
        s
    }

    #[test]
    fn layer_sweep_pins_each_layer() {
        let sweep = ScenarioSweep::new(base());
        let scenarios = sweep.over_layers(5);
        assert_eq!(scenarios.len(), 5);
        for (i, s) in scenarios.iter().enumerate() {
            assert_eq!(s.layer_range, Some((i, i)));
            assert!(!s.weighted_layer_selection);
            assert_eq!(s.dataset_size, 3, "other fields untouched");
        }
    }

    #[test]
    fn bit_sweep_restricts_flip_range() {
        let sweep = ScenarioSweep::new(base());
        let scenarios = sweep.over_bit_positions([0u8, 23, 31]);
        assert_eq!(scenarios.len(), 3);
        assert_eq!(scenarios[1].fault_mode, FaultMode::BitFlip { bit_range: (23, 23) });
    }

    #[test]
    fn count_sweep_sets_fixed_counts() {
        let sweep = ScenarioSweep::new(base());
        let scenarios = sweep.over_fault_counts([1usize, 10, 100]);
        assert_eq!(scenarios[2].faults_per_image, FaultCount::Fixed(100));
    }

    #[test]
    fn target_pair_covers_both() {
        let [w, n] = ScenarioSweep::new(base()).over_targets();
        assert_eq!(w.injection_target, InjectionTarget::Weights);
        assert_eq!(n.injection_target, InjectionTarget::Neurons);
    }

    #[test]
    fn seed_sweep_changes_only_the_seed() {
        let scenarios = ScenarioSweep::new(base()).over_seeds([7u64, 8]);
        assert_eq!(scenarios[0].seed, 7);
        assert_eq!(scenarios[1].seed, 8);
        assert_eq!(scenarios[0].fault_mode, scenarios[1].fault_mode);
    }

    #[test]
    fn sweep_scenarios_drive_campaigns_through_run_with() {
        use crate::campaign::{ImgClassCampaign, RunConfig};
        use alfi_datasets::classification::ClassificationDataset;
        use alfi_datasets::loader::ClassificationLoader;
        let cfg = ModelConfig { input_hw: 16, width_mult: 0.0625, ..ModelConfig::default() };
        for s in ScenarioSweep::new(base()).over_bit_positions([0u8, 30]) {
            let ds = ClassificationDataset::new(s.dataset_size, cfg.num_classes, 3, 16, 5);
            let loader = ClassificationLoader::new(ds, s.batch_size);
            let result = ImgClassCampaign::new(alexnet(&cfg), s, loader)
                .run_with(&RunConfig::default())
                .unwrap();
            assert_eq!(result.rows.len(), 3);
        }
    }

    #[test]
    fn sweep_scenarios_drive_set_scenario_without_manual_reconfig() {
        let cfg = ModelConfig { input_hw: 16, width_mult: 0.0625, ..ModelConfig::default() };
        let model = alexnet(&cfg);
        let mut wrapper = Ptfiwrap::new(&model, base(), &cfg.input_dims(1)).unwrap();
        let num_layers = wrapper.targets().len();
        for s in ScenarioSweep::new(base()).over_layers(num_layers) {
            wrapper.set_scenario(s).unwrap();
            assert_eq!(wrapper.targets().len(), 1);
            assert_eq!(wrapper.remaining_slots(), 3);
        }
    }
}
