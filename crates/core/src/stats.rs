//! Deterministic binomial confidence-interval math for early stopping.
//!
//! The engine's [`StopPolicy`](alfi_scenario::StopPolicy) evaluation and
//! `alfi-eval`'s [`Rate`](../../alfi_eval/stats/struct.Rate.html) both
//! need binomial interval estimates. The math lives here (rather than in
//! `alfi-eval`, which depends on this crate) so the engine can consume
//! it without a dependency cycle; `alfi-eval::stats` re-exports it.
//!
//! Two interval families are provided:
//!
//! * [`wilson_interval`] — the Wilson score interval. Cheap, good
//!   coverage for mid-range rates, and the historical default behind
//!   `Rate::with_confidence`.
//! * [`clopper_pearson_interval`] — the exact (conservative) interval
//!   built from the inverse regularized incomplete beta function. Never
//!   undercovers, which matters for the near-0/near-1 SDC/DUE rates FI
//!   campaigns actually observe.
//!
//! Everything here is pure `f64` arithmetic over `std` — no tables, no
//! platform intrinsics — so results are bit-identical across runs and
//! thread counts, a prerequisite for golden-pinned stop decisions.

/// A closed confidence interval on a binomial proportion, clamped to
/// `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinomialCi {
    /// Lower bound (exactly `0.0` when `hits == 0`).
    pub low: f64,
    /// Upper bound (exactly `1.0` when `hits == total`).
    pub high: f64,
}

impl BinomialCi {
    /// Half the interval width — the "±" precision the campaign targets.
    pub fn half_width(&self) -> f64 {
        (self.high - self.low) / 2.0
    }
}

/// Wilson score interval for `hits` successes in `total` trials at
/// z-score `z`.
///
/// Boundary behaviour (the edge cases the old normal approximation got
/// wrong): `total == 0` yields the vacuous `[0, 1]`; `hits == 0` pins
/// the lower bound to exactly `0.0`; `hits >= total` pins the upper
/// bound to exactly `1.0`. Bounds are always ordered and inside
/// `[0, 1]`, and `hits > total` is clamped rather than producing NaN.
pub fn wilson_interval(hits: usize, total: usize, z: f64) -> BinomialCi {
    if total == 0 {
        return BinomialCi { low: 0.0, high: 1.0 };
    }
    let hits = hits.min(total);
    let n = total as f64;
    let p = hits as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).max(0.0).sqrt();
    let mut low = (center - half).clamp(0.0, 1.0);
    let mut high = (center + half).clamp(0.0, 1.0);
    if hits == 0 {
        low = 0.0;
    }
    if hits == total {
        high = 1.0;
    }
    BinomialCi { low: low.min(high), high: high.max(low) }
}

/// Clopper-Pearson ("exact") interval for `hits` successes in `total`
/// trials at the given two-sided confidence level (e.g. `0.95`).
///
/// Computed from the inverse regularized incomplete beta function:
/// `low = BetaInv(α/2; hits, total-hits+1)` and
/// `high = BetaInv(1-α/2; hits+1, total-hits)`, with the conventional
/// exact boundaries `low = 0` when `hits == 0` and `high = 1` when
/// `hits == total`. `total == 0` yields `[0, 1]`.
pub fn clopper_pearson_interval(hits: usize, total: usize, confidence: f64) -> BinomialCi {
    if total == 0 {
        return BinomialCi { low: 0.0, high: 1.0 };
    }
    let hits = hits.min(total);
    let alpha = (1.0 - confidence).clamp(1e-12, 1.0);
    let (h, n) = (hits as f64, total as f64);
    let low = if hits == 0 { 0.0 } else { inv_reg_beta(alpha / 2.0, h, n - h + 1.0) };
    let high = if hits == total { 1.0 } else { inv_reg_beta(1.0 - alpha / 2.0, h + 1.0, n - h) };
    let low = low.clamp(0.0, 1.0);
    let high = high.clamp(0.0, 1.0);
    BinomialCi { low: low.min(high), high: high.max(low) }
}

/// Two-sided z-score for a confidence level, e.g. `0.95 → 1.95996…`.
///
/// `z = Φ⁻¹((1 + confidence) / 2)` via Acklam's rational approximation
/// of the inverse normal CDF (relative error < 1.2e-9 — far below the
/// interval widths it feeds). Inputs are clamped to `(0, 1)`.
pub fn z_for_confidence(confidence: f64) -> f64 {
    inv_norm_cdf((1.0 + confidence.clamp(1e-12, 1.0 - 1e-12)) / 2.0)
}

/// Acklam's inverse normal CDF approximation.
fn inv_norm_cdf(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    let p = p.clamp(1e-300, 1.0 - 1e-16);
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Natural log of the gamma function (Lanczos, g = 7, 9 coefficients).
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps the approximation in its valid range.
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = G[0];
        let t = x + 7.5;
        for (i, &g) in G.iter().enumerate().skip(1) {
            a += g / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Regularized incomplete beta function `I_x(a, b)` via the standard
/// continued-fraction expansion (fixed iteration cap, deterministic).
fn reg_beta(x: f64, a: f64, b: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(x, a, b) / a
    } else {
        1.0 - front * beta_cf(1.0 - x, b, a) / b
    }
}

/// Lentz continued fraction for the incomplete beta function.
fn beta_cf(x: f64, a: f64, b: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-16;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Inverse of [`reg_beta`] in `x` by bisection — slower than Newton but
/// unconditionally convergent and bit-deterministic (fixed 200 steps,
/// enough to exhaust `f64` precision on `[0, 1]`).
fn inv_reg_beta(p: f64, a: f64, b: f64) -> f64 {
    if p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return 1.0;
    }
    let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break;
        }
        if reg_beta(mid, a, b) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_matches_standard_quantiles() {
        assert!((z_for_confidence(0.95) - 1.959964).abs() < 1e-5);
        assert!((z_for_confidence(0.99) - 2.575829).abs() < 1e-5);
        assert!((z_for_confidence(0.90) - 1.644854).abs() < 1e-5);
    }

    #[test]
    fn wilson_known_value() {
        // 10/100 at 95%: approx [0.0552, 0.1744]
        let ci = wilson_interval(10, 100, 1.959964);
        assert!((ci.low - 0.0552).abs() < 0.002, "low {}", ci.low);
        assert!((ci.high - 0.1744).abs() < 0.002, "high {}", ci.high);
    }

    #[test]
    fn wilson_boundaries_are_exact() {
        assert_eq!(wilson_interval(0, 0, 1.96), BinomialCi { low: 0.0, high: 1.0 });
        let zero = wilson_interval(0, 40, 1.96);
        assert_eq!(zero.low, 0.0);
        assert!(zero.high > 0.0 && zero.high < 0.15);
        let full = wilson_interval(40, 40, 1.96);
        assert_eq!(full.high, 1.0);
        assert!(full.low > 0.85 && full.low < 1.0);
        // Over-count clamps instead of producing NaN.
        let over = wilson_interval(50, 40, 1.96);
        assert_eq!(over.high, 1.0);
        assert!(over.low.is_finite());
    }

    #[test]
    fn clopper_pearson_known_value() {
        // 10/100 at 95%: exact interval approx [0.0490, 0.1762]
        let ci = clopper_pearson_interval(10, 100, 0.95);
        assert!((ci.low - 0.0490).abs() < 0.001, "low {}", ci.low);
        assert!((ci.high - 0.1762).abs() < 0.001, "high {}", ci.high);
    }

    #[test]
    fn clopper_pearson_boundaries_are_exact() {
        assert_eq!(clopper_pearson_interval(0, 0, 0.95), BinomialCi { low: 0.0, high: 1.0 });
        let zero = clopper_pearson_interval(0, 50, 0.95);
        assert_eq!(zero.low, 0.0);
        // Rule of three: upper ≈ 1 - (α/2)^(1/n) = 0.0711 for n = 50.
        assert!((zero.high - 0.0711).abs() < 0.001, "high {}", zero.high);
        let full = clopper_pearson_interval(50, 50, 0.95);
        assert_eq!(full.high, 1.0);
        assert!((full.low - 0.9289).abs() < 0.001, "low {}", full.low);
    }

    #[test]
    fn clopper_pearson_contains_wilson_at_moderate_rates() {
        // Spot checks only: the conservative CP interval typically
        // envelops the Wilson approximation at moderate rates. This is
        // NOT a theorem — at extreme rates either interval can be
        // tighter on one side — so the general property suite asserts
        // CP's exact-coverage guarantee instead of containment.
        let z = z_for_confidence(0.95);
        for &(hits, total) in &[(1usize, 20usize), (5, 40), (13, 64), (99, 200), (250, 256)] {
            let w = wilson_interval(hits, total, z);
            let cp = clopper_pearson_interval(hits, total, 0.95);
            assert!(cp.low <= w.low + 1e-9, "{hits}/{total}: cp.low {} w.low {}", cp.low, w.low);
            assert!(
                cp.high >= w.high - 1e-9,
                "{hits}/{total}: cp.high {} w.high {}",
                cp.high,
                w.high
            );
        }
    }

    #[test]
    fn half_width_shrinks_with_sample_size() {
        let mut prev = f64::INFINITY;
        for scale in [1usize, 2, 4, 8, 16] {
            let ci = clopper_pearson_interval(10 * scale, 100 * scale, 0.95);
            assert!(ci.half_width() < prev);
            prev = ci.half_width();
        }
    }

    #[test]
    fn reg_beta_matches_closed_forms() {
        // I_x(1, b) = 1 - (1-x)^b
        for &(x, b) in &[(0.1f64, 5.0f64), (0.5, 2.0), (0.9, 7.0)] {
            let expect = 1.0 - (1.0 - x).powf(b);
            assert!((reg_beta(x, 1.0, b) - expect).abs() < 1e-12);
        }
        // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a)
        let v = reg_beta(0.3, 4.0, 9.0) + reg_beta(0.7, 9.0, 4.0);
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn determinism_across_calls() {
        let a = clopper_pearson_interval(37, 211, 0.97);
        let b = clopper_pearson_interval(37, 211, 0.97);
        assert_eq!(a.low.to_bits(), b.low.to_bits());
        assert_eq!(a.high.to_bits(), b.high.to_bits());
    }
}
