//! Error type for the fault-injection core.

use alfi_nn::NnError;
use alfi_scenario::ScenarioError;
use alfi_store::StoreError;
use std::fmt;

/// Error produced by fault generation, injection or persistence.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An underlying network operation failed.
    Nn(NnError),
    /// The scenario was malformed or inconsistent with the model.
    Scenario(ScenarioError),
    /// The scenario selects no injectable layers for this model
    /// (type filter and layer range exclude everything).
    NoInjectableLayers,
    /// A fault record references coordinates outside the target tensor.
    FaultOutOfBounds {
        /// Description of the offending record.
        detail: String,
    },
    /// A persisted fault or trace file failed validation.
    CorruptFile {
        /// Which file kind failed (`fault` / `trace`).
        kind: &'static str,
        /// Description of the problem.
        reason: String,
    },
    /// File I/O failed.
    Io(String),
    /// The columnar result store reported an error (I/O, corruption or
    /// a row that does not match the campaign's schema).
    Store(StoreError),
    /// The fault matrix is exhausted (more models requested than faults
    /// pre-generated).
    MatrixExhausted,
    /// A parallel campaign worker panicked; the panic was contained by
    /// the thread pool and surfaced as an error instead of unwinding
    /// through (or double-panicking in) the campaign driver.
    WorkerPanic {
        /// The captured panic message.
        message: String,
    },
    /// The requested operation is not supported by this configuration
    /// (e.g. a parallel campaign over a detector that cannot be
    /// cloned).
    Unsupported {
        /// Why the operation is unavailable.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Nn(e) => write!(f, "network error: {e}"),
            CoreError::Scenario(e) => write!(f, "{e}"),
            CoreError::NoInjectableLayers => {
                f.write_str("scenario selects no injectable layers in this model")
            }
            CoreError::FaultOutOfBounds { detail } => {
                write!(f, "fault location out of bounds: {detail}")
            }
            CoreError::CorruptFile { kind, reason } => {
                write!(f, "corrupt {kind} file: {reason}")
            }
            CoreError::Io(msg) => write!(f, "i/o error: {msg}"),
            CoreError::Store(e) => write!(f, "result store error: {e}"),
            CoreError::MatrixExhausted => {
                f.write_str("fault matrix exhausted: no pre-generated faults remain")
            }
            CoreError::WorkerPanic { message } => {
                write!(f, "campaign worker panicked: {message}")
            }
            CoreError::Unsupported { reason } => write!(f, "unsupported operation: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Nn(e) => Some(e),
            CoreError::Scenario(e) => Some(e),
            CoreError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Nn(e)
    }
}

impl From<ScenarioError> for CoreError {
    fn from(e: ScenarioError) -> Self {
        CoreError::Scenario(e)
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io(e.to_string())
    }
}

impl From<StoreError> for CoreError {
    fn from(e: StoreError) -> Self {
        CoreError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CoreError::MatrixExhausted.to_string().contains("exhausted"));
        assert!(CoreError::NoInjectableLayers.to_string().contains("injectable"));
        let e = CoreError::CorruptFile { kind: "fault", reason: "bad checksum".into() };
        assert!(e.to_string().contains("fault") && e.to_string().contains("checksum"));
    }

    #[test]
    fn sources_are_chained() {
        let e = CoreError::from(NnError::NoSuchNode(1));
        assert!(std::error::Error::source(&e).is_some());
    }
}
