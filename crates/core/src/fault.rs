//! Fault records — the columns of the paper's fault matrix (Table I).
//!
//! Each pre-generated fault is one column of a conceptual matrix whose
//! rows are: batch, layer, channel, (depth,) height, width, value. For
//! weight faults the channel row splits into output and input channel
//! ("the first row denotes the layer index, and the second and third rows
//! specify the weight's output and input channel", §IV-B).

use alfi_tensor::bits::FlipDirection;

/// The corruption applied at a fault location (Table I row 7: "either a
/// number or the index of bit position").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultValue {
    /// Flip the bit at this position.
    BitFlip(u8),
    /// Force the bit at this position to a fixed level (stuck-at).
    StuckAt {
        /// Bit position.
        pos: u8,
        /// `true` = stuck-at-1.
        high: bool,
    },
    /// Replace the value outright.
    Replace(f32),
}

/// A single pre-generated fault location + value: one column of the
/// fault matrix.
///
/// Coordinate semantics depend on the injection target:
///
/// * **Neuron faults** address the *output tensor* of a layer:
///   `(batch, channel, [depth,] height, width)`, or `(batch, width)` for
///   linear-layer outputs (`channel`, `height` zero).
/// * **Weight faults** address the *weight tensor*:
///   `(channel_out, channel_in, [depth,] height, width)` for
///   convolutions and `(channel_out, width)` for linear weights; `batch`
///   is the image index the fault scope is associated with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRecord {
    /// Table I row 1: image index within a batch (neuron faults) or the
    /// image slot the fault is associated with (weight faults).
    pub batch: usize,
    /// Table I row 2: index into the model's injectable-layer list.
    pub layer: usize,
    /// Table I row 3: channel (neurons) or output channel (weights).
    pub channel: usize,
    /// Weight faults only: input channel (the paper's third row for
    /// weight injection). `0` for neuron faults.
    pub channel_in: usize,
    /// Table I row 4: depth index for conv3d tensors; `None` elsewhere.
    pub depth: Option<usize>,
    /// Table I row 5: y position.
    pub height: usize,
    /// Table I row 6: x position.
    pub width: usize,
    /// Table I row 7: the corruption.
    pub value: FaultValue,
}

impl FaultRecord {
    /// The conceptual Table I column as `[batch, layer, channel, depth,
    /// height, width, value-tag]` with `usize::MAX` marking an absent
    /// depth. Used by tests asserting the matrix layout and by the
    /// human-readable dump.
    pub fn as_column(&self) -> [usize; 7] {
        [
            self.batch,
            self.layer,
            self.channel,
            self.depth.unwrap_or(usize::MAX),
            self.height,
            self.width,
            match self.value {
                FaultValue::BitFlip(p) => p as usize,
                FaultValue::StuckAt { pos, .. } => pos as usize,
                FaultValue::Replace(_) => usize::MAX,
            },
        ]
    }
}

/// The outcome of actually applying one fault during a run — the paper's
/// second binary output file records "the fault locations and the
/// original and altered values of the neuron/weight before and after the
/// fault injection run" plus monitored NaN/Inf information.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppliedFault {
    /// The fault that was applied.
    pub record: FaultRecord,
    /// Value before corruption.
    pub original: f32,
    /// Value after corruption.
    pub corrupted: f32,
    /// Bit-flip direction, when the fault was a bit flip.
    pub direction: Option<FlipDirection>,
}

impl AppliedFault {
    /// Whether the corruption produced a non-finite value (a DUE
    /// precursor).
    pub fn is_non_finite(&self) -> bool {
        !self.corrupted.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> FaultRecord {
        FaultRecord {
            batch: 1,
            layer: 4,
            channel: 7,
            channel_in: 2,
            depth: None,
            height: 3,
            width: 9,
            value: FaultValue::BitFlip(30),
        }
    }

    #[test]
    fn column_layout_matches_table_i() {
        let c = record().as_column();
        assert_eq!(c[0], 1); // batch
        assert_eq!(c[1], 4); // layer
        assert_eq!(c[2], 7); // channel
        assert_eq!(c[3], usize::MAX); // no depth (not conv3d)
        assert_eq!(c[4], 3); // height
        assert_eq!(c[5], 9); // width
        assert_eq!(c[6], 30); // bit position
    }

    #[test]
    fn conv3d_column_carries_depth() {
        let mut r = record();
        r.depth = Some(5);
        assert_eq!(r.as_column()[3], 5);
    }

    #[test]
    fn replace_value_has_sentinel_tag() {
        let mut r = record();
        r.value = FaultValue::Replace(3.5);
        assert_eq!(r.as_column()[6], usize::MAX);
    }

    #[test]
    fn applied_fault_flags_non_finite() {
        let a = AppliedFault {
            record: record(),
            original: 1.0,
            corrupted: f32::INFINITY,
            direction: Some(FlipDirection::ZeroToOne),
        };
        assert!(a.is_non_finite());
        let b = AppliedFault { corrupted: 2.0, ..a };
        assert!(!b.is_non_finite());
    }
}
