//! Fault records — the columns of the paper's fault matrix (Table I).
//!
//! Each pre-generated fault is one column of a conceptual matrix whose
//! rows are: batch, layer, channel, (depth,) height, width, value. For
//! weight faults the channel row splits into output and input channel
//! ("the first row denotes the layer index, and the second and third rows
//! specify the weight's output and input channel", §IV-B).

use alfi_tensor::bits::FlipDirection;

/// The corruption applied at a fault location (Table I row 7: "either a
/// number or the index of bit position").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultValue {
    /// Flip the bit at this position.
    BitFlip(u8),
    /// Force the bit at this position to a fixed level (stuck-at).
    StuckAt {
        /// Bit position.
        pos: u8,
        /// `true` = stuck-at-1.
        high: bool,
    },
    /// Replace the value outright.
    Replace(f32),
    /// Flip a bit in the value's symmetric signed `bits`-wide integer
    /// quantization (MRFI-style quantized-int perturbation): the value
    /// is quantized with scale `amax / (2^(bits-1) - 1)`, the bit is
    /// flipped in the two's-complement representation, and the result
    /// is dequantized back to fp32.
    QuantStep {
        /// Bit position inside the `bits`-wide integer, `0 ..= bits-1`
        /// (`bits-1` is the sign bit).
        bit: u8,
        /// Quantization width in bits.
        bits: u8,
        /// Absolute-maximum of the symmetric quantization range.
        amax: f32,
    },
}

/// A single pre-generated fault location + value: one column of the
/// fault matrix.
///
/// Coordinate semantics depend on the injection target:
///
/// * **Neuron faults** address the *output tensor* of a layer:
///   `(batch, channel, [depth,] height, width)`, or `(batch, width)` for
///   linear-layer outputs (`channel`, `height` zero), or
///   `(batch, height=token, width=feature)` for rank-3 token tensors.
/// * **Weight faults** address the *weight tensor*:
///   `(channel_out, channel_in, [depth,] height, width)` for
///   convolutions and `(channel_out, width)` for linear weights; `batch`
///   is the image index the fault scope is associated with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRecord {
    /// Table I row 1: image index within a batch (neuron faults) or the
    /// image slot the fault is associated with (weight faults).
    pub batch: usize,
    /// Table I row 2: index into the model's injectable-layer list.
    pub layer: usize,
    /// Table I row 3: channel (neurons) or output channel (weights).
    pub channel: usize,
    /// Weight faults only: input channel (the paper's third row for
    /// weight injection). `0` for neuron faults.
    pub channel_in: usize,
    /// Table I row 4: depth index for conv3d tensors; `None` elsewhere.
    pub depth: Option<usize>,
    /// Table I row 5: y position.
    pub height: usize,
    /// Table I row 6: x position.
    pub width: usize,
    /// Table I row 7: the corruption.
    pub value: FaultValue,
}

impl FaultRecord {
    /// The conceptual Table I column as `[batch, layer, channel,
    /// channel_in, depth, height, width, value-tag]` with `usize::MAX`
    /// marking an absent depth.
    ///
    /// Both the neuron and the weight interpretation are projected
    /// explicitly: `channel` is Table I's output channel, `channel_in`
    /// is the weight-fault input channel (always `0` for neuron
    /// faults), so nothing is dropped or conflated between the two
    /// target kinds. Used by tests asserting the matrix layout and by
    /// the human-readable dump.
    pub fn as_column(&self) -> [usize; 8] {
        [
            self.batch,
            self.layer,
            self.channel,
            self.channel_in,
            self.depth.unwrap_or(usize::MAX),
            self.height,
            self.width,
            match self.value {
                FaultValue::BitFlip(p) => p as usize,
                FaultValue::StuckAt { pos, .. } => pos as usize,
                FaultValue::Replace(_) => usize::MAX,
                FaultValue::QuantStep { bit, .. } => bit as usize,
            },
        ]
    }
}

/// The outcome of actually applying one fault during a run — the paper's
/// second binary output file records "the fault locations and the
/// original and altered values of the neuron/weight before and after the
/// fault injection run" plus monitored NaN/Inf information.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppliedFault {
    /// The fault that was applied.
    pub record: FaultRecord,
    /// Value before corruption.
    pub original: f32,
    /// Value after corruption.
    pub corrupted: f32,
    /// Bit-flip direction, when the fault was a bit flip.
    pub direction: Option<FlipDirection>,
}

impl AppliedFault {
    /// Whether the corruption produced a non-finite value (a DUE
    /// precursor).
    pub fn is_non_finite(&self) -> bool {
        !self.corrupted.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> FaultRecord {
        FaultRecord {
            batch: 1,
            layer: 4,
            channel: 7,
            channel_in: 2,
            depth: None,
            height: 3,
            width: 9,
            value: FaultValue::BitFlip(30),
        }
    }

    #[test]
    fn column_layout_matches_table_i() {
        let c = record().as_column();
        assert_eq!(c[0], 1); // batch
        assert_eq!(c[1], 4); // layer
        assert_eq!(c[2], 7); // channel (output channel for weights)
        assert_eq!(c[3], 2); // input channel (weight faults)
        assert_eq!(c[4], usize::MAX); // no depth (not conv3d)
        assert_eq!(c[5], 3); // height
        assert_eq!(c[6], 9); // width
        assert_eq!(c[7], 30); // bit position
    }

    #[test]
    fn neuron_and_weight_columns_are_disjoint() {
        // Table I row ordering: a weight fault carries its input
        // channel in column 3; a neuron fault leaves it 0. A conv3d
        // depth lives in column 4 and never shadows either channel.
        let weight = record();
        let neuron = FaultRecord { channel_in: 0, depth: Some(6), ..record() };
        assert_eq!(weight.as_column()[3], 2);
        assert_eq!(neuron.as_column()[3], 0);
        assert_eq!(neuron.as_column()[4], 6);
        assert_eq!(weight.as_column()[4], usize::MAX);
        // All other coordinates project identically.
        for i in [0, 1, 2, 5, 6, 7] {
            assert_eq!(weight.as_column()[i], neuron.as_column()[i], "column {i}");
        }
    }

    #[test]
    fn conv3d_column_carries_depth() {
        let mut r = record();
        r.depth = Some(5);
        assert_eq!(r.as_column()[4], 5);
    }

    #[test]
    fn replace_value_has_sentinel_tag() {
        let mut r = record();
        r.value = FaultValue::Replace(3.5);
        assert_eq!(r.as_column()[7], usize::MAX);
    }

    #[test]
    fn quant_step_tag_is_the_flipped_bit() {
        let mut r = record();
        r.value = FaultValue::QuantStep { bit: 5, bits: 8, amax: 4.0 };
        assert_eq!(r.as_column()[7], 5);
    }

    #[test]
    fn applied_fault_flags_non_finite() {
        let a = AppliedFault {
            record: record(),
            original: 1.0,
            corrupted: f32::INFINITY,
            direction: Some(FlipDirection::ZeroToOne),
        };
        assert!(a.is_non_finite());
        let b = AppliedFault { corrupted: 2.0, ..a };
        assert!(!b.is_non_finite());
    }
}
