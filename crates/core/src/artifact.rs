//! Campaign artifact layout and the row-persistence API.
//!
//! Everything a campaign writes under `RunConfig::save_dir` goes
//! through this module:
//!
//! * [`Artifacts`] is the single source of truth for the file names in
//!   a campaign output directory (previously scattered as string
//!   literals across the campaign runners).
//! * [`ArtifactSink`] is the streaming persistence interface the
//!   campaign [`Engine`](crate::campaign::Engine) drives at scope
//!   boundaries: one [`append`](ArtifactSink::append) per result row
//!   as it is produced, one [`finalize`](ArtifactSink::finalize) at
//!   the end of the run. Campaign tasks construct their sink through
//!   `CampaignTask::make_row_sink`, choosing between the historical
//!   CSV files and the columnar binary store by
//!   [`ArtifactFormat`](alfi_scenario::ArtifactFormat).
//! * [`ColumnarSink`] adapts any row type to an `alfi-store` columnar
//!   file via a row-to-values projection.
//! * [`ReplayReader`] reads a columnar store back with read-volume
//!   metering published to the global metrics registry.
//! * [`text_to_store`] / [`store_to_texts`] convert between the
//!   columnar format and the text artifacts byte-exactly (the
//!   `alfi store convert` CLI command).
//!
//! Rows carry an explicit [`RowKey`] `(epoch, batch, fault_id)`
//! assigned by the engine identically for the sequential and parallel
//! drivers, so binary artifacts are byte-identical at every thread
//! count, exactly like the CSVs they replace.

use crate::error::CoreError;
use alfi_metrics::{names, Class};
use alfi_store::{
    ColumnSpec, ColumnType, Encoding, Row, RowKey, Schema, StoreReader, StoreStats, StoreWriter,
    Value, DEFAULT_BLOCK_ROWS,
};
use std::path::{Path, PathBuf};

/// Documented file layout of a campaign output directory.
///
/// ```
/// use alfi_core::artifact::Artifacts;
///
/// let a = Artifacts::new("/tmp/run");
/// assert!(a.faults().ends_with("faults.bin"));
/// assert!(a.rows_store().ends_with("rows.alfic"));
/// ```
#[derive(Debug, Clone)]
pub struct Artifacts {
    dir: PathBuf,
}

impl Artifacts {
    /// Replayable scenario parameters (YAML).
    pub const SCENARIO: &'static str = "scenario.yml";
    /// Pre-generated fault matrix (versioned, checksummed binary).
    pub const FAULTS: &'static str = "faults.bin";
    /// Applied-fault trace with NaN/Inf counts (binary).
    pub const TRACE: &'static str = "trace.bin";
    /// Fault-free model rows (CSV format).
    pub const ROWS_ORIG: &'static str = "results_orig.csv";
    /// Fault-injected model rows (CSV format).
    pub const ROWS_CORR: &'static str = "results_corr.csv";
    /// Hardened model rows, present only when a resil model ran
    /// (CSV format).
    pub const ROWS_RESIL: &'static str = "results_resil.csv";
    /// All result rows in one columnar store (binary format).
    pub const ROWS_STORE: &'static str = "rows.alfic";
    /// Detection rows as JSON lines (produced by `store convert`).
    pub const ROWS_JSONL: &'static str = "rows.jsonl";
    /// JSONL event log (with an enabled recorder).
    pub const EVENTS: &'static str = alfi_trace::EVENTS_FILE;
    /// Prometheus metrics snapshot (with metrics attached).
    pub const METRICS: &'static str = alfi_metrics::SNAPSHOT_FILE;

    /// Names the artifact set rooted at `dir`.
    pub fn new(dir: impl AsRef<Path>) -> Self {
        Artifacts { dir: dir.as_ref().to_path_buf() }
    }

    /// The output directory itself.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of [`Artifacts::SCENARIO`].
    pub fn scenario(&self) -> PathBuf {
        self.dir.join(Self::SCENARIO)
    }

    /// Path of [`Artifacts::FAULTS`].
    pub fn faults(&self) -> PathBuf {
        self.dir.join(Self::FAULTS)
    }

    /// Path of [`Artifacts::TRACE`].
    pub fn trace(&self) -> PathBuf {
        self.dir.join(Self::TRACE)
    }

    /// Path of [`Artifacts::ROWS_ORIG`].
    pub fn rows_orig(&self) -> PathBuf {
        self.dir.join(Self::ROWS_ORIG)
    }

    /// Path of [`Artifacts::ROWS_CORR`].
    pub fn rows_corr(&self) -> PathBuf {
        self.dir.join(Self::ROWS_CORR)
    }

    /// Path of [`Artifacts::ROWS_RESIL`].
    pub fn rows_resil(&self) -> PathBuf {
        self.dir.join(Self::ROWS_RESIL)
    }

    /// Path of [`Artifacts::ROWS_STORE`].
    pub fn rows_store(&self) -> PathBuf {
        self.dir.join(Self::ROWS_STORE)
    }
}

/// What an [`ArtifactSink`] persisted over the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SinkStats {
    /// Result rows appended.
    pub rows: u64,
    /// Bytes written across all row artifacts.
    pub bytes: u64,
}

impl From<StoreStats> for SinkStats {
    fn from(s: StoreStats) -> Self {
        SinkStats { rows: s.rows, bytes: s.bytes }
    }
}

/// Streaming row persistence driven by the campaign engine.
///
/// The engine calls [`append`](ArtifactSink::append) once per result
/// row, in deterministic row order with a deterministic [`RowKey`],
/// and [`finalize`](ArtifactSink::finalize) exactly once after the
/// drivers return (under the `persist` trace phase). Implementations
/// must make the on-disk bytes a pure function of the appended
/// sequence so artifacts stay byte-identical at every thread count.
pub trait ArtifactSink<R> {
    /// Appends one result row.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] / [`CoreError::Store`] on write
    /// failures.
    fn append(&mut self, key: RowKey, row: &R) -> Result<(), CoreError>;

    /// Flushes and closes every artifact, returning write totals.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] / [`CoreError::Store`] on write
    /// failures, and [`CoreError::Io`] if called twice.
    fn finalize(&mut self) -> Result<SinkStats, CoreError>;
}

/// Projection from one campaign row to its store column values.
type RowProjection<R> = Box<dyn Fn(&R) -> Vec<Value>>;

/// [`ArtifactSink`] writing rows into one `alfi-store` columnar file
/// through a row-to-values projection.
pub struct ColumnarSink<R> {
    writer: Option<StoreWriter>,
    to_values: RowProjection<R>,
}

impl<R> std::fmt::Debug for ColumnarSink<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnarSink").field("open", &self.writer.is_some()).finish()
    }
}

impl<R> ColumnarSink<R> {
    /// Creates the store file at `path` with the given schema; each
    /// appended row is projected to column values by `to_values`
    /// (which must match the schema's arity and types).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] for an invalid schema or on I/O
    /// failure.
    pub fn create(
        path: impl AsRef<Path>,
        schema: Schema,
        to_values: impl Fn(&R) -> Vec<Value> + 'static,
    ) -> Result<Self, CoreError> {
        let writer = StoreWriter::create(path, schema, DEFAULT_BLOCK_ROWS)?;
        Ok(ColumnarSink { writer: Some(writer), to_values: Box::new(to_values) })
    }
}

impl<R> ArtifactSink<R> for ColumnarSink<R> {
    fn append(&mut self, key: RowKey, row: &R) -> Result<(), CoreError> {
        let writer = self
            .writer
            .as_mut()
            .ok_or_else(|| CoreError::Io("columnar sink already finalized".into()))?;
        writer.append(key, &(self.to_values)(row))?;
        Ok(())
    }

    fn finalize(&mut self) -> Result<SinkStats, CoreError> {
        let writer = self
            .writer
            .take()
            .ok_or_else(|| CoreError::Io("columnar sink already finalized".into()))?;
        Ok(writer.finish()?.into())
    }
}

/// Reads a columnar result store back for replay analysis, publishing
/// read-volume counters (`alfi_store_rows_read_total`,
/// `alfi_store_bytes_read_total`) to the global metrics registry when
/// it is enabled.
pub struct ReplayReader {
    inner: StoreReader,
}

impl std::fmt::Debug for ReplayReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplayReader").field("rows", &self.inner.total_rows()).finish()
    }
}

impl ReplayReader {
    /// Opens a store file, validating its header, index and trailer.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] on I/O failure or corruption.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, CoreError> {
        Ok(ReplayReader { inner: StoreReader::open(path)? })
    }

    /// All rows whose key carries `fault_id` — the replay question
    /// "what did fault *n* do?". Reads only the blocks whose index
    /// entry covers the id, not the whole file.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] on I/O failure or corruption.
    pub fn lookup_fault(&mut self, fault_id: u64) -> Result<Vec<Row>, CoreError> {
        let before = self.inner.bytes_read();
        let rows = self.inner.lookup_fault(fault_id)?;
        self.meter(rows.len() as u64, self.inner.bytes_read() - before);
        Ok(rows)
    }

    /// Decodes every row in key order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] on I/O failure or corruption.
    pub fn scan(&mut self) -> Result<Vec<Row>, CoreError> {
        let before = self.inner.bytes_read();
        let rows = self.inner.scan()?;
        self.meter(rows.len() as u64, self.inner.bytes_read() - before);
        Ok(rows)
    }

    /// The underlying metered reader (schema, meta, block statistics).
    pub fn reader(&self) -> &StoreReader {
        &self.inner
    }

    /// Mutable access to the underlying reader, for block-level
    /// inspection APIs ([`StoreReader::block_column_stats`]) that need
    /// to read blocks on demand.
    pub fn reader_mut(&mut self) -> &mut StoreReader {
        &mut self.inner
    }

    fn meter(&self, rows: u64, bytes: u64) {
        if alfi_metrics::global_enabled() {
            let reg = alfi_metrics::global();
            reg.counter(names::STORE_ROWS_READ, "Rows returned by store lookups", Class::Runtime)
                .add(rows);
            reg.counter(names::STORE_BYTES_READ, "Bytes read by store lookups", Class::Runtime)
                .add(bytes);
        }
    }
}

fn cell(values: &[Value], idx: usize) -> Result<&Value, CoreError> {
    values.get(idx).ok_or(CoreError::CorruptFile {
        kind: "store",
        reason: format!("row is missing column {idx}"),
    })
}

pub(crate) fn cell_u64(values: &[Value], idx: usize) -> Result<u64, CoreError> {
    cell(values, idx)?.as_u64().ok_or(CoreError::CorruptFile {
        kind: "store",
        reason: format!("column {idx} is not an integer"),
    })
}

pub(crate) fn cell_f32(values: &[Value], idx: usize) -> Result<f32, CoreError> {
    cell(values, idx)?.as_f32().ok_or(CoreError::CorruptFile {
        kind: "store",
        reason: format!("column {idx} is not an f32"),
    })
}

pub(crate) fn cell_str(values: &[Value], idx: usize) -> Result<&str, CoreError> {
    cell(values, idx)?.as_str().ok_or(CoreError::CorruptFile {
        kind: "store",
        reason: format!("column {idx} is not a string"),
    })
}

/// Splits `text` into lines, reporting whether a trailing newline was
/// present so the exact bytes can be reconstructed.
fn split_lines(text: &str) -> (Vec<&str>, bool) {
    match text.strip_suffix('\n') {
        Some(body) => {
            if body.is_empty() {
                (vec![""], true)
            } else {
                (body.split('\n').collect(), true)
            }
        }
        None if text.is_empty() => (Vec::new(), false),
        None => (text.split('\n').collect(), false),
    }
}

/// Converts a text artifact into a columnar store at `out`,
/// preserving the exact bytes: a `*.csv` `source_name` becomes one
/// string column per header field (`kind: csv`), anything else one
/// `line` column per line (`kind: lines`). [`store_to_texts`] inverts
/// the conversion byte-identically.
///
/// # Errors
///
/// Returns [`CoreError::Store`] on I/O failure, for a CSV header with
/// duplicate or empty field names, and [`CoreError::CorruptFile`] for
/// a CSV row whose field count differs from the header's.
pub fn text_to_store(text: &str, source_name: &str, out: &Path) -> Result<StoreStats, CoreError> {
    let (lines, trailing) = split_lines(text);
    let trailing = if trailing { "1" } else { "0" };
    if source_name.ends_with(".csv") && !lines.is_empty() {
        let header = lines[0];
        let fields: Vec<&str> = header.split(',').collect();
        let schema = Schema::new(
            fields
                .iter()
                .map(|f| ColumnSpec::new(*f, ColumnType::Str, Encoding::Prefix))
                .collect(),
        )
        .with_meta("kind", "csv")
        .with_meta("source", source_name)
        .with_meta("trailing_newline", trailing);
        let mut writer = StoreWriter::create(out, schema, DEFAULT_BLOCK_ROWS)?;
        for (i, line) in lines[1..].iter().enumerate() {
            let cells: Vec<&str> = line.split(',').collect();
            if cells.len() != fields.len() {
                return Err(CoreError::CorruptFile {
                    kind: "store",
                    reason: format!(
                        "csv row {i} has {} fields, header has {}",
                        cells.len(),
                        fields.len()
                    ),
                });
            }
            let values: Vec<Value> = cells.into_iter().map(|c| Value::Str(c.into())).collect();
            writer.append(RowKey::new(0, 0, i as u64), &values)?;
        }
        Ok(writer.finish()?)
    } else {
        let schema =
            Schema::new(vec![ColumnSpec::new("line", ColumnType::Str, Encoding::Prefix)])
                .with_meta("kind", "lines")
                .with_meta("source", source_name)
                .with_meta("trailing_newline", trailing);
        let mut writer = StoreWriter::create(out, schema, DEFAULT_BLOCK_ROWS)?;
        for (i, line) in lines.iter().enumerate() {
            writer.append(RowKey::new(0, 0, i as u64), &[Value::Str((*line).into())])?;
        }
        Ok(writer.finish()?)
    }
}

/// Converts a columnar store back into its text artifacts, dispatching
/// on the store's `kind` metadata:
///
/// * `classification` → `results_orig.csv` / `results_corr.csv`
///   (/`results_resil.csv`), byte-identical to what a CSV-format run
///   writes;
/// * `detection` → `rows.jsonl`, one JSON object per row;
/// * `csv` / `lines` (from [`text_to_store`]) → the original file,
///   byte-identical.
///
/// Returns `(file_name, contents)` pairs; [`store_to_files`] writes
/// them to a directory.
///
/// # Errors
///
/// Returns [`CoreError::Store`] on I/O failure or corruption and
/// [`CoreError::CorruptFile`] for an unknown `kind` or rows that do
/// not match it.
pub fn store_to_texts(path: &Path) -> Result<Vec<(String, String)>, CoreError> {
    let mut reader = ReplayReader::open(path)?;
    let kind = reader.reader().meta("kind").unwrap_or("").to_string();
    match kind.as_str() {
        "classification" => {
            let resil = reader.reader().meta("resil") == Some("1");
            let rows = reader.scan()?;
            crate::campaign::classification::store_rows_to_csvs(&rows, resil)
        }
        "detection" => {
            let resil = reader.reader().meta("resil") == Some("1");
            let rows = reader.scan()?;
            let mut out = String::new();
            for (_, values) in &rows {
                out.push_str(&crate::campaign::detection::store_row_to_json_line(values, resil)?);
            }
            Ok(vec![(Artifacts::ROWS_JSONL.to_string(), out)])
        }
        "csv" => {
            let source = reader.reader().meta("source").unwrap_or("converted.csv").to_string();
            let trailing = reader.reader().meta("trailing_newline") != Some("0");
            let header: Vec<String> =
                reader.reader().schema().columns.iter().map(|c| c.name.clone()).collect();
            let rows = reader.scan()?;
            let mut lines = vec![header.join(",")];
            for (_, values) in &rows {
                let cells: Result<Vec<&str>, CoreError> =
                    (0..values.len()).map(|i| cell_str(values, i)).collect();
                lines.push(cells?.join(","));
            }
            let mut text = lines.join("\n");
            if trailing {
                text.push('\n');
            }
            Ok(vec![(source, text)])
        }
        "lines" => {
            let source = reader.reader().meta("source").unwrap_or("converted.txt").to_string();
            let trailing = reader.reader().meta("trailing_newline") != Some("0");
            let rows = reader.scan()?;
            let mut lines = Vec::with_capacity(rows.len());
            for (_, values) in &rows {
                lines.push(cell_str(values, 0)?.to_string());
            }
            let mut text = lines.join("\n");
            if trailing {
                text.push('\n');
            }
            Ok(vec![(source, text)])
        }
        other => Err(CoreError::CorruptFile {
            kind: "store",
            reason: format!("unknown store kind `{other}`"),
        }),
    }
}

/// [`store_to_texts`], written into `out_dir` (created if needed).
/// Returns the paths written.
///
/// # Errors
///
/// As [`store_to_texts`], plus [`CoreError::Io`] on write failure.
pub fn store_to_files(store: &Path, out_dir: &Path) -> Result<Vec<PathBuf>, CoreError> {
    let texts = store_to_texts(store)?;
    std::fs::create_dir_all(out_dir)?;
    let mut written = Vec::with_capacity(texts.len());
    for (name, contents) in texts {
        let path = out_dir.join(name);
        std::fs::write(&path, contents)?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_names_are_centralized() {
        let a = Artifacts::new("/tmp/x");
        assert_eq!(a.scenario().file_name().unwrap(), Artifacts::SCENARIO);
        assert_eq!(a.rows_store().file_name().unwrap(), Artifacts::ROWS_STORE);
        assert_eq!(Artifacts::EVENTS, "events.jsonl");
        assert_eq!(Artifacts::METRICS, "metrics.prom");
    }

    #[test]
    fn csv_text_round_trips_byte_identically() {
        let dir = std::env::temp_dir().join("alfi_artifact_csv_rt");
        std::fs::create_dir_all(&dir).unwrap();
        let text = "a,b,c\n1,two,3.5\n4,,-\n";
        let store = dir.join("t.alfic");
        let stats = text_to_store(text, "sample.csv", &store).unwrap();
        assert_eq!(stats.rows, 2);
        let back = store_to_texts(&store).unwrap();
        assert_eq!(back, vec![("sample.csv".to_string(), text.to_string())]);
    }

    #[test]
    fn lines_text_round_trips_without_trailing_newline() {
        let dir = std::env::temp_dir().join("alfi_artifact_lines_rt");
        std::fs::create_dir_all(&dir).unwrap();
        for text in ["{\"x\":1}\n{\"y\":2}", "{\"x\":1}\n{\"y\":2}\n", "", "one"] {
            let store = dir.join("t.alfic");
            text_to_store(text, "sample.json", &store).unwrap();
            let back = store_to_texts(&store).unwrap();
            assert_eq!(back[0].1, text, "round-trip of {text:?}");
        }
    }

    #[test]
    fn finalize_twice_is_an_error() {
        let dir = std::env::temp_dir().join("alfi_artifact_fin");
        std::fs::create_dir_all(&dir).unwrap();
        let schema = Schema::new(vec![ColumnSpec::new("v", ColumnType::U32, Encoding::Plain)])
            .with_meta("kind", "lines");
        let mut sink: ColumnarSink<u32> =
            ColumnarSink::create(dir.join("f.alfic"), schema, |v| vec![Value::U32(*v)]).unwrap();
        sink.append(RowKey::new(0, 0, 0), &7).unwrap();
        sink.finalize().unwrap();
        assert!(sink.finalize().is_err());
        assert!(sink.append(RowKey::new(0, 0, 1), &8).is_err());
    }
}
