//! Fault-matrix generation.
//!
//! "All faults are generated as a matrix before the inference run to
//! enhance the explainability of faults" (§IV-B). This module resolves a
//! model's injectable layers against a [`Scenario`], computes the Eq. (1)
//! layer-size weighting, and pre-generates the full set of
//! `dataset_size · num_runs · faults_per_image` fault records.

use crate::error::CoreError;
use crate::fault::{FaultRecord, FaultValue};
use crate::fault_model::{FaultModel, LayerPlan};
use alfi_nn::{LayerKind, Network, NodeId};
use alfi_scenario::{FaultMode, InjectionTarget, LayerType, Scenario};
use alfi_rng::Rng;

/// A fully resolved injection target: one injectable layer of one
/// network, with its weight geometry and (when shape inference ran) its
/// output geometry.
#[derive(Debug, Clone)]
pub struct LayerTarget {
    /// Which network (0 for single-network models; the Faster-RCNN-style
    /// detector exposes backbone = 0, head = 1).
    pub net_idx: usize,
    /// Node id within that network.
    pub node_id: NodeId,
    /// Layer name.
    pub name: String,
    /// Layer kind.
    pub kind: LayerKind,
    /// Weight tensor dims.
    pub weight_dims: Vec<usize>,
    /// Output tensor dims for the reference input (batch included), when
    /// known.
    pub output_dims: Option<Vec<usize>>,
}

impl LayerTarget {
    /// Element count relevant for Eq. (1): weight elements for weight
    /// faults, per-image output elements for neuron faults.
    pub fn element_count(&self, target: InjectionTarget) -> usize {
        match target {
            InjectionTarget::Weights => self.weight_dims.iter().product(),
            InjectionTarget::Neurons => self
                .output_dims
                .as_ref()
                .map_or(self.weight_dims[0], |d| d[1..].iter().product()),
        }
    }
}

fn kind_matches(kind: LayerKind, types: &[LayerType]) -> bool {
    types.iter().any(|t| {
        matches!(
            (t, kind),
            (LayerType::Conv2d, LayerKind::Conv2d)
                | (LayerType::Conv3d, LayerKind::Conv3d)
                | (LayerType::Linear, LayerKind::Linear)
        )
    })
}

/// Resolves the scenario's layer filter against one or more networks.
///
/// `input_dims` gives, per network, the reference input shape used to
/// infer output geometries (pass `None` for networks whose input shape is
/// only known at run time, e.g. a second-stage RoI head — neuron faults
/// there fall back to output-channel bounds).
///
/// The scenario's `layer_range` restricts by *position in the combined
/// injectable-layer list*, matching the paper's "limited to specific
/// layer numbers or a range of layer numbers".
///
/// # Errors
///
/// Returns [`CoreError::NoInjectableLayers`] if nothing survives the
/// filter, or shape-inference errors from the networks.
pub fn resolve_targets(
    networks: &[&Network],
    scenario: &Scenario,
    input_dims: &[Option<Vec<usize>>],
) -> Result<Vec<LayerTarget>, CoreError> {
    let mut all = Vec::new();
    for (net_idx, net) in networks.iter().enumerate() {
        let dims = input_dims.get(net_idx).and_then(|d| d.as_deref());
        let layers = net.injectable_layers(None, dims)?;
        for l in layers {
            all.push(LayerTarget {
                net_idx,
                node_id: l.node_id,
                name: l.name,
                kind: l.kind,
                weight_dims: l.weight_shape.dims().to_vec(),
                output_dims: l.output_shape.map(|s| s.dims().to_vec()),
            });
        }
    }
    // Positional filtering happens on the full list so layer indices in
    // fault records stay stable regardless of the type filter.
    let filtered: Vec<LayerTarget> = all
        .into_iter()
        .enumerate()
        .filter(|(pos, t)| {
            let in_range = scenario.layer_range.is_none_or(|(lo, hi)| *pos >= lo && *pos <= hi);
            in_range && kind_matches(t.kind, &scenario.layer_types)
        })
        .map(|(_, t)| t)
        .collect();
    if filtered.is_empty() {
        return Err(CoreError::NoInjectableLayers);
    }
    Ok(filtered)
}

/// Eq. (1): relative size weight per layer,
/// `F_i = prod(d_ij) / sum_i prod(d_ij)`.
pub fn layer_weights(targets: &[LayerTarget], target: InjectionTarget) -> Vec<f64> {
    let counts: Vec<f64> = targets.iter().map(|t| t.element_count(target) as f64).collect();
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return vec![1.0 / targets.len() as f64; targets.len()];
    }
    counts.into_iter().map(|c| c / total).collect()
}

/// The pre-generated fault matrix: every fault for a whole campaign, in
/// order, plus the generation parameters needed to interpret it.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultMatrix {
    /// One record per fault (a "column" of the paper's matrix).
    pub records: Vec<FaultRecord>,
    /// Whether these are neuron or weight faults.
    pub target: InjectionTarget,
    /// Simultaneous faults per image used at generation time.
    pub faults_per_image: usize,
}

impl FaultMatrix {
    /// Generates the full fault matrix for a scenario against resolved
    /// layer targets.
    ///
    /// The scenario is first resolved into a [`FaultModel`] — one
    /// [`LayerPlan`] per target — and materialization then follows the
    /// plan; this is where the `layers:` multi-resolution overrides take
    /// effect. Generation is entirely determined by `scenario.seed`, so
    /// equal scenarios over equal models yield bit-identical matrices —
    /// the reusability guarantee that lets "the identical set of faults
    /// be utilized across various experiments" (§IV-B).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoInjectableLayers`] for an empty target
    /// list, or the [`FaultModel::resolve`] validation errors for bad
    /// `layers:` overrides.
    pub fn generate(scenario: &Scenario, targets: &[LayerTarget]) -> Result<FaultMatrix, CoreError> {
        let model = FaultModel::resolve(scenario, targets)?;
        Self::generate_with_model(scenario, targets, &model)
    }

    /// Materializes faults for an already resolved [`FaultModel`].
    ///
    /// With a model whose plans carry the base weights and campaign-wide
    /// mode (no overrides) the RNG draw sequence is identical to the
    /// historical flat loop, keeping legacy artifacts byte-stable.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoInjectableLayers`] for an empty target list.
    pub fn generate_with_model(
        scenario: &Scenario,
        targets: &[LayerTarget],
        model: &FaultModel,
    ) -> Result<FaultMatrix, CoreError> {
        if targets.is_empty() {
            return Err(CoreError::NoInjectableLayers);
        }
        let total_elements: usize =
            targets.iter().map(|t| t.element_count(scenario.injection_target)).sum();
        let per_image = scenario.faults_per_image.resolve(total_elements);
        let n = scenario.dataset_size * scenario.num_runs * per_image;
        let plans = model.plans();
        // Cumulative distribution for weighted layer choice.
        let mut cdf = Vec::with_capacity(plans.len());
        let mut acc = 0.0f64;
        for p in plans {
            acc += p.weight;
            cdf.push(acc);
        }
        let mut rng = Rng::from_seed(scenario.seed);
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            let u: f64 = rng.gen_range(0.0..1.0);
            let li = cdf.iter().position(|&c| u < c).unwrap_or(targets.len() - 1);
            let t = &targets[li];
            let plan = &plans[li];
            let batch = rng.gen_range(0..scenario.batch_size.max(1));
            let value = sample_value(&plan.mode, &mut rng);
            let record = match scenario.injection_target {
                InjectionTarget::Weights => sample_weight_coords(t, plan, li, batch, value, &mut rng),
                InjectionTarget::Neurons => sample_neuron_coords(t, plan, li, batch, value, &mut rng),
            };
            records.push(record);
        }
        Ok(FaultMatrix { records, target: scenario.injection_target, faults_per_image: per_image })
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The consecutive chunk of faults for image-slot `i` (each slot gets
    /// `faults_per_image` columns). Returns an empty slice past the end.
    pub fn faults_for_slot(&self, i: usize) -> &[FaultRecord] {
        let k = self.faults_per_image.max(1);
        let start = (i * k).min(self.records.len());
        let end = ((i + 1) * k).min(self.records.len());
        &self.records[start..end]
    }

    /// Number of complete fault slots.
    pub fn num_slots(&self) -> usize {
        self.records.len().checked_div(self.faults_per_image).unwrap_or(0)
    }

    /// Validates a replayed matrix against the scenario it is about to
    /// drive — the paper's `fault_file` reuse is only meaningful when
    /// the injection target (neurons vs weights) still matches.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CorruptFile`] on a target mismatch.
    pub fn validate_replay(&self, scenario: &Scenario) -> Result<(), CoreError> {
        if self.target != scenario.injection_target {
            return Err(CoreError::CorruptFile {
                kind: "fault",
                reason: format!(
                    "replayed matrix target {:?} disagrees with scenario target {:?}",
                    self.target, scenario.injection_target
                ),
            });
        }
        Ok(())
    }
}

fn sample_value(mode: &FaultMode, rng: &mut Rng) -> FaultValue {
    match mode {
        FaultMode::BitFlip { bit_range } => {
            FaultValue::BitFlip(rng.gen_range(bit_range.0..=bit_range.1))
        }
        FaultMode::StuckAt { bit_range, stuck_high } => FaultValue::StuckAt {
            pos: rng.gen_range(bit_range.0..=bit_range.1),
            high: *stuck_high,
        },
        FaultMode::RandomValue { min, max } => {
            if min == max {
                FaultValue::Replace(*min)
            } else {
                FaultValue::Replace(rng.gen_range(*min..*max))
            }
        }
        FaultMode::QuantStep { bits, amax, bit_range } => FaultValue::QuantStep {
            bit: rng.gen_range(bit_range.0..=bit_range.1),
            bits: *bits,
            amax: *amax,
        },
    }
}

/// Draws an output-channel coordinate, restricted to the plan's scope
/// when one was set. The unrestricted draw is the historical
/// `gen_range(0..cap)` call, byte-for-byte.
fn sample_channel(cap: usize, plan: &LayerPlan, rng: &mut Rng) -> usize {
    match plan.channel_range {
        Some((lo, hi)) => rng.gen_range(lo..=hi.min(cap.saturating_sub(1))),
        None => rng.gen_range(0..cap),
    }
}

fn sample_weight_coords(
    t: &LayerTarget,
    plan: &LayerPlan,
    layer: usize,
    batch: usize,
    value: FaultValue,
    rng: &mut Rng,
) -> FaultRecord {
    let d = &t.weight_dims;
    match d.len() {
        2 => FaultRecord {
            batch,
            layer,
            channel: sample_channel(d[0], plan, rng),
            channel_in: 0,
            depth: None,
            height: 0,
            width: rng.gen_range(0..d[1]),
            value,
        },
        4 => FaultRecord {
            batch,
            layer,
            channel: sample_channel(d[0], plan, rng),
            channel_in: rng.gen_range(0..d[1]),
            depth: None,
            height: rng.gen_range(0..d[2]),
            width: rng.gen_range(0..d[3]),
            value,
        },
        5 => FaultRecord {
            batch,
            layer,
            channel: sample_channel(d[0], plan, rng),
            channel_in: rng.gen_range(0..d[1]),
            depth: Some(rng.gen_range(0..d[2])),
            height: rng.gen_range(0..d[3]),
            width: rng.gen_range(0..d[4]),
            value,
        },
        _ => unreachable!("injectable layers have rank-2/4/5 weights"),
    }
}

fn sample_neuron_coords(
    t: &LayerTarget,
    plan: &LayerPlan,
    layer: usize,
    batch: usize,
    value: FaultValue,
    rng: &mut Rng,
) -> FaultRecord {
    match &t.output_dims {
        Some(d) => match d.len() {
            2 => FaultRecord {
                batch,
                layer,
                channel: 0,
                channel_in: 0,
                depth: None,
                height: 0,
                width: rng.gen_range(0..d[1]),
                value,
            },
            // Rank-3 token tensors `[batch, token, feature]` (the
            // transformer path): height addresses the token, width the
            // feature; there is no channel coordinate.
            3 => FaultRecord {
                batch,
                layer,
                channel: 0,
                channel_in: 0,
                depth: None,
                height: rng.gen_range(0..d[1]),
                width: rng.gen_range(0..d[2]),
                value,
            },
            4 => FaultRecord {
                batch,
                layer,
                channel: sample_channel(d[1], plan, rng),
                channel_in: 0,
                depth: None,
                height: rng.gen_range(0..d[2]),
                width: rng.gen_range(0..d[3]),
                value,
            },
            5 => FaultRecord {
                batch,
                layer,
                channel: sample_channel(d[1], plan, rng),
                channel_in: 0,
                depth: Some(rng.gen_range(0..d[2])),
                height: rng.gen_range(0..d[3]),
                width: rng.gen_range(0..d[4]),
                value,
            },
            _ => unreachable!("layer outputs have rank 2/3/4/5"),
        },
        // Shape unknown at generation time: bound by output channels;
        // spatial coordinates 0 (the hook validates at run time).
        None => FaultRecord {
            batch,
            layer,
            channel: sample_channel(t.weight_dims[0], plan, rng),
            channel_in: 0,
            depth: None,
            height: 0,
            width: 0,
            value,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_nn::models::{alexnet, ModelConfig};
    use alfi_scenario::FaultCount;

    fn model_cfg() -> ModelConfig {
        ModelConfig { input_hw: 32, width_mult: 0.0625, ..ModelConfig::default() }
    }

    fn targets(scenario: &Scenario) -> Vec<LayerTarget> {
        let net = alexnet(&model_cfg());
        resolve_targets(&[&net], scenario, &[Some(model_cfg().input_dims(scenario.batch_size))])
            .unwrap()
    }

    #[test]
    fn resolve_targets_honours_type_filter_and_range() {
        let mut s = Scenario::default();
        let all = targets(&s);
        assert_eq!(all.len(), 8); // 5 convs + 3 linears

        s.layer_types = vec![LayerType::Conv2d];
        let convs = targets(&s);
        assert_eq!(convs.len(), 5);
        assert!(convs.iter().all(|t| t.kind == LayerKind::Conv2d));

        s.layer_types = vec![LayerType::Conv2d, LayerType::Linear];
        s.layer_range = Some((6, 7));
        let tail = targets(&s);
        assert_eq!(tail.len(), 2);
        assert!(tail.iter().all(|t| t.kind == LayerKind::Linear));
    }

    #[test]
    fn resolve_targets_errors_when_filter_excludes_all() {
        let mut s = Scenario::default();
        s.layer_types = vec![LayerType::Conv3d]; // alexnet has none
        let net = alexnet(&model_cfg());
        let err = resolve_targets(&[&net], &s, &[None]).unwrap_err();
        assert_eq!(err, CoreError::NoInjectableLayers);
    }

    #[test]
    fn layer_weights_implement_eq1() {
        let s = Scenario::default();
        let ts = targets(&s);
        let w = layer_weights(&ts, InjectionTarget::Weights);
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // weights proportional to element counts
        let c0 = ts[0].element_count(InjectionTarget::Weights) as f64;
        let c1 = ts[1].element_count(InjectionTarget::Weights) as f64;
        assert!((w[0] / w[1] - c0 / c1).abs() < 1e-9);
    }

    #[test]
    fn matrix_size_is_a_times_b_times_c() {
        let mut s = Scenario::default();
        s.dataset_size = 7;
        s.num_runs = 2;
        s.faults_per_image = FaultCount::Fixed(3);
        let m = FaultMatrix::generate(&s, &targets(&s)).unwrap();
        assert_eq!(m.len(), 42);
        assert_eq!(m.faults_per_image, 3);
        assert_eq!(m.num_slots(), 14);
        assert_eq!(m.faults_for_slot(0).len(), 3);
        assert_eq!(m.faults_for_slot(13).len(), 3);
        assert!(m.faults_for_slot(14).is_empty());
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let mut s = Scenario::default();
        s.dataset_size = 20;
        let a = FaultMatrix::generate(&s, &targets(&s)).unwrap();
        let b = FaultMatrix::generate(&s, &targets(&s)).unwrap();
        assert_eq!(a, b);
        s.seed = 1;
        let c = FaultMatrix::generate(&s, &targets(&s)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn weight_fault_coords_are_within_weight_dims() {
        let mut s = Scenario::default();
        s.injection_target = InjectionTarget::Weights;
        s.dataset_size = 200;
        let ts = targets(&s);
        let m = FaultMatrix::generate(&s, &ts).unwrap();
        for r in &m.records {
            let d = &ts[r.layer].weight_dims;
            assert!(r.channel < d[0]);
            match d.len() {
                2 => assert!(r.width < d[1] && r.height == 0 && r.channel_in == 0),
                4 => {
                    assert!(r.channel_in < d[1] && r.height < d[2] && r.width < d[3]);
                    assert!(r.depth.is_none());
                }
                _ => panic!("unexpected weight rank"),
            }
        }
    }

    #[test]
    fn neuron_fault_coords_are_within_output_dims() {
        let mut s = Scenario::default();
        s.injection_target = InjectionTarget::Neurons;
        s.dataset_size = 200;
        s.batch_size = 4;
        let ts = targets(&s);
        let m = FaultMatrix::generate(&s, &ts).unwrap();
        for r in &m.records {
            assert!(r.batch < 4);
            let d = ts[r.layer].output_dims.as_ref().unwrap();
            match d.len() {
                2 => assert!(r.width < d[1]),
                4 => assert!(r.channel < d[1] && r.height < d[2] && r.width < d[3]),
                _ => panic!("unexpected output rank"),
            }
        }
    }

    #[test]
    fn bit_positions_respect_scenario_range() {
        let mut s = Scenario::default();
        s.fault_mode = FaultMode::exponent_bit_flip();
        s.dataset_size = 300;
        let m = FaultMatrix::generate(&s, &targets(&s)).unwrap();
        for r in &m.records {
            match r.value {
                FaultValue::BitFlip(p) => assert!((23..=30).contains(&p)),
                _ => panic!("expected bit flips"),
            }
        }
    }

    #[test]
    fn weighted_selection_tracks_eq1_frequencies() {
        let mut s = Scenario::default();
        s.injection_target = InjectionTarget::Weights;
        s.dataset_size = 5000;
        s.weighted_layer_selection = true;
        let ts = targets(&s);
        let w = layer_weights(&ts, InjectionTarget::Weights);
        let m = FaultMatrix::generate(&s, &ts).unwrap();
        let mut counts = vec![0usize; ts.len()];
        for r in &m.records {
            counts[r.layer] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / m.len() as f64;
            assert!(
                (freq - w[i]).abs() < 0.02,
                "layer {i}: freq {freq:.4} vs weight {:.4}",
                w[i]
            );
        }
    }

    #[test]
    fn uniform_selection_is_roughly_flat() {
        let mut s = Scenario::default();
        s.weighted_layer_selection = false;
        s.dataset_size = 4000;
        let ts = targets(&s);
        let m = FaultMatrix::generate(&s, &ts).unwrap();
        let mut counts = vec![0usize; ts.len()];
        for r in &m.records {
            counts[r.layer] += 1;
        }
        let expect = m.len() as f64 / ts.len() as f64;
        for &c in &counts {
            assert!((c as f64 - expect).abs() < expect * 0.35, "count {c} vs {expect}");
        }
    }

    #[test]
    fn base_model_reproduces_flat_loop_exactly() {
        // The refactored plan-driven loop must be draw-for-draw
        // identical to the historical flat sampler when no overrides
        // are present.
        let mut s = Scenario::default();
        s.dataset_size = 50;
        let ts = targets(&s);
        let model = FaultModel::resolve(&s, &ts).unwrap();
        assert!(!model.is_multi_resolution());
        let via_model = FaultMatrix::generate_with_model(&s, &ts, &model).unwrap();
        let direct = FaultMatrix::generate(&s, &ts).unwrap();
        assert_eq!(via_model, direct);
    }

    #[test]
    fn channel_scope_restricts_weight_fault_channels() {
        use alfi_scenario::LayerOverride;
        let mut s = Scenario::default();
        s.injection_target = InjectionTarget::Weights;
        s.dataset_size = 400;
        s.layer_overrides = std::collections::BTreeMap::from([(
            "0-7".to_string(),
            LayerOverride { channel_range: Some((0, 0)), ..Default::default() },
        )]);
        let m = FaultMatrix::generate(&s, &targets(&s)).unwrap();
        assert!(m.records.iter().all(|r| r.channel == 0));
    }

    #[test]
    fn per_layer_mode_yields_mixed_fault_values() {
        use alfi_scenario::LayerOverride;
        let mut s = Scenario::default();
        s.injection_target = InjectionTarget::Weights;
        s.dataset_size = 600;
        s.layer_overrides = std::collections::BTreeMap::from([(
            "0".to_string(),
            LayerOverride {
                rate: Some(0.5),
                mode: Some(FaultMode::QuantStep { bits: 8, amax: 2.0, bit_range: (0, 7) }),
                channel_range: None,
            },
        )]);
        let m = FaultMatrix::generate(&s, &targets(&s)).unwrap();
        let mut quant = 0usize;
        let mut flips = 0usize;
        for r in &m.records {
            match r.value {
                FaultValue::QuantStep { bit, bits, amax } => {
                    assert_eq!(r.layer, 0);
                    assert!(bit < 8);
                    assert_eq!((bits, amax), (8, 2.0));
                    quant += 1;
                }
                FaultValue::BitFlip(_) => {
                    assert_ne!(r.layer, 0);
                    flips += 1;
                }
                _ => panic!("unexpected fault value"),
            }
        }
        assert!(quant > 0 && flips > 0, "quant {quant} flips {flips}");
    }

    #[test]
    fn bad_layer_override_surfaces_as_generate_error() {
        use alfi_scenario::LayerOverride;
        let mut s = Scenario::default();
        s.layer_overrides = std::collections::BTreeMap::from([(
            "no.such.layer".to_string(),
            LayerOverride { rate: Some(0.5), ..Default::default() },
        )]);
        assert!(FaultMatrix::generate(&s, &targets(&s)).is_err());
    }

    #[test]
    fn random_value_mode_samples_within_bounds() {
        let mut s = Scenario::default();
        s.fault_mode = FaultMode::RandomValue { min: -2.0, max: 3.0 };
        s.dataset_size = 100;
        let m = FaultMatrix::generate(&s, &targets(&s)).unwrap();
        for r in &m.records {
            match r.value {
                FaultValue::Replace(v) => assert!((-2.0..3.0).contains(&v)),
                _ => panic!("expected replace faults"),
            }
        }
    }
}
