//! The fault-injection engine: arming faults on networks and the
//! faulty-model iterator.
//!
//! Neuron faults are applied through forward hooks that corrupt the
//! layer's output tensor in place at inference time (mirroring
//! PyTorchFI's hook mechanism, §II); weight faults mutate layer
//! parameters directly and are reverted bit-exactly when disarmed
//! (transient) or left sticky (permanent).

use crate::error::CoreError;
use crate::fault::{AppliedFault, FaultRecord, FaultValue};
use crate::matrix::{resolve_targets, FaultMatrix, LayerTarget};
use alfi_nn::{ForwardHook, HookHandle, LayerCtx, Network, NodeId};
use alfi_scenario::{FaultDuration, InjectionTarget, Scenario};
use alfi_tensor::bits::{flip_bit_traced, set_bit, FlipDirection};
use alfi_tensor::Tensor;
use std::sync::Mutex;
use std::sync::Arc;

/// Applies one fault value to a scalar, returning the corrupted value and
/// the flip direction when applicable.
pub fn corrupt_value(original: f32, value: FaultValue) -> (f32, Option<FlipDirection>) {
    match value {
        FaultValue::BitFlip(pos) => {
            let (v, d) = flip_bit_traced(original, pos);
            (v, Some(d))
        }
        FaultValue::StuckAt { pos, high } => (set_bit(original, pos, high), None),
        FaultValue::Replace(v) => (v, None),
        FaultValue::QuantStep { bit, bits, amax } => {
            // Symmetric signed quantization: q = round(v / scale) in
            // [-qmax, qmax], flip `bit` in the `bits`-wide two's
            // complement of q, dequantize. The clamp keeps a corrupt
            // matrix file from shifting out of range.
            let bits = bits.clamp(2, 31) as u32;
            let bit = (bit as u32).min(bits - 1);
            let qmax = (1i32 << (bits - 1)) - 1;
            let scale = amax / qmax as f32;
            let q = (original / scale).round().clamp(-(qmax as f32), qmax as f32) as i32;
            let mask = (1u32 << bits) - 1;
            let stored = (q as u32) & mask;
            let direction = if stored >> bit & 1 == 1 {
                FlipDirection::OneToZero
            } else {
                FlipDirection::ZeroToOne
            };
            let flipped = stored ^ (1u32 << bit);
            let sign = 1u32 << (bits - 1);
            let q2 = if flipped & sign != 0 { (flipped | !mask) as i32 } else { flipped as i32 };
            (q2 as f32 * scale, Some(direction))
        }
    }
}

/// Converts one applied fault into its structured trace event. The bit
/// position comes straight from the fault value (bit flips and stuck-at
/// faults are bit-addressed; value replacements are not).
pub fn injection_event(image_id: u64, applied: &AppliedFault) -> alfi_trace::InjectionEvent {
    alfi_trace::InjectionEvent {
        image_id,
        layer: applied.record.layer,
        bit: match applied.record.value {
            FaultValue::BitFlip(pos) => Some(pos),
            FaultValue::StuckAt { pos, .. } => Some(pos),
            FaultValue::Replace(_) => None,
            FaultValue::QuantStep { bit, .. } => Some(bit),
        },
        original: applied.original,
        corrupted: applied.corrupted,
    }
}

/// Computes the flat index of a neuron fault within an output tensor,
/// or `None` if the coordinates fall outside the actual shape (e.g. a
/// partial final batch) — such faults are skipped and counted.
pub fn neuron_flat_index(record: &FaultRecord, dims: &[usize]) -> Option<usize> {
    let coords: Vec<usize> = match dims.len() {
        2 => vec![record.batch, record.width],
        // Rank-3 token tensors `[batch, token, feature]` (transformer
        // blocks): height addresses the token, width the feature.
        3 => vec![record.batch, record.height, record.width],
        4 => vec![record.batch, record.channel, record.height, record.width],
        5 => vec![
            record.batch,
            record.channel,
            record.depth.unwrap_or(0),
            record.height,
            record.width,
        ],
        _ => return None,
    };
    let mut flat = 0usize;
    for (c, d) in coords.iter().zip(dims.iter()) {
        if c >= d {
            return None;
        }
        flat = flat * d + c;
    }
    Some(flat)
}

/// Hook applying a set of neuron faults to one node's output.
///
/// The hook records every application (original/corrupted value, flip
/// direction) behind a mutex so the campaign can persist the run trace —
/// matching the paper's second binary output file.
#[derive(Debug)]
pub struct NeuronFaultHook {
    faults: Vec<FaultRecord>,
    log: Mutex<Vec<AppliedFault>>,
    skipped: Mutex<usize>,
}

impl NeuronFaultHook {
    /// Creates a hook applying the given faults.
    pub fn new(faults: Vec<FaultRecord>) -> Self {
        NeuronFaultHook { faults, log: Mutex::new(Vec::new()), skipped: Mutex::new(0) }
    }

    /// Drains the application log.
    pub fn take_log(&self) -> Vec<AppliedFault> {
        std::mem::take(&mut *self.log.lock().unwrap())
    }

    /// Number of faults skipped because their coordinates were out of
    /// bounds for the actual runtime tensor shape.
    pub fn skipped(&self) -> usize {
        *self.skipped.lock().unwrap()
    }
}

impl ForwardHook for NeuronFaultHook {
    fn on_output(&self, _ctx: &LayerCtx, output: &mut Tensor) {
        let dims = output.dims().to_vec();
        for record in &self.faults {
            match neuron_flat_index(record, &dims) {
                Some(flat) => {
                    let data = output.data_mut();
                    let original = data[flat];
                    let (corrupted, direction) = corrupt_value(original, record.value);
                    data[flat] = corrupted;
                    self.log.lock().unwrap().push(AppliedFault {
                        record: *record,
                        original,
                        corrupted,
                        direction,
                    });
                }
                None => *self.skipped.lock().unwrap() += 1,
            }
        }
    }
}

/// Computes the index of a weight fault within a weight tensor.
fn weight_index(record: &FaultRecord, dims: &[usize]) -> Result<Vec<usize>, CoreError> {
    let coords: Vec<usize> = match dims.len() {
        2 => vec![record.channel, record.width],
        4 => vec![record.channel, record.channel_in, record.height, record.width],
        5 => vec![
            record.channel,
            record.channel_in,
            record.depth.unwrap_or(0),
            record.height,
            record.width,
        ],
        _ => {
            return Err(CoreError::FaultOutOfBounds {
                detail: format!("weight rank {} unsupported", dims.len()),
            })
        }
    };
    for (c, d) in coords.iter().zip(dims.iter()) {
        if c >= d {
            return Err(CoreError::FaultOutOfBounds {
                detail: format!("weight coords {coords:?} vs dims {dims:?}"),
            });
        }
    }
    Ok(coords)
}

/// Faults armed on a set of networks; dropping *without* calling
/// [`ArmedFaults::disarm`] leaves them active (the permanent-fault case).
#[derive(Debug)]
pub struct ArmedFaults {
    /// (net_idx, node_id, weight coords, original value) for exact revert.
    weight_undo: Vec<(usize, NodeId, Vec<usize>, f32)>,
    weight_log: Vec<AppliedFault>,
    hooks: Vec<(usize, HookHandle, Arc<NeuronFaultHook>)>,
}

impl ArmedFaults {
    /// Applied weight faults (available immediately) plus all neuron
    /// fault applications logged so far (drained from the hooks).
    pub fn collect_applied(&self) -> Vec<AppliedFault> {
        let mut out = self.weight_log.clone();
        for (_, _, hook) in &self.hooks {
            out.extend(hook.take_log());
        }
        out
    }

    /// Total neuron faults skipped due to out-of-bounds coordinates.
    pub fn skipped_neuron_faults(&self) -> usize {
        self.hooks.iter().map(|(_, _, h)| h.skipped()).sum()
    }

    /// Reverts weight faults bit-exactly and removes neuron hooks.
    ///
    /// `networks` must be the same networks (same order) the faults were
    /// armed on.
    pub fn disarm(self, networks: &mut [&mut Network]) {
        // Revert in reverse order so overlapping faults restore correctly.
        for (net_idx, node_id, coords, original) in self.weight_undo.into_iter().rev() {
            if let Ok(layer) = networks[net_idx].layer_mut(node_id) {
                if let Some(w) = layer.weight_mut() {
                    w.set(&coords, original);
                }
            }
        }
        for (net_idx, handle, _) in self.hooks {
            networks[net_idx].remove_hook(handle);
        }
    }
}

/// Arms a set of fault records on networks, given the resolved targets
/// the records' layer indices refer to.
///
/// Weight faults are applied immediately; neuron faults register hooks
/// that fire on every subsequent forward pass until disarmed.
///
/// # Errors
///
/// Returns [`CoreError::FaultOutOfBounds`] if a weight fault addresses
/// coordinates outside its layer's weight tensor, or if a record's layer
/// index is out of range for `targets`.
pub fn arm_faults(
    networks: &mut [&mut Network],
    targets: &[LayerTarget],
    faults: &[FaultRecord],
    target_kind: InjectionTarget,
) -> Result<ArmedFaults, CoreError> {
    let mut armed = ArmedFaults { weight_undo: Vec::new(), weight_log: Vec::new(), hooks: Vec::new() };
    match target_kind {
        InjectionTarget::Weights => {
            for record in faults {
                let t = targets.get(record.layer).ok_or_else(|| CoreError::FaultOutOfBounds {
                    detail: format!("layer index {} out of range", record.layer),
                })?;
                let coords = weight_index(record, &t.weight_dims)?;
                let layer = networks[t.net_idx].layer_mut(t.node_id)?;
                let w = layer.weight_mut().ok_or_else(|| CoreError::FaultOutOfBounds {
                    detail: format!("node {} has no weights", t.node_id),
                })?;
                let original = w.get(&coords);
                let (corrupted, direction) = corrupt_value(original, record.value);
                w.set(&coords, corrupted);
                armed.weight_undo.push((t.net_idx, t.node_id, coords, original));
                armed.weight_log.push(AppliedFault { record: *record, original, corrupted, direction });
            }
        }
        InjectionTarget::Neurons => {
            // Group faults by (net, node) so each node gets one hook.
            let mut by_node: Vec<((usize, NodeId), Vec<FaultRecord>)> = Vec::new();
            for record in faults {
                let t = targets.get(record.layer).ok_or_else(|| CoreError::FaultOutOfBounds {
                    detail: format!("layer index {} out of range", record.layer),
                })?;
                let key = (t.net_idx, t.node_id);
                match by_node.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, v)) => v.push(*record),
                    None => by_node.push((key, vec![*record])),
                }
            }
            for ((net_idx, node_id), records) in by_node {
                let hook = Arc::new(NeuronFaultHook::new(records));
                let handle = networks[net_idx]
                    .register_hook(node_id, Arc::<NeuronFaultHook>::clone(&hook))?;
                armed.hooks.push((net_idx, handle, hook));
            }
        }
    }
    Ok(armed)
}

/// A faulty model instance produced by the iterator: a clone of the
/// original network with one fault slot armed. The original stays
/// pristine, so "synchronized inference ... of separate DNN instances"
/// (fault-free vs faulty) is a matter of calling both.
#[derive(Debug)]
pub struct FaultyModel {
    network: Network,
    armed: ArmedFaults,
    /// The faults this instance carries.
    pub faults: Vec<FaultRecord>,
}

impl FaultyModel {
    /// Runs the faulty network.
    ///
    /// # Errors
    ///
    /// Propagates network evaluation errors.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, CoreError> {
        Ok(self.network.forward(input)?)
    }

    /// The underlying faulty network (hooks armed).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Applied-fault log: weight corruptions plus every neuron corruption
    /// performed by forward passes so far.
    pub fn applied_faults(&self) -> Vec<AppliedFault> {
        self.armed.collect_applied()
    }

    /// Neuron faults skipped because of shape mismatches.
    pub fn skipped_faults(&self) -> usize {
        self.armed.skipped_neuron_faults()
    }
}

/// The `ptfiwrap` equivalent: owns the pristine model, the scenario and
/// the pre-generated fault matrix, and hands out faulty model instances
/// (paper Listing 1: `wrapper.get_fimodel_iter()` /
/// `next(fault_iter)`).
///
/// # Example
///
/// ```
/// use alfi_core::Ptfiwrap;
/// use alfi_nn::models::{alexnet, ModelConfig};
/// use alfi_scenario::Scenario;
///
/// let cfg = ModelConfig { input_hw: 32, width_mult: 0.0625, ..ModelConfig::default() };
/// let model = alexnet(&cfg);
/// let mut scenario = Scenario::default();
/// scenario.dataset_size = 4;
/// let mut wrapper = Ptfiwrap::new(&model, scenario, &cfg.input_dims(1))?;
/// let faulty = wrapper.next_faulty_model()?;
/// assert_eq!(faulty.faults.len(), 1);
/// # Ok::<(), alfi_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct Ptfiwrap {
    model: Network,
    scenario: Scenario,
    input_dims: Vec<usize>,
    targets: Vec<LayerTarget>,
    matrix: FaultMatrix,
    cursor: usize,
    /// Accumulated fault records for permanent-fault runs.
    permanent_accum: Vec<FaultRecord>,
}

impl Ptfiwrap {
    /// Creates a wrapper around `model`, resolving the scenario's layer
    /// filter and pre-generating the full fault matrix.
    ///
    /// `input_dims` is the reference input shape (batch included) used
    /// for neuron-coordinate bounds.
    ///
    /// # Errors
    ///
    /// Returns scenario/model resolution errors.
    pub fn new(model: &Network, scenario: Scenario, input_dims: &[usize]) -> Result<Self, CoreError> {
        let targets = resolve_targets(&[model], &scenario, &[Some(input_dims.to_vec())])?;
        let matrix = FaultMatrix::generate(&scenario, &targets)?;
        Ok(Ptfiwrap {
            model: model.clone(),
            scenario,
            input_dims: input_dims.to_vec(),
            targets,
            matrix,
            cursor: 0,
            permanent_accum: Vec::new(),
        })
    }

    /// Creates a wrapper replaying a previously persisted fault matrix
    /// instead of generating a new one — the paper's `fault_file`
    /// parameter ("the identical set of faults can be utilized across
    /// various experiments").
    ///
    /// # Errors
    ///
    /// Returns an error if the matrix's injection target disagrees with
    /// the scenario, or on resolution failure.
    pub fn with_fault_matrix(
        model: &Network,
        scenario: Scenario,
        input_dims: &[usize],
        matrix: FaultMatrix,
    ) -> Result<Self, CoreError> {
        if matrix.target != scenario.injection_target {
            return Err(CoreError::CorruptFile {
                kind: "fault",
                reason: format!(
                    "matrix target {:?} disagrees with scenario target {:?}",
                    matrix.target, scenario.injection_target
                ),
            });
        }
        let targets = resolve_targets(&[model], &scenario, &[Some(input_dims.to_vec())])?;
        Ok(Ptfiwrap {
            model: model.clone(),
            scenario,
            input_dims: input_dims.to_vec(),
            targets,
            matrix,
            cursor: 0,
            permanent_accum: Vec::new(),
        })
    }

    /// Creates a wrapper from the conventional `scenarios/default.yml`
    /// file (the paper's Listing-1 contract: "the code expects the file
    /// `default.yml` inside folder `scenarios`"), resolved relative to
    /// the current working directory.
    ///
    /// # Errors
    ///
    /// Returns scenario-file and resolution errors.
    pub fn from_default_scenario(model: &Network, input_dims: &[usize]) -> Result<Self, CoreError> {
        let scenario = Scenario::load("scenarios/default.yml")?;
        Ptfiwrap::new(model, scenario, input_dims)
    }

    /// The current scenario (the paper's `wrapper.get_scenario()`).
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Replaces the scenario, re-resolving targets, regenerating the
    /// fault matrix and resetting the cursor (the paper's
    /// `wrapper.set_scenario()`, used for layer sweeps and other
    /// iterative experiments without manual reconfiguration).
    ///
    /// # Errors
    ///
    /// Returns resolution/generation errors; on error the old state is
    /// retained.
    pub fn set_scenario(&mut self, scenario: Scenario) -> Result<(), CoreError> {
        let targets = resolve_targets(&[&self.model], &scenario, &[Some(self.input_dims.clone())])?;
        let matrix = FaultMatrix::generate(&scenario, &targets)?;
        self.scenario = scenario;
        self.targets = targets;
        self.matrix = matrix;
        self.cursor = 0;
        self.permanent_accum.clear();
        Ok(())
    }

    /// The pristine model.
    pub fn model(&self) -> &Network {
        &self.model
    }

    /// The resolved injection targets.
    pub fn targets(&self) -> &[LayerTarget] {
        &self.targets
    }

    /// The pre-generated fault matrix.
    pub fn fault_matrix(&self) -> &FaultMatrix {
        &self.matrix
    }

    /// Remaining fault slots.
    pub fn remaining_slots(&self) -> usize {
        self.matrix.num_slots().saturating_sub(self.cursor)
    }

    /// Produces the next faulty model instance: a clone of the pristine
    /// model with the next fault slot armed. For permanent-fault
    /// scenarios faults accumulate across calls.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MatrixExhausted`] when all slots are used.
    pub fn next_faulty_model(&mut self) -> Result<FaultyModel, CoreError> {
        if self.cursor >= self.matrix.num_slots() {
            return Err(CoreError::MatrixExhausted);
        }
        let slot: Vec<FaultRecord> = self.matrix.faults_for_slot(self.cursor).to_vec();
        self.cursor += 1;
        let active: Vec<FaultRecord> = match self.scenario.fault_duration {
            FaultDuration::Transient => slot.clone(),
            FaultDuration::Permanent => {
                self.permanent_accum.extend_from_slice(&slot);
                self.permanent_accum.clone()
            }
        };
        let mut network = self.model.clone();
        let armed = {
            let mut nets = [&mut network];
            arm_faults(&mut nets, &self.targets, &active, self.scenario.injection_target)?
        };
        Ok(FaultyModel { network, armed, faults: active })
    }

    /// An iterator over faulty models (the paper's `get_fimodel_iter`).
    /// Yields until the fault matrix is exhausted; arming errors end the
    /// iteration (inspect [`Ptfiwrap::next_faulty_model`] directly for
    /// error details).
    pub fn fimodel_iter(&mut self) -> FimodelIter<'_> {
        FimodelIter { wrapper: self }
    }
}

/// Iterator over faulty model instances. See [`Ptfiwrap::fimodel_iter`].
#[derive(Debug)]
pub struct FimodelIter<'a> {
    wrapper: &'a mut Ptfiwrap,
}

impl Iterator for FimodelIter<'_> {
    type Item = FaultyModel;

    fn next(&mut self) -> Option<FaultyModel> {
        self.wrapper.next_faulty_model().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_nn::models::{alexnet, ModelConfig};
    use alfi_scenario::{FaultCount, FaultMode};

    fn model_cfg() -> ModelConfig {
        ModelConfig { input_hw: 32, width_mult: 0.0625, ..ModelConfig::default() }
    }

    fn scenario() -> Scenario {
        Scenario { dataset_size: 6, batch_size: 1, ..Scenario::default() }
    }

    #[test]
    fn corrupt_value_covers_all_modes() {
        let (v, d) = corrupt_value(1.0, FaultValue::BitFlip(31));
        assert_eq!(v, -1.0);
        assert_eq!(d, Some(FlipDirection::ZeroToOne));
        let (v, d) = corrupt_value(1.0, FaultValue::StuckAt { pos: 23, high: true });
        assert_eq!(v, 1.0); // bit already set
        assert_eq!(d, None);
        let (v, _) = corrupt_value(1.0, FaultValue::Replace(9.0));
        assert_eq!(v, 9.0);
    }

    #[test]
    fn quant_step_flips_in_integer_domain() {
        // 8-bit symmetric, amax = 127 -> scale = 1.0, so q == round(v).
        let q8 = |v: f32, bit: u8| corrupt_value(v, FaultValue::QuantStep { bit, bits: 8, amax: 127.0 });
        // 5 = 0b0000_0101; flipping bit 1 sets it -> 7.
        let (v, d) = q8(5.0, 1);
        assert_eq!(v, 7.0);
        assert_eq!(d, Some(FlipDirection::ZeroToOne));
        // Flipping bit 0 of 5 clears it -> 4.
        let (v, d) = q8(5.0, 0);
        assert_eq!(v, 4.0);
        assert_eq!(d, Some(FlipDirection::OneToZero));
        // Sign bit: 5 | 0x80 = 133 -> -123 in 8-bit two's complement.
        let (v, _) = q8(5.0, 7);
        assert_eq!(v, -123.0);
        // Negative input: -3 = 0b1111_1101; flipping bit 1 -> -1.
        let (v, _) = q8(-3.0, 1);
        assert_eq!(v, -1.0);
        // Values beyond amax clamp to qmax before the flip.
        let (v, _) = q8(1.0e6, 0);
        assert_eq!(v, 126.0);
        // The corruption never leaves the finite fp32 range.
        let (v, _) = corrupt_value(0.5, FaultValue::QuantStep { bit: 15, bits: 16, amax: 2.0 });
        assert!(v.is_finite());
    }

    #[test]
    fn neuron_flat_index_covers_rank3_token_tensors() {
        let r = FaultRecord {
            batch: 1,
            layer: 0,
            channel: 0,
            channel_in: 0,
            depth: None,
            height: 2, // token
            width: 3,  // feature
            value: FaultValue::BitFlip(0),
        };
        let dims = [2usize, 4, 5];
        assert_eq!(neuron_flat_index(&r, &dims), Some((4 + 2) * 5 + 3));
        let mut oob = r;
        oob.height = 4;
        assert_eq!(neuron_flat_index(&oob, &dims), None);
    }

    #[test]
    fn neuron_flat_index_matches_row_major() {
        let r = FaultRecord {
            batch: 1,
            layer: 0,
            channel: 2,
            channel_in: 0,
            depth: None,
            height: 3,
            width: 4,
            value: FaultValue::BitFlip(0),
        };
        let dims = [2usize, 3, 5, 6];
        let flat = neuron_flat_index(&r, &dims).unwrap();
        assert_eq!(flat, ((3 + 2) * 5 + 3) * 6 + 4);
        // out of bounds -> None
        let mut r2 = r;
        r2.batch = 2;
        assert_eq!(neuron_flat_index(&r2, &dims), None);
    }

    #[test]
    fn weight_fault_changes_output_and_disarm_restores_bit_exactly() {
        let model = alexnet(&model_cfg());
        let mut s = scenario();
        s.injection_target = InjectionTarget::Weights;
        s.fault_mode = FaultMode::exponent_bit_flip();
        let mut wrapper = Ptfiwrap::new(&model, s, &model_cfg().input_dims(1)).unwrap();
        let x = Tensor::ones(&model_cfg().input_dims(1));
        let clean = model.forward(&x).unwrap();
        let faulty = wrapper.next_faulty_model().unwrap();
        let out = faulty.forward(&x).unwrap();
        // The corrupted weight is logged with original != corrupted.
        let log = faulty.applied_faults();
        assert_eq!(log.len(), 1);
        assert_ne!(log[0].original.to_bits(), log[0].corrupted.to_bits());
        // Original model must be untouched.
        assert_eq!(model.forward(&x).unwrap().data(), clean.data());
        // (out may or may not differ depending on masking; just ensure it ran)
        assert_eq!(out.dims(), clean.dims());
    }

    #[test]
    fn neuron_fault_corrupts_only_during_forward() {
        let model = alexnet(&model_cfg());
        let mut s = scenario();
        s.injection_target = InjectionTarget::Neurons;
        s.fault_mode = FaultMode::RandomValue { min: 1000.0, max: 1000.1 };
        let mut wrapper = Ptfiwrap::new(&model, s, &model_cfg().input_dims(1)).unwrap();
        let faulty = wrapper.next_faulty_model().unwrap();
        assert!(faulty.applied_faults().is_empty(), "no application before forward");
        let x = Tensor::ones(&model_cfg().input_dims(1));
        faulty.forward(&x).unwrap();
        let log = faulty.applied_faults();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].corrupted, log[0].record_replace_value());
    }

    impl AppliedFault {
        fn record_replace_value(&self) -> f32 {
            match self.record.value {
                FaultValue::Replace(v) => v,
                _ => panic!("expected replace"),
            }
        }
    }

    #[test]
    fn iterator_yields_all_slots_then_stops() {
        let model = alexnet(&model_cfg());
        let mut s = scenario();
        s.dataset_size = 4;
        s.faults_per_image = FaultCount::Fixed(2);
        let mut wrapper = Ptfiwrap::new(&model, s, &model_cfg().input_dims(1)).unwrap();
        assert_eq!(wrapper.remaining_slots(), 4);
        let count = wrapper.fimodel_iter().count();
        assert_eq!(count, 4);
        assert!(matches!(wrapper.next_faulty_model(), Err(CoreError::MatrixExhausted)));
    }

    #[test]
    fn each_slot_gets_distinct_faults() {
        let model = alexnet(&model_cfg());
        let mut wrapper = Ptfiwrap::new(&model, scenario(), &model_cfg().input_dims(1)).unwrap();
        let a = wrapper.next_faulty_model().unwrap().faults;
        let b = wrapper.next_faulty_model().unwrap().faults;
        assert_ne!(a, b);
    }

    #[test]
    fn permanent_faults_accumulate() {
        let model = alexnet(&model_cfg());
        let mut s = scenario();
        s.fault_duration = FaultDuration::Permanent;
        s.injection_target = InjectionTarget::Weights;
        let mut wrapper = Ptfiwrap::new(&model, s, &model_cfg().input_dims(1)).unwrap();
        assert_eq!(wrapper.next_faulty_model().unwrap().faults.len(), 1);
        assert_eq!(wrapper.next_faulty_model().unwrap().faults.len(), 2);
        assert_eq!(wrapper.next_faulty_model().unwrap().faults.len(), 3);
    }

    #[test]
    fn set_scenario_regenerates_and_resets() {
        let model = alexnet(&model_cfg());
        let mut wrapper = Ptfiwrap::new(&model, scenario(), &model_cfg().input_dims(1)).unwrap();
        wrapper.next_faulty_model().unwrap();
        let old_matrix = wrapper.fault_matrix().clone();
        let mut s2 = scenario();
        s2.seed = 99;
        wrapper.set_scenario(s2).unwrap();
        assert_eq!(wrapper.remaining_slots(), wrapper.fault_matrix().num_slots());
        assert_ne!(&old_matrix, wrapper.fault_matrix());
    }

    #[test]
    fn replayed_matrix_reproduces_identical_corruptions() {
        let model = alexnet(&model_cfg());
        let mut s = scenario();
        s.injection_target = InjectionTarget::Weights;
        let mut w1 = Ptfiwrap::new(&model, s.clone(), &model_cfg().input_dims(1)).unwrap();
        let matrix = w1.fault_matrix().clone();
        let f1 = w1.next_faulty_model().unwrap();
        let log1 = f1.applied_faults();

        let mut w2 =
            Ptfiwrap::with_fault_matrix(&model, s, &model_cfg().input_dims(1), matrix).unwrap();
        let f2 = w2.next_faulty_model().unwrap();
        let log2 = f2.applied_faults();
        assert_eq!(log1, log2);
    }

    #[test]
    fn with_fault_matrix_rejects_target_mismatch() {
        let model = alexnet(&model_cfg());
        let mut s = scenario();
        s.injection_target = InjectionTarget::Weights;
        let w = Ptfiwrap::new(&model, s.clone(), &model_cfg().input_dims(1)).unwrap();
        let matrix = w.fault_matrix().clone();
        s.injection_target = InjectionTarget::Neurons;
        assert!(Ptfiwrap::with_fault_matrix(&model, s, &model_cfg().input_dims(1), matrix).is_err());
    }

    #[test]
    fn arm_disarm_round_trip_is_bit_exact() {
        let mut model = alexnet(&model_cfg());
        let snapshot: Vec<Vec<f32>> = model
            .nodes()
            .iter()
            .filter_map(|n| n.layer.weight().map(|w| w.data().to_vec()))
            .collect();
        let mut s = scenario();
        s.injection_target = InjectionTarget::Weights;
        s.dataset_size = 1;
        s.faults_per_image = FaultCount::Fixed(8);
        let targets =
            resolve_targets(&[&model], &s, &[Some(model_cfg().input_dims(1))]).unwrap();
        let matrix = FaultMatrix::generate(&s, &targets).unwrap();
        let armed = {
            let mut nets = [&mut model];
            arm_faults(&mut nets, &targets, &matrix.records, InjectionTarget::Weights).unwrap()
        };
        assert_eq!(armed.collect_applied().len(), 8);
        {
            let mut nets = [&mut model];
            armed.disarm(&mut nets);
        }
        let restored: Vec<Vec<f32>> = model
            .nodes()
            .iter()
            .filter_map(|n| n.layer.weight().map(|w| w.data().to_vec()))
            .collect();
        for (a, b) in snapshot.iter().zip(restored.iter()) {
            let ab: Vec<u32> = a.iter().map(|x| x.to_bits()).collect();
            let bb: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
            assert_eq!(ab, bb);
        }
    }

    #[test]
    fn neuron_hook_skips_out_of_bounds_batches() {
        let model = alexnet(&model_cfg());
        let mut s = scenario();
        s.injection_target = InjectionTarget::Neurons;
        s.batch_size = 4; // faults may target batch index up to 3
        let mut wrapper = Ptfiwrap::new(&model, s, &model_cfg().input_dims(4)).unwrap();
        // Find a slot whose fault targets batch > 0, then run batch of 1.
        loop {
            let faulty = match wrapper.next_faulty_model() {
                Ok(f) => f,
                Err(_) => break,
            };
            if faulty.faults[0].batch > 0 {
                faulty.forward(&Tensor::ones(&model_cfg().input_dims(1))).unwrap();
                assert_eq!(faulty.skipped_faults(), 1);
                assert!(faulty.applied_faults().is_empty());
                return;
            }
        }
        panic!("no fault with batch > 0 generated");
    }
}
