//! Cross-campaign vulnerability reports over a finished run directory.
//!
//! [`analyze_dir`] streams the row artifacts (the columnar store when
//! present, the CSV pair otherwise — both normalize to identical
//! facts), folds in the deterministic records of `events.jsonl` and the
//! saved `scenario.yml`, and produces a [`CampaignReport`] rendered as
//! `report.json` ([`CampaignReport::to_json`]) and `report.md`
//! ([`CampaignReport::to_markdown`]).
//!
//! # Section ordering
//!
//! Reports are golden-pinned, so section ordering is part of the
//! format: layer sections are sorted by resolved injectable-target
//! index (ascending), bit positions ascending with non-bit-addressed
//! faults (`-`) first, fault modes lexicographically, and the full
//! layer × bit × mode cell table by that composite key. The ordering
//! audit test in this module locks the contract.

use crate::rows::{
    csv_is_classification, store_is_classification, stream_csv_rows, stream_store_rows, FaultKey,
    RowFacts,
};
use crate::AnalyzeError;
use alfi_core::stats::{clopper_pearson_interval, wilson_interval, z_for_confidence, BinomialCi};
use alfi_scenario::{CiMethod, Scenario};
use alfi_serde::Json;
use alfi_trace::{EffectClass, EventLog, StopVerdict};
use std::collections::BTreeMap;
use std::path::Path;

/// File name of the JSON report written next to the run artifacts.
pub const REPORT_JSON: &str = "report.json";

/// File name of the Markdown report written next to the run artifacts.
pub const REPORT_MD: &str = "report.md";

/// Format version stamped into `report.json`.
pub const REPORT_FORMAT_VERSION: u32 = 1;

/// Confidence level used when the run has no stop policy to inherit
/// one from.
pub const DEFAULT_CONFIDENCE: f64 = 0.95;

/// A rate with its confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateCi {
    /// Point estimate `hits / samples` (`0` when there are no samples).
    pub rate: f64,
    /// Interval lower bound.
    pub low: f64,
    /// Interval upper bound.
    pub high: f64,
}

impl RateCi {
    fn new(hits: u64, total: u64, z: f64) -> RateCi {
        let ci = wilson_interval(hits as usize, total as usize, z);
        let rate = if total == 0 { 0.0 } else { hits as f64 / total as f64 };
        RateCi { rate, low: ci.low, high: ci.high }
    }

    /// Half the interval width.
    pub fn half_width(&self) -> f64 {
        (self.high - self.low) / 2.0
    }

    /// Whether this interval and `other` are disjoint — the
    /// significance test run diffing uses.
    pub fn separated_from(&self, other: &RateCi) -> bool {
        self.high < other.low || other.high < self.low
    }
}

/// Outcome tallies and rates of one sample population (the whole
/// campaign, one layer, one bit position, one fault mode, or one
/// layer × bit × mode cell).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateBlock {
    /// Classified inferences in this population.
    pub samples: u64,
    /// Rows whose prediction was unchanged.
    pub masked: u64,
    /// Rows whose prediction silently changed.
    pub sdc: u64,
    /// Rows that surfaced NaN/Inf.
    pub due: u64,
    /// Masked fraction (no interval; it is `1 - sdc - due`).
    pub masked_rate: f64,
    /// SDC rate with its Wilson interval.
    pub sdc_ci: RateCi,
    /// DUE rate with its Wilson interval.
    pub due_ci: RateCi,
}

impl RateBlock {
    fn from_tally(t: &Tally, z: f64) -> RateBlock {
        let samples = t.masked + t.sdc + t.due;
        RateBlock {
            samples,
            masked: t.masked,
            sdc: t.sdc,
            due: t.due,
            masked_rate: if samples == 0 { 0.0 } else { t.masked as f64 / samples as f64 },
            sdc_ci: RateCi::new(t.sdc, samples, z),
            due_ci: RateCi::new(t.due, samples, z),
        }
    }

    /// The all-zero population (used by run diffing for a layer one
    /// side never injected). Its intervals are the vacuous `[0, 1]`,
    /// so it can never be part of a significant delta.
    pub fn empty() -> RateBlock {
        RateBlock::from_tally(&Tally::default(), z_for_confidence(DEFAULT_CONFIDENCE))
    }

    pub(crate) fn to_json_fields(self) -> Vec<(String, Json)> {
        vec![
            ("samples".into(), Json::Int(self.samples as i128)),
            ("masked".into(), Json::Int(self.masked as i128)),
            ("sdc".into(), Json::Int(self.sdc as i128)),
            ("due".into(), Json::Int(self.due as i128)),
            ("masked_rate".into(), Json::Float(self.masked_rate)),
            ("sdc_rate".into(), Json::Float(self.sdc_ci.rate)),
            ("sdc_ci".into(), Json::Arr(vec![Json::Float(self.sdc_ci.low), Json::Float(self.sdc_ci.high)])),
            ("due_rate".into(), Json::Float(self.due_ci.rate)),
            ("due_ci".into(), Json::Arr(vec![Json::Float(self.due_ci.low), Json::Float(self.due_ci.high)])),
        ]
    }
}

/// Raw outcome tallies of one population.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Tally {
    pub masked: u64,
    pub sdc: u64,
    pub due: u64,
}

impl Tally {
    fn add(&mut self, outcome: EffectClass) {
        match outcome {
            EffectClass::Masked => self.masked += 1,
            EffectClass::Sdc => self.sdc += 1,
            EffectClass::Due => self.due += 1,
        }
    }
}

/// Achieved-vs-requested precision of a (possibly early-stopped)
/// campaign, reconstructed from `scenario.yml` and the stop records of
/// `events.jsonl`.
#[derive(Debug, Clone, PartialEq)]
pub struct StopReport {
    /// The policy's target CI half-width.
    pub requested_half_width: f64,
    /// The policy's confidence level.
    pub confidence: f64,
    /// Interval construction the policy used (`wilson` /
    /// `clopper-pearson`).
    pub method: String,
    /// Campaign-level SDC half-width achieved over all classified rows,
    /// computed with the policy's method and confidence.
    pub achieved_sdc_half_width: f64,
    /// Campaign-level DUE half-width achieved.
    pub achieved_due_half_width: f64,
    /// Stop decisions recorded in the event log.
    pub decisions: u64,
    /// Layer strata retired before exhaustion, in retirement order.
    pub retired_strata: Vec<usize>,
    /// Whether a whole-campaign stop verdict fired.
    pub stopped_early: bool,
}

/// The deterministic cross-campaign vulnerability report.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Confidence level of every interval in the report.
    pub confidence: f64,
    /// Replay identity from the event-log header (`campaign`, `model`,
    /// `scenario_hash`, `seed`) — deliberately excluding the header's
    /// `threads` field, the one field allowed to differ between
    /// otherwise-identical runs. Empty when the run kept no event log.
    pub run: Vec<(String, String)>,
    /// Scenario fingerprint (FNV-1a of the saved YAML) and headline
    /// scenario numbers, when `scenario.yml` was present.
    pub scenario: Option<(String, u64, u64)>,
    /// Result rows scanned.
    pub rows: u64,
    /// Whole-campaign rates.
    pub overall: RateBlock,
    /// Per-layer rates, sorted by resolved injectable-target index.
    pub layers: Vec<(usize, RateBlock)>,
    /// Per-bit-position rates, ascending; `-1` (rendered `-`) collects
    /// faults that are not bit-addressed.
    pub bits: Vec<(i64, RateBlock)>,
    /// Per-fault-mode rates, modes sorted lexicographically.
    pub modes: Vec<(String, RateBlock)>,
    /// The full layer × bit × mode breakdown, sorted by that composite
    /// key. Only populated cells appear.
    pub cells: Vec<(FaultKey, RateBlock)>,
    /// Deterministic event-log roll-up (items, injections, NaN/Inf
    /// elements), when the run kept an event log.
    pub events: Option<(u64, u64, u64, u64)>,
    /// Early-stop precision summary, when the run had a stop policy.
    pub stop: Option<StopReport>,
}

/// Streaming aggregate state: one tally per population, bounded by the
/// number of distinct keys (never by row count).
#[derive(Default)]
struct Acc {
    rows: u64,
    overall: Tally,
    layers: BTreeMap<usize, Tally>,
    bits: BTreeMap<i64, Tally>,
    modes: BTreeMap<&'static str, Tally>,
    cells: BTreeMap<FaultKey, Tally>,
}

impl Acc {
    fn add(&mut self, facts: RowFacts) {
        self.rows += 1;
        self.overall.add(facts.outcome);
        for key in facts.faults {
            self.layers.entry(key.layer).or_default().add(facts.outcome);
            self.bits.entry(key.bit).or_default().add(facts.outcome);
            self.modes.entry(key.mode).or_default().add(facts.outcome);
            self.cells.entry(key).or_default().add(facts.outcome);
        }
    }
}

fn interval_for(method: CiMethod, hits: u64, total: u64, confidence: f64) -> BinomialCi {
    match method {
        CiMethod::Wilson => wilson_interval(hits as usize, total as usize, z_for_confidence(confidence)),
        CiMethod::ClopperPearson => clopper_pearson_interval(hits as usize, total as usize, confidence),
    }
}

fn stop_report(
    scenario: Option<&Scenario>,
    log: Option<&EventLog>,
    overall: &Tally,
) -> Option<StopReport> {
    let policy = scenario.and_then(|s| s.stop_policy.as_ref())?;
    let samples = overall.masked + overall.sdc + overall.due;
    let sdc = interval_for(policy.method, overall.sdc, samples, policy.confidence);
    let due = interval_for(policy.method, overall.due, samples, policy.confidence);
    let stops = log.map(|l| l.stops.as_slice()).unwrap_or(&[]);
    Some(StopReport {
        requested_half_width: policy.half_width,
        confidence: policy.confidence,
        method: policy.method.to_string(),
        achieved_sdc_half_width: (sdc.high - sdc.low) / 2.0,
        achieved_due_half_width: (due.high - due.low) / 2.0,
        decisions: stops.len() as u64,
        retired_strata: stops
            .iter()
            .filter(|e| e.verdict == StopVerdict::RetireStratum)
            .filter_map(|e| e.stratum)
            .collect(),
        stopped_early: stops.iter().any(|e| e.verdict == StopVerdict::StopCampaign),
    })
}

/// Analyzes a finished run directory into a [`CampaignReport`].
///
/// Row facts come from `rows.alfic` when present (streamed
/// block-by-block), otherwise from the `results_orig.csv` /
/// `results_corr.csv` pair (streamed line-by-line); both sources
/// produce bit-identical reports by construction. `events.jsonl` and
/// `scenario.yml` contribute their deterministic records when present.
/// Directories with an event log but no classification-shaped row
/// artifacts (a pinned trace golden, a detection run) still produce a
/// report with empty rate sections.
///
/// # Errors
///
/// [`AnalyzeError::Missing`] when the directory holds neither row
/// artifacts nor an event log, [`AnalyzeError::Parse`] on malformed
/// artifacts.
pub fn analyze_dir(dir: impl AsRef<Path>) -> Result<CampaignReport, AnalyzeError> {
    let dir = dir.as_ref();
    let store = dir.join("rows.alfic");
    let orig = dir.join("results_orig.csv");
    let corr = dir.join("results_corr.csv");
    let events_path = dir.join(alfi_trace::EVENTS_FILE);
    let scenario_path = dir.join("scenario.yml");

    let mut acc = Acc::default();
    if store.is_file() && store_is_classification(&store)? {
        stream_store_rows(&store, |facts| acc.add(facts))?;
    } else if orig.is_file() && corr.is_file() && csv_is_classification(&orig)? {
        stream_csv_rows(&orig, &corr, |facts| acc.add(facts))?;
    } else if !events_path.is_file() {
        return Err(AnalyzeError::Missing(format!(
            "{}: no classification row artifacts or events.jsonl",
            dir.display()
        )));
    }

    let log = if events_path.is_file() { Some(EventLog::load(&events_path)?) } else { None };
    let scenario = if scenario_path.is_file() {
        let yaml = std::fs::read_to_string(&scenario_path)?;
        let parsed = Scenario::from_yaml_str(&yaml)
            .map_err(|e| AnalyzeError::Parse(format!("scenario.yml: {e}")))?;
        Some((parsed, alfi_trace::hash_hex(yaml.as_bytes())))
    } else {
        None
    };

    let confidence = scenario
        .as_ref()
        .and_then(|(s, _)| s.stop_policy.as_ref())
        .map_or(DEFAULT_CONFIDENCE, |p| p.confidence);
    let z = z_for_confidence(confidence);

    let mut run = Vec::new();
    if let Some(meta) = log.as_ref().and_then(|l| l.header.meta.as_ref()) {
        run.push(("campaign".to_string(), meta.campaign.clone()));
        run.push(("model".to_string(), meta.model.clone()));
        run.push(("scenario_hash".to_string(), meta.scenario_hash.clone()));
        run.push(("seed".to_string(), meta.seed.to_string()));
    }

    let stop = stop_report(scenario.as_ref().map(|(s, _)| s), log.as_ref(), &acc.overall);
    let events = log.as_ref().and_then(|l| l.summary.as_ref()).map(|s| {
        (s.items, s.injections, s.nan, s.inf)
    });

    Ok(CampaignReport {
        confidence,
        run,
        scenario: scenario
            .map(|(s, hash)| (hash, s.seed, s.dataset_size as u64)),
        rows: acc.rows,
        overall: RateBlock::from_tally(&acc.overall, z),
        layers: acc.layers.iter().map(|(k, t)| (*k, RateBlock::from_tally(t, z))).collect(),
        bits: acc.bits.iter().map(|(k, t)| (*k, RateBlock::from_tally(t, z))).collect(),
        modes: acc
            .modes
            .iter()
            .map(|(k, t)| (k.to_string(), RateBlock::from_tally(t, z)))
            .collect(),
        cells: acc.cells.iter().map(|(k, t)| (k.clone(), RateBlock::from_tally(t, z))).collect(),
        events,
        stop,
    })
}

fn bit_label(bit: i64) -> String {
    if bit < 0 {
        "-".to_string()
    } else {
        bit.to_string()
    }
}

impl CampaignReport {
    /// Renders the report as a JSON document with a stable key and
    /// section order.
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("alfi_report_version".into(), Json::Int(REPORT_FORMAT_VERSION as i128)),
            ("confidence".into(), Json::Float(self.confidence)),
        ];
        if !self.run.is_empty() {
            obj.push((
                "run".into(),
                Json::Obj(self.run.iter().map(|(k, v)| (k.clone(), Json::Str(v.clone()))).collect()),
            ));
        }
        if let Some((hash, seed, dataset_size)) = &self.scenario {
            obj.push((
                "scenario".into(),
                Json::Obj(vec![
                    ("hash".into(), Json::Str(hash.clone())),
                    ("seed".into(), Json::Int(*seed as i128)),
                    ("dataset_size".into(), Json::Int(*dataset_size as i128)),
                ]),
            ));
        }
        obj.push(("rows".into(), Json::Int(self.rows as i128)));
        obj.push(("overall".into(), Json::Obj(self.overall.to_json_fields())));
        obj.push((
            "layers".into(),
            Json::Arr(
                self.layers
                    .iter()
                    .map(|(layer, b)| {
                        let mut fields = vec![("layer".into(), Json::Int(*layer as i128))];
                        fields.extend(b.to_json_fields());
                        Json::Obj(fields)
                    })
                    .collect(),
            ),
        ));
        obj.push((
            "bits".into(),
            Json::Arr(
                self.bits
                    .iter()
                    .map(|(bit, b)| {
                        let bit_json =
                            if *bit < 0 { Json::Null } else { Json::Int(*bit as i128) };
                        let mut fields = vec![("bit".into(), bit_json)];
                        fields.extend(b.to_json_fields());
                        Json::Obj(fields)
                    })
                    .collect(),
            ),
        ));
        obj.push((
            "modes".into(),
            Json::Arr(
                self.modes
                    .iter()
                    .map(|(mode, b)| {
                        let mut fields = vec![("mode".into(), Json::Str(mode.clone()))];
                        fields.extend(b.to_json_fields());
                        Json::Obj(fields)
                    })
                    .collect(),
            ),
        ));
        obj.push((
            "cells".into(),
            Json::Arr(
                self.cells
                    .iter()
                    .map(|(key, b)| {
                        let bit_json =
                            if key.bit < 0 { Json::Null } else { Json::Int(key.bit as i128) };
                        let mut fields = vec![
                            ("layer".into(), Json::Int(key.layer as i128)),
                            ("bit".into(), bit_json),
                            ("mode".into(), Json::Str(key.mode.to_string())),
                        ];
                        fields.extend(b.to_json_fields());
                        Json::Obj(fields)
                    })
                    .collect(),
            ),
        ));
        if let Some((items, injections, nan, inf)) = self.events {
            obj.push((
                "events".into(),
                Json::Obj(vec![
                    ("items".into(), Json::Int(items as i128)),
                    ("injections".into(), Json::Int(injections as i128)),
                    ("nan".into(), Json::Int(nan as i128)),
                    ("inf".into(), Json::Int(inf as i128)),
                ]),
            ));
        }
        if let Some(stop) = &self.stop {
            obj.push((
                "stop".into(),
                Json::Obj(vec![
                    ("requested_half_width".into(), Json::Float(stop.requested_half_width)),
                    ("confidence".into(), Json::Float(stop.confidence)),
                    ("method".into(), Json::Str(stop.method.clone())),
                    (
                        "achieved_sdc_half_width".into(),
                        Json::Float(stop.achieved_sdc_half_width),
                    ),
                    (
                        "achieved_due_half_width".into(),
                        Json::Float(stop.achieved_due_half_width),
                    ),
                    ("decisions".into(), Json::Int(stop.decisions as i128)),
                    (
                        "retired_strata".into(),
                        Json::Arr(
                            stop.retired_strata.iter().map(|s| Json::Int(*s as i128)).collect(),
                        ),
                    ),
                    ("stopped_early".into(), Json::Bool(stop.stopped_early)),
                ]),
            ));
        }
        Json::Obj(obj)
    }

    /// Renders the JSON report as the exact `report.json` file bytes.
    pub fn to_json_string(&self) -> String {
        let mut s = self.to_json().pretty();
        s.push('\n');
        s
    }

    /// Renders the report as a human-readable Markdown document with
    /// the same deterministic section ordering as the JSON view.
    pub fn to_markdown(&self) -> String {
        let pct = |r: f64| format!("{:.2}%", r * 100.0);
        let ci = |c: &RateCi| format!("{} [{}, {}]", pct(c.rate), pct(c.low), pct(c.high));
        let mut out = String::from("# ALFI campaign report\n\n");
        for (k, v) in &self.run {
            out.push_str(&format!("- {k}: `{v}`\n"));
        }
        if let Some((hash, seed, dataset_size)) = &self.scenario {
            out.push_str(&format!(
                "- scenario: `{hash}` (seed {seed}, dataset_size {dataset_size})\n"
            ));
        }
        out.push_str(&format!(
            "- rows: {} | confidence: {:.0}%\n\n",
            self.rows,
            self.confidence * 100.0
        ));

        let row_line = |label: &str, b: &RateBlock| {
            format!(
                "| {label} | {} | {} | {} | {} |\n",
                b.samples,
                pct(b.masked_rate),
                ci(&b.sdc_ci),
                ci(&b.due_ci)
            )
        };
        let table_header = "| | samples | masked | sdc [ci] | due [ci] |\n|---|---|---|---|---|\n";

        out.push_str("## Overall\n\n");
        out.push_str(table_header);
        out.push_str(&row_line("campaign", &self.overall));

        if !self.layers.is_empty() {
            out.push_str("\n## Per layer\n\n");
            out.push_str(table_header);
            for (layer, b) in &self.layers {
                out.push_str(&row_line(&format!("layer {layer}"), b));
            }
        }
        if !self.bits.is_empty() {
            out.push_str("\n## Per bit position\n\n");
            out.push_str(table_header);
            for (bit, b) in &self.bits {
                out.push_str(&row_line(&format!("bit {}", bit_label(*bit)), b));
            }
        }
        if !self.modes.is_empty() {
            out.push_str("\n## Per fault mode\n\n");
            out.push_str(table_header);
            for (mode, b) in &self.modes {
                out.push_str(&row_line(mode, b));
            }
        }
        if !self.cells.is_empty() {
            out.push_str("\n## Layer × bit × mode\n\n");
            out.push_str(table_header);
            for (key, b) in &self.cells {
                out.push_str(&row_line(
                    &format!("layer {} bit {} {}", key.layer, bit_label(key.bit), key.mode),
                    b,
                ));
            }
        }
        if let Some((items, injections, nan, inf)) = self.events {
            out.push_str("\n## Event log\n\n");
            out.push_str(&format!(
                "- items: {items} | injections: {injections} | nan: {nan} | inf: {inf}\n"
            ));
        }
        if let Some(stop) = &self.stop {
            out.push_str("\n## Early-stop precision\n\n");
            out.push_str(&format!(
                "- requested ±{:.4} @{:.0}% ({})\n- achieved sdc ±{:.4} due ±{:.4}\n- decisions: {} | retired strata: {:?} | {}\n",
                stop.requested_half_width,
                stop.confidence * 100.0,
                stop.method,
                stop.achieved_sdc_half_width,
                stop.achieved_due_half_width,
                stop.decisions,
                stop.retired_strata,
                if stop.stopped_early { "stopped early" } else { "ran to completion" }
            ));
        }
        out
    }
}

/// Writes `report.json` and `report.md` into `dir`.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_report_files(report: &CampaignReport, dir: impl AsRef<Path>) -> Result<(), AnalyzeError> {
    let dir = dir.as_ref();
    std::fs::write(dir.join(REPORT_JSON), report.to_json_string())?;
    std::fs::write(dir.join(REPORT_MD), report.to_markdown())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rows::RowFacts;

    fn facts(outcome: EffectClass, layer: usize, bit: i64, mode: &'static str) -> RowFacts {
        RowFacts { outcome, faults: vec![FaultKey { layer, bit, mode }] }
    }

    fn sample_report() -> CampaignReport {
        let mut acc = Acc::default();
        // Deliberately out-of-order arrivals: the report must sort.
        acc.add(facts(EffectClass::Sdc, 6, 30, "bitflip"));
        acc.add(facts(EffectClass::Masked, 3, -1, "replace"));
        acc.add(facts(EffectClass::Due, 6, 2, "stuck_at"));
        acc.add(facts(EffectClass::Masked, 3, 30, "bitflip"));
        acc.add(facts(EffectClass::Masked, 0, 5, "quant"));
        let z = z_for_confidence(DEFAULT_CONFIDENCE);
        CampaignReport {
            confidence: DEFAULT_CONFIDENCE,
            run: Vec::new(),
            scenario: None,
            rows: acc.rows,
            overall: RateBlock::from_tally(&acc.overall, z),
            layers: acc.layers.iter().map(|(k, t)| (*k, RateBlock::from_tally(t, z))).collect(),
            bits: acc.bits.iter().map(|(k, t)| (*k, RateBlock::from_tally(t, z))).collect(),
            modes: acc
                .modes
                .iter()
                .map(|(k, t)| (k.to_string(), RateBlock::from_tally(t, z)))
                .collect(),
            cells: acc
                .cells
                .iter()
                .map(|(k, t)| (k.clone(), RateBlock::from_tally(t, z)))
                .collect(),
            events: None,
            stop: None,
        }
    }

    /// Ordering audit: layers ascending by resolved target index, bit
    /// positions ascending with unaddressed faults first, modes
    /// lexicographic, cells by the composite key — independent of
    /// arrival order, so goldens never churn.
    #[test]
    fn report_sections_are_deterministically_ordered() {
        let r = sample_report();
        let layer_order: Vec<usize> = r.layers.iter().map(|(l, _)| *l).collect();
        assert_eq!(layer_order, vec![0, 3, 6]);
        let bit_order: Vec<i64> = r.bits.iter().map(|(b, _)| *b).collect();
        assert_eq!(bit_order, vec![-1, 2, 5, 30]);
        let mode_order: Vec<&str> = r.modes.iter().map(|(m, _)| m.as_str()).collect();
        assert_eq!(mode_order, vec!["bitflip", "quant", "replace", "stuck_at"]);
        let mut sorted_cells = r.cells.clone();
        sorted_cells.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(r.cells, sorted_cells, "cell table must arrive pre-sorted");
        // And the rendered views list them in the same order.
        let md = r.to_markdown();
        let l0 = md.find("layer 0").unwrap();
        let l3 = md.find("layer 3").unwrap();
        let l6 = md.find("layer 6").unwrap();
        assert!(l0 < l3 && l3 < l6, "{md}");
    }

    #[test]
    fn json_and_markdown_are_pure_functions_of_the_report() {
        let r = sample_report();
        assert_eq!(r.to_json_string(), r.to_json_string());
        assert_eq!(r.to_markdown(), r.to_markdown());
        let parsed = Json::parse(&r.to_json_string()).unwrap();
        assert_eq!(parsed.get("rows").and_then(Json::as_int), Some(5));
        assert_eq!(
            parsed.get("overall").and_then(|o| o.get("sdc")).and_then(Json::as_int),
            Some(1)
        );
    }

    #[test]
    fn rate_blocks_use_wilson_bounds() {
        let b = RateBlock::from_tally(&Tally { masked: 90, sdc: 10, due: 0 }, z_for_confidence(0.95));
        assert_eq!(b.samples, 100);
        assert!((b.sdc_ci.rate - 0.10).abs() < 1e-12);
        assert!((b.sdc_ci.low - 0.0552).abs() < 0.002);
        assert!((b.sdc_ci.high - 0.1744).abs() < 0.002);
        assert_eq!(b.due_ci.low, 0.0);
        let empty = RateBlock::empty();
        assert_eq!(empty.samples, 0);
        assert_eq!((empty.sdc_ci.low, empty.sdc_ci.high), (0.0, 1.0));
    }

    #[test]
    fn interval_separation_is_the_significance_test() {
        let a = RateCi { rate: 0.1, low: 0.05, high: 0.15 };
        let b = RateCi { rate: 0.4, low: 0.3, high: 0.5 };
        let c = RateCi { rate: 0.12, low: 0.08, high: 0.2 };
        assert!(a.separated_from(&b) && b.separated_from(&a));
        assert!(!a.separated_from(&c) && !c.separated_from(&a));
    }
}
