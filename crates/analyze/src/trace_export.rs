//! Chrome-trace / Perfetto export of the deterministic event log.
//!
//! [`chrome_trace`] converts an `events.jsonl` log into the Chrome
//! trace-event JSON format (loadable in `chrome://tracing` and
//! Perfetto's legacy importer). The artifacts deliberately carry **no
//! wall-clock timestamps** (that is what keeps them byte-identical
//! across thread counts), so the export synthesizes deterministic
//! *replay-ordinal* time: injection event `i` occupies the tick window
//! `[i·TICK, (i+1)·TICK)` in recorded row order, and stop decisions
//! land at their armed-scope boundary (`scope_index · TICK`). The
//! timeline therefore shows *ordering and attribution*, not duration —
//! [`self_time_table`] renders the matching flame-style per-lane
//! attribution.

use crate::AnalyzeError;
use alfi_serde::Json;
use alfi_trace::{EventLog, InjectionEvent};
use std::collections::BTreeMap;
use std::path::Path;

/// Default output file name for the exported trace.
pub const TRACE_FILE: &str = "trace.json";

/// Synthetic microseconds per replay ordinal — one injection event
/// occupies one tick.
pub const TICK_US: i128 = 10;

/// Process id of the injection lanes (one thread lane per injectable
/// layer).
const PID_INJECT: i128 = 1;

/// Process id of the stop-policy lane.
const PID_STOP: i128 = 2;

fn meta_event(pid: i128, tid: i128, name: &str, arg: &str) -> Json {
    Json::Obj(vec![
        ("ph".into(), Json::Str("M".into())),
        ("pid".into(), Json::Int(pid)),
        ("tid".into(), Json::Int(tid)),
        ("name".into(), Json::Str(name.into())),
        (
            "args".into(),
            Json::Obj(vec![("name".into(), Json::Str(arg.into()))]),
        ),
    ])
}

fn injection_event(ordinal: usize, ev: &InjectionEvent) -> Json {
    let bit = match ev.bit {
        Some(b) => b.to_string(),
        None => "-".to_string(),
    };
    Json::Obj(vec![
        ("name".into(), Json::Str(format!("inject L{} b{}", ev.layer, bit))),
        ("cat".into(), Json::Str("injection".into())),
        ("ph".into(), Json::Str("X".into())),
        ("pid".into(), Json::Int(PID_INJECT)),
        ("tid".into(), Json::Int(ev.layer as i128)),
        ("ts".into(), Json::Int(ordinal as i128 * TICK_US)),
        ("dur".into(), Json::Int(TICK_US)),
        (
            "args".into(),
            Json::Obj(vec![
                ("image_id".into(), Json::Int(ev.image_id as i128)),
                (
                    "bit".into(),
                    match ev.bit {
                        Some(b) => Json::Int(b as i128),
                        None => Json::Null,
                    },
                ),
                ("original".into(), Json::Float(ev.original as f64)),
                ("corrupted".into(), Json::Float(ev.corrupted as f64)),
            ]),
        ),
    ])
}

/// Converts a parsed event log into a Chrome trace-event JSON document.
/// Pure and deterministic: timestamps are replay ordinals, never wall
/// clock, and the event header's `threads` field is excluded.
pub fn chrome_trace(log: &EventLog) -> Json {
    let mut events = Vec::new();
    events.push(meta_event(PID_INJECT, 0, "process_name", "alfi injections"));
    let layers: std::collections::BTreeSet<usize> =
        log.injections.iter().map(|ev| ev.layer).collect();
    for layer in &layers {
        events.push(meta_event(
            PID_INJECT,
            *layer as i128,
            "thread_name",
            &format!("layer {layer}"),
        ));
    }
    if !log.stops.is_empty() {
        events.push(meta_event(PID_STOP, 0, "process_name", "alfi stop policy"));
    }
    for (i, ev) in log.injections.iter().enumerate() {
        events.push(injection_event(i, ev));
    }
    for ev in &log.stops {
        events.push(Json::Obj(vec![
            ("name".into(), Json::Str(format!("{} @scope {}", ev.verdict.name(), ev.scope_index))),
            ("cat".into(), Json::Str("stop".into())),
            ("ph".into(), Json::Str("i".into())),
            ("pid".into(), Json::Int(PID_STOP)),
            ("tid".into(), Json::Int(ev.stratum.map_or(0, |s| s as i128))),
            ("ts".into(), Json::Int(ev.scope_index as i128 * TICK_US)),
            ("s".into(), Json::Str("g".into())),
            (
                "args".into(),
                Json::Obj(vec![
                    ("samples".into(), Json::Int(ev.samples as i128)),
                    ("sdc".into(), Json::Int(ev.sdc as i128)),
                    ("due".into(), Json::Int(ev.due as i128)),
                    ("half_width".into(), Json::Float(ev.half_width)),
                ]),
            ),
        ]));
    }

    let mut other = Vec::new();
    if let Some(meta) = &log.header.meta {
        other.push(("campaign".to_string(), Json::Str(meta.campaign.clone())));
        other.push(("model".to_string(), Json::Str(meta.model.clone())));
        other.push(("scenario_hash".to_string(), Json::Str(meta.scenario_hash.clone())));
        other.push(("seed".to_string(), Json::Int(meta.seed as i128)));
    }
    Json::Obj(vec![
        ("displayTimeUnit".into(), Json::Str("ms".into())),
        ("otherData".into(), Json::Obj(other)),
        ("traceEvents".into(), Json::Arr(events)),
    ])
}

/// One lane of the self-time attribution table.
#[derive(Debug, Clone, PartialEq)]
pub struct SelfTimeRow {
    /// Lane label (`layer N` or `stop policy`).
    pub lane: String,
    /// Events attributed to the lane.
    pub events: u64,
    /// Synthetic self time in ticks (events × [`TICK_US`]).
    pub ticks_us: u64,
    /// Share of the total, in `[0, 1]`.
    pub share: f64,
}

/// Flame-style self-time attribution per lane — with ordinal time,
/// "self time" is event count × tick, i.e. attribution shares, which
/// is exactly what the wall-clock-free artifacts can support.
pub fn self_time_table(log: &EventLog) -> Vec<SelfTimeRow> {
    let mut per_layer: BTreeMap<usize, u64> = BTreeMap::new();
    for ev in &log.injections {
        *per_layer.entry(ev.layer).or_insert(0) += 1;
    }
    let total = log.injections.len() as u64 + log.stops.len() as u64;
    let share = |n: u64| if total == 0 { 0.0 } else { n as f64 / total as f64 };
    let mut rows: Vec<SelfTimeRow> = per_layer
        .iter()
        .map(|(layer, n)| SelfTimeRow {
            lane: format!("layer {layer}"),
            events: *n,
            ticks_us: *n * TICK_US as u64,
            share: share(*n),
        })
        .collect();
    if !log.stops.is_empty() {
        let n = log.stops.len() as u64;
        rows.push(SelfTimeRow {
            lane: "stop policy".to_string(),
            events: n,
            ticks_us: n * TICK_US as u64,
            share: share(n),
        });
    }
    rows
}

/// Renders [`self_time_table`] as aligned text.
pub fn render_self_time(rows: &[SelfTimeRow]) -> String {
    let mut out = String::from("lane            events   ticks_us   share\n");
    for r in rows {
        out.push_str(&format!(
            "{:<15} {:>6} {:>10} {:>6.1}%\n",
            r.lane,
            r.events,
            r.ticks_us,
            r.share * 100.0
        ));
    }
    out
}

/// Loads `events.jsonl` from a run directory and exports it: returns
/// the Chrome-trace JSON text (with trailing newline) and the rendered
/// self-time table.
///
/// # Errors
///
/// [`AnalyzeError::Missing`] when the directory has no event log,
/// [`AnalyzeError::Parse`] when it is malformed.
pub fn export_dir(dir: impl AsRef<Path>) -> Result<(String, String), AnalyzeError> {
    let path = dir.as_ref().join(alfi_trace::EVENTS_FILE);
    if !path.is_file() {
        return Err(AnalyzeError::Missing(format!("{}: no events.jsonl", dir.as_ref().display())));
    }
    let log = EventLog::load(&path)?;
    let mut json = chrome_trace(&log).pretty();
    json.push('\n');
    Ok((json, render_self_time(&self_time_table(&log))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alfi_trace::{Recorder, RunMeta, StopEvent, StopVerdict};

    fn sample_log() -> EventLog {
        let rec = Recorder::new();
        rec.set_meta(RunMeta {
            campaign: "classification".into(),
            model: "alexnet".into(),
            scenario_hash: alfi_trace::hash_hex(b"demo"),
            seed: 7,
            threads: 4,
        });
        for i in 0..3u8 {
            rec.record_injection(InjectionEvent {
                image_id: i as u64,
                layer: if i == 2 { 5 } else { 2 },
                bit: if i == 1 { None } else { Some(30) },
                original: 1.0,
                corrupted: -2.0e30,
            });
        }
        rec.record_stop(StopEvent {
            verdict: StopVerdict::StopCampaign,
            stratum: None,
            scope_index: 16,
            samples: 16,
            sdc: 4,
            due: 1,
            sdc_ci: (0.1, 0.5),
            due_ci: (0.0, 0.3),
            half_width: 0.2,
        });
        EventLog::parse(&rec.events_jsonl()).unwrap()
    }

    /// Chrome-trace schema check: every record has `ph`/`pid`/`tid`,
    /// complete events carry integer `ts`/`dur`, and every timestamp is
    /// a replay ordinal (a multiple of the tick — wall clock would not
    /// be).
    #[test]
    fn export_is_schema_valid_and_ordinal_timed() {
        let json = chrome_trace(&sample_log());
        let text = json.pretty();
        let parsed = Json::parse(&text).unwrap();
        let events = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(!events.is_empty());
        let mut complete = 0;
        for ev in events {
            let ph = ev.get("ph").and_then(Json::as_str).unwrap();
            assert!(matches!(ph, "M" | "X" | "i"), "unknown phase {ph}");
            assert!(ev.get("pid").and_then(Json::as_int).is_some());
            assert!(ev.get("tid").and_then(Json::as_int).is_some());
            assert!(ev.get("name").and_then(Json::as_str).is_some());
            if ph == "X" {
                complete += 1;
                let ts = ev.get("ts").and_then(Json::as_int).unwrap();
                let dur = ev.get("dur").and_then(Json::as_int).unwrap();
                assert_eq!(ts % TICK_US, 0, "ts {ts} is not a replay ordinal");
                assert_eq!(dur, TICK_US);
            }
        }
        assert_eq!(complete, 3);
        // The header's `threads` field must never leak into the export.
        assert!(!text.contains("threads"), "{text}");
    }

    #[test]
    fn export_is_deterministic() {
        let log = sample_log();
        assert_eq!(chrome_trace(&log).pretty(), chrome_trace(&log).pretty());
    }

    #[test]
    fn self_time_attributes_per_lane() {
        let rows = self_time_table(&sample_log());
        assert_eq!(rows.len(), 3); // layer 2, layer 5, stop policy
        assert_eq!(rows[0].lane, "layer 2");
        assert_eq!(rows[0].events, 2);
        assert_eq!(rows[1].lane, "layer 5");
        let total: f64 = rows.iter().map(|r| r.share).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let text = render_self_time(&rows);
        assert!(text.contains("layer 2") && text.contains("stop policy"), "{text}");
    }
}
