//! CI-aware comparison of two campaign reports.
//!
//! [`diff_reports`] lines up two [`CampaignReport`]s (hardened vs
//! unhardened, two kernel paths, two ViT depths, two thread counts…)
//! and computes per-layer and whole-campaign SDC/DUE rate deltas. A
//! delta is flagged **significant** only when the two confidence
//! intervals separate (are disjoint) — overlapping intervals mean the
//! observed difference is within sampling noise at the reports'
//! confidence level, which is precisely the trap naive rate
//! subtraction falls into on small campaigns.

use crate::report::{CampaignReport, RateBlock};
use alfi_serde::Json;
use std::collections::BTreeSet;

/// One compared population: both sides' blocks plus the deltas.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRow {
    /// Rates of run A.
    pub a: RateBlock,
    /// Rates of run B.
    pub b: RateBlock,
    /// `b.sdc_rate - a.sdc_rate`.
    pub sdc_delta: f64,
    /// Whether the SDC intervals separate.
    pub sdc_significant: bool,
    /// `b.due_rate - a.due_rate`.
    pub due_delta: f64,
    /// Whether the DUE intervals separate.
    pub due_significant: bool,
}

impl DeltaRow {
    fn new(a: RateBlock, b: RateBlock) -> DeltaRow {
        DeltaRow {
            a,
            b,
            sdc_delta: b.sdc_ci.rate - a.sdc_ci.rate,
            sdc_significant: a.sdc_ci.separated_from(&b.sdc_ci),
            due_delta: b.due_ci.rate - a.due_ci.rate,
            due_significant: a.due_ci.separated_from(&b.due_ci),
        }
    }

    fn to_json_fields(&self) -> Vec<(String, Json)> {
        vec![
            ("a".into(), Json::Obj(self.a.to_json_fields())),
            ("b".into(), Json::Obj(self.b.to_json_fields())),
            ("sdc_delta".into(), Json::Float(self.sdc_delta)),
            ("sdc_significant".into(), Json::Bool(self.sdc_significant)),
            ("due_delta".into(), Json::Float(self.due_delta)),
            ("due_significant".into(), Json::Bool(self.due_significant)),
        ]
    }
}

/// The comparison of two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportDiff {
    /// Replay identity of run A (from its report's `run` section).
    pub a_run: Vec<(String, String)>,
    /// Replay identity of run B.
    pub b_run: Vec<(String, String)>,
    /// Whole-campaign comparison.
    pub overall: DeltaRow,
    /// Per-layer comparison over the union of both runs' layers,
    /// sorted by layer index. A layer one run never injected
    /// contributes an empty block (vacuous `[0, 1]` interval), so it
    /// can never be significant.
    pub layers: Vec<(usize, DeltaRow)>,
}

/// Diffs two reports. Pure and deterministic: the output depends only
/// on the two inputs.
pub fn diff_reports(a: &CampaignReport, b: &CampaignReport) -> ReportDiff {
    let layer_block = |r: &CampaignReport, layer: usize| {
        r.layers
            .iter()
            .find(|(l, _)| *l == layer)
            .map(|(_, b)| *b)
            .unwrap_or_else(RateBlock::empty)
    };
    let layers: BTreeSet<usize> = a
        .layers
        .iter()
        .map(|(l, _)| *l)
        .chain(b.layers.iter().map(|(l, _)| *l))
        .collect();
    ReportDiff {
        a_run: a.run.clone(),
        b_run: b.run.clone(),
        overall: DeltaRow::new(a.overall, b.overall),
        layers: layers
            .into_iter()
            .map(|l| (l, DeltaRow::new(layer_block(a, l), layer_block(b, l))))
            .collect(),
    }
}

impl ReportDiff {
    /// Renders the diff as a JSON document with stable ordering.
    pub fn to_json(&self) -> Json {
        let run_obj = |run: &[(String, String)]| {
            Json::Obj(run.iter().map(|(k, v)| (k.clone(), Json::Str(v.clone()))).collect())
        };
        Json::Obj(vec![
            ("a".into(), run_obj(&self.a_run)),
            ("b".into(), run_obj(&self.b_run)),
            ("overall".into(), Json::Obj(self.overall.to_json_fields())),
            (
                "layers".into(),
                Json::Arr(
                    self.layers
                        .iter()
                        .map(|(layer, d)| {
                            let mut fields = vec![("layer".into(), Json::Int(*layer as i128))];
                            fields.extend(d.to_json_fields());
                            Json::Obj(fields)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the diff as the exact JSON file bytes.
    pub fn to_json_string(&self) -> String {
        let mut s = self.to_json().pretty();
        s.push('\n');
        s
    }

    /// Renders the diff as a Markdown document.
    pub fn to_markdown(&self) -> String {
        let pct = |r: f64| format!("{:+.2}pp", r * 100.0);
        let mut out = String::from("# ALFI run diff\n\n");
        let name = |run: &[(String, String)], fallback: &str| {
            run.iter()
                .find(|(k, _)| k == "model")
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| fallback.to_string())
        };
        out.push_str(&format!(
            "- A: {} | B: {}\n\n",
            name(&self.a_run, "run A"),
            name(&self.b_run, "run B")
        ));
        out.push_str(
            "| | sdc A | sdc B | Δsdc | sig | due A | due B | Δdue | sig |\n|---|---|---|---|---|---|---|---|---|\n",
        );
        let fmt = |label: &str, d: &DeltaRow| {
            format!(
                "| {label} | {:.4} | {:.4} | {} | {} | {:.4} | {:.4} | {} | {} |\n",
                d.a.sdc_ci.rate,
                d.b.sdc_ci.rate,
                pct(d.sdc_delta),
                if d.sdc_significant { "**yes**" } else { "no" },
                d.a.due_ci.rate,
                d.b.due_ci.rate,
                pct(d.due_delta),
                if d.due_significant { "**yes**" } else { "no" },
            )
        };
        out.push_str(&fmt("overall", &self.overall));
        for (layer, d) in &self.layers {
            out.push_str(&fmt(&format!("layer {layer}"), d));
        }
        out.push_str(
            "\nSignificance = the two runs' confidence intervals are disjoint at the reports' confidence level.\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{analyze_dir, RateCi};

    fn block(masked: u64, sdc: u64, due: u64) -> RateBlock {
        let samples = masked + sdc + due;
        let z = alfi_core::stats::z_for_confidence(0.95);
        let ci = |hits: u64| {
            let w = alfi_core::stats::wilson_interval(hits as usize, samples as usize, z);
            RateCi {
                rate: if samples == 0 { 0.0 } else { hits as f64 / samples as f64 },
                low: w.low,
                high: w.high,
            }
        };
        RateBlock {
            samples,
            masked,
            sdc,
            due,
            masked_rate: if samples == 0 { 0.0 } else { masked as f64 / samples as f64 },
            sdc_ci: ci(sdc),
            due_ci: ci(due),
        }
    }

    fn report_with_layers(layers: Vec<(usize, RateBlock)>, overall: RateBlock) -> CampaignReport {
        CampaignReport {
            confidence: 0.95,
            run: Vec::new(),
            scenario: None,
            rows: overall.samples,
            overall,
            layers,
            bits: Vec::new(),
            modes: Vec::new(),
            cells: Vec::new(),
            events: None,
            stop: None,
        }
    }

    #[test]
    fn separated_intervals_flag_significance_and_overlap_does_not() {
        // 5/500 vs 200/500 SDC: intervals far apart -> significant.
        let a = report_with_layers(vec![(0, block(495, 5, 0))], block(495, 5, 0));
        let b = report_with_layers(vec![(0, block(300, 200, 0))], block(300, 200, 0));
        let d = diff_reports(&a, &b);
        assert!(d.overall.sdc_significant);
        assert!(d.overall.sdc_delta > 0.35);
        assert!(!d.overall.due_significant, "0 vs 0 DUE must not be significant");
        // 10/100 vs 13/100: overlapping intervals -> noise.
        let c = report_with_layers(vec![(0, block(90, 10, 0))], block(90, 10, 0));
        let e = report_with_layers(vec![(0, block(87, 13, 0))], block(87, 13, 0));
        assert!(!diff_reports(&c, &e).overall.sdc_significant);
    }

    #[test]
    fn layer_union_includes_one_sided_layers_without_significance() {
        let a = report_with_layers(vec![(2, block(10, 30, 0))], block(10, 30, 0));
        let b = report_with_layers(vec![(7, block(40, 0, 0))], block(40, 0, 0));
        let d = diff_reports(&a, &b);
        let layers: Vec<usize> = d.layers.iter().map(|(l, _)| *l).collect();
        assert_eq!(layers, vec![2, 7]);
        let l2 = &d.layers[0].1;
        assert_eq!(l2.b.samples, 0);
        assert!(!l2.sdc_significant, "a vacuous [0,1] interval can never separate");
    }

    #[test]
    fn self_diff_is_all_zero_and_insignificant() {
        let a = report_with_layers(vec![(0, block(90, 8, 2))], block(90, 8, 2));
        let d = diff_reports(&a, &a);
        assert_eq!(d.overall.sdc_delta, 0.0);
        assert!(!d.overall.sdc_significant && !d.overall.due_significant);
        // Renderers are deterministic.
        assert_eq!(d.to_json_string(), d.to_json_string());
        assert!(d.to_markdown().contains("overall"));
    }

    #[test]
    fn diff_is_usable_on_missing_dirs_error() {
        let err = analyze_dir(std::env::temp_dir().join("alfi_analyze_nonexistent_dir"));
        assert!(err.is_err());
    }
}
