//! Streaming row sources: normalize the two row-artifact formats (the
//! `results_*.csv` pair and the columnar `rows.alfic` store) into one
//! per-row fact record, so every downstream aggregate is identical
//! whichever format the campaign wrote.
//!
//! Classification mirrors the engine's own row classifier: a row is
//! DUE when the corrupted inference surfaced NaN/Inf elements or a
//! non-finite top-1 probability, SDC when the top-1 class silently
//! changed against the fault-free run, and masked otherwise.

use crate::AnalyzeError;
use alfi_store::{StoreReader, Value};
use alfi_trace::EffectClass;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// One fault coordinate a row's outcome is attributed to.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultKey {
    /// Index into the model's injectable-layer list.
    pub layer: usize,
    /// Bit position; `-1` for faults that are not bit-addressed
    /// (value replacement).
    pub bit: i64,
    /// Stable fault-mode name (`bitflip`, `quant`, `replace`,
    /// `stuck_at`).
    pub mode: &'static str,
}

/// The per-row facts every aggregate is built from.
#[derive(Debug, Clone)]
pub(crate) struct RowFacts {
    pub outcome: EffectClass,
    pub faults: Vec<FaultKey>,
}

/// Parses one `fault_bits` cell (`30`, `s31`, `v`, `q5`) into its bit
/// position and mode name.
pub(crate) fn parse_bit_cell(cell: &str) -> (i64, &'static str) {
    if cell == "v" {
        (-1, "replace")
    } else if let Some(pos) = cell.strip_prefix('s') {
        (pos.parse().unwrap_or(-1), "stuck_at")
    } else if let Some(bit) = cell.strip_prefix('q') {
        (bit.parse().unwrap_or(-1), "quant")
    } else if let Ok(bit) = cell.parse::<i64>() {
        (bit, "bitflip")
    } else {
        (-1, "unknown")
    }
}

fn fault_keys(layers_cell: &str, bits_cell: &str) -> Vec<FaultKey> {
    if layers_cell.is_empty() {
        return Vec::new();
    }
    let layers = layers_cell.split(';');
    let mut bits = bits_cell.split(';');
    layers
        .map(|l| {
            let (bit, mode) = parse_bit_cell(bits.next().unwrap_or(""));
            FaultKey { layer: l.parse().unwrap_or(usize::MAX), bit, mode }
        })
        .collect()
}

/// The campaign-level row classification, shared verbatim between the
/// two sources: `corr_top1`/`orig_top1` are the top-1 class ids (`None`
/// when the top-k list was empty), `corr_p1` the corrupted top-1
/// probability, `nonfinite` the corrupted inference's NaN+Inf element
/// count.
fn classify(
    orig_top1: Option<u64>,
    corr_top1: Option<u64>,
    corr_p1: Option<f32>,
    nonfinite: u64,
) -> EffectClass {
    if nonfinite > 0 || corr_p1.is_some_and(|p| !p.is_finite()) {
        EffectClass::Due
    } else if orig_top1 != corr_top1 {
        EffectClass::Sdc
    } else {
        EffectClass::Masked
    }
}

/// Column positions resolved from a CSV header line.
struct CsvCols {
    top1: usize,
    top1_p: usize,
    fault_layers: usize,
    fault_bits: usize,
    nan: usize,
    inf: usize,
}

fn csv_cols(header: &str, file: &str) -> Result<CsvCols, AnalyzeError> {
    let names: Vec<&str> = header.trim_end().split(',').collect();
    let find = |name: &str| {
        names.iter().position(|n| *n == name).ok_or_else(|| {
            AnalyzeError::Parse(format!("{file}: header lacks a `{name}` column"))
        })
    };
    Ok(CsvCols {
        top1: find("top1")?,
        top1_p: find("top1_p")?,
        fault_layers: find("fault_layers")?,
        fault_bits: find("fault_bits")?,
        nan: find("nan_count")?,
        inf: find("inf_count")?,
    })
}

fn cell<'l>(cells: &[&'l str], idx: usize) -> &'l str {
    cells.get(idx).copied().unwrap_or("")
}

fn opt_u64(s: &str) -> Option<u64> {
    if s.is_empty() {
        None
    } else {
        s.parse().ok()
    }
}

/// Whether a CSV row artifact carries the classification header the
/// analyzer understands (detection rows have a different shape and
/// contribute only their event log to a report).
pub(crate) fn csv_is_classification(path: &Path) -> Result<bool, AnalyzeError> {
    use std::io::Read;
    let mut head = String::new();
    std::fs::File::open(path)?.take(4096).read_to_string(&mut head)?;
    let header = head.lines().next().unwrap_or("");
    Ok(csv_cols(header, "results_orig.csv").is_ok())
}

/// Streams the CSV artifact pair line-by-line (never materialized),
/// feeding one [`RowFacts`] per aligned row pair into `f`.
pub(crate) fn stream_csv_rows(
    orig_path: &Path,
    corr_path: &Path,
    mut f: impl FnMut(RowFacts),
) -> Result<u64, AnalyzeError> {
    let orig = BufReader::new(std::fs::File::open(orig_path)?);
    let corr = BufReader::new(std::fs::File::open(corr_path)?);
    let mut orig_lines = orig.lines();
    let mut corr_lines = corr.lines();
    let orig_header = orig_lines.next().transpose()?.unwrap_or_default();
    let corr_header = corr_lines.next().transpose()?.unwrap_or_default();
    let ocols = csv_cols(&orig_header, "results_orig.csv")?;
    let ccols = csv_cols(&corr_header, "results_corr.csv")?;
    let mut rows = 0u64;
    loop {
        let (o, c) = match (orig_lines.next().transpose()?, corr_lines.next().transpose()?) {
            (Some(o), Some(c)) => (o, c),
            (None, None) => break,
            _ => {
                return Err(AnalyzeError::Parse(
                    "results_orig.csv / results_corr.csv row counts differ".into(),
                ))
            }
        };
        if o.trim().is_empty() && c.trim().is_empty() {
            continue;
        }
        let oc: Vec<&str> = o.trim_end().split(',').collect();
        let cc: Vec<&str> = c.trim_end().split(',').collect();
        let nonfinite = cell(&cc, ccols.nan).parse::<u64>().unwrap_or(0)
            + cell(&cc, ccols.inf).parse::<u64>().unwrap_or(0);
        let corr_p1 = match cell(&cc, ccols.top1_p) {
            "" => None,
            p => p.parse::<f32>().ok(),
        };
        let outcome = classify(
            opt_u64(cell(&oc, ocols.top1)),
            opt_u64(cell(&cc, ccols.top1)),
            corr_p1,
            nonfinite,
        );
        f(RowFacts {
            outcome,
            faults: fault_keys(cell(&cc, ccols.fault_layers), cell(&cc, ccols.fault_bits)),
        });
        rows += 1;
    }
    Ok(rows)
}

/// Column positions resolved from a store schema.
struct StoreCols {
    orig_class1: usize,
    corr_class1: usize,
    corr_p1: usize,
    fault_layers: usize,
    fault_bits: usize,
    nan: usize,
    inf: usize,
}

/// The sentinel class the classification schema pads absent top-k
/// entries with (mirrors `alfi-core`'s `TOPK_PAD_CLASS`).
const PAD_CLASS: u64 = u32::MAX as u64;

fn store_cols(reader: &StoreReader) -> Result<StoreCols, AnalyzeError> {
    let find = |name: &str| {
        reader.schema().columns.iter().position(|c| c.name == name).ok_or_else(|| {
            AnalyzeError::Parse(format!("rows.alfic: schema lacks a `{name}` column"))
        })
    };
    Ok(StoreCols {
        orig_class1: find("orig_class1")?,
        corr_class1: find("corr_class1")?,
        corr_p1: find("corr_p1")?,
        fault_layers: find("fault_layers")?,
        fault_bits: find("fault_bits")?,
        nan: find("nan_count")?,
        inf: find("inf_count")?,
    })
}

fn value_u64(values: &[Value], idx: usize) -> u64 {
    match values.get(idx) {
        Some(Value::U8(v)) => u64::from(*v),
        Some(Value::U32(v)) => u64::from(*v),
        Some(Value::U64(v)) => *v,
        _ => 0,
    }
}

fn value_str(values: &[Value], idx: usize) -> &str {
    match values.get(idx) {
        Some(Value::Str(s)) => s.as_str(),
        _ => "",
    }
}

/// Whether a columnar store carries the classification schema the
/// analyzer understands (cheap: opening a store reads only its header,
/// directory and index).
pub(crate) fn store_is_classification(path: &Path) -> Result<bool, AnalyzeError> {
    let reader = StoreReader::open(path)?;
    Ok(store_cols(&reader).is_ok())
}

/// Streams the columnar store block-by-block through
/// [`StoreReader::for_each_row`] (never fully materialized), feeding
/// one [`RowFacts`] per row into `f`.
pub(crate) fn stream_store_rows(
    store_path: &Path,
    mut f: impl FnMut(RowFacts),
) -> Result<u64, AnalyzeError> {
    let mut reader = StoreReader::open(store_path)?;
    let cols = store_cols(&reader)?;
    let mut rows = 0u64;
    reader.for_each_row(|_key, values| {
        let class = |idx: usize| Some(value_u64(values, idx)).filter(|&c| c != PAD_CLASS);
        let corr_top1 = class(cols.corr_class1);
        let corr_p1 = match values.get(cols.corr_p1) {
            Some(Value::F32(p)) if corr_top1.is_some() => Some(*p),
            _ => None,
        };
        let nonfinite = value_u64(values, cols.nan) + value_u64(values, cols.inf);
        let outcome = classify(class(cols.orig_class1), corr_top1, corr_p1, nonfinite);
        f(RowFacts {
            outcome,
            faults: fault_keys(
                value_str(values, cols.fault_layers),
                value_str(values, cols.fault_bits),
            ),
        });
        rows += 1;
        Ok(())
    })?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_cells_cover_every_fault_value_syntax() {
        assert_eq!(parse_bit_cell("30"), (30, "bitflip"));
        assert_eq!(parse_bit_cell("s31"), (31, "stuck_at"));
        assert_eq!(parse_bit_cell("v"), (-1, "replace"));
        assert_eq!(parse_bit_cell("q5"), (5, "quant"));
        assert_eq!(parse_bit_cell("junk"), (-1, "unknown"));
    }

    #[test]
    fn classification_mirrors_the_engine() {
        use EffectClass::*;
        assert_eq!(classify(Some(3), Some(3), Some(0.9), 0), Masked);
        assert_eq!(classify(Some(3), Some(5), Some(0.9), 0), Sdc);
        assert_eq!(classify(Some(3), Some(3), Some(0.9), 2), Due);
        assert_eq!(classify(Some(3), Some(3), Some(f32::NAN), 0), Due);
        // Padded top-k on one side is a silent prediction change.
        assert_eq!(classify(Some(3), None, None, 0), Sdc);
        assert_eq!(classify(None, None, None, 0), Masked);
    }

    #[test]
    fn fault_keys_zip_layers_with_bit_cells() {
        let keys = fault_keys("3;6", "30;s2");
        assert_eq!(
            keys,
            vec![
                FaultKey { layer: 3, bit: 30, mode: "bitflip" },
                FaultKey { layer: 6, bit: 2, mode: "stuck_at" },
            ]
        );
        assert!(fault_keys("", "").is_empty());
    }
}
