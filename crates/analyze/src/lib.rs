#![warn(missing_docs)]
//! # alfi-analyze
//!
//! Post-run campaign analysis for the ALFI workspace. A fault-injection
//! campaign is only as useful as the questions its artifacts can answer
//! afterwards (PAPER.md §IV pitches validation *efficiency*, which
//! presumes the output of a large campaign is interpretable without
//! re-running it). This crate reads the finished-run artifact set —
//! `rows.alfic` / `results_*.csv`, `events.jsonl`, `scenario.yml` — and
//! produces three deterministic views:
//!
//! * [`report::analyze_dir`] — a per-layer × per-bit-position ×
//!   per-fault-mode vulnerability report (SDC/DUE/masked rates with
//!   Wilson confidence intervals from [`alfi_core::stats`]), rendered
//!   as `report.json` and `report.md`;
//! * [`diff::diff_reports`] — a CI-aware comparison of two runs whose
//!   per-layer rate deltas are flagged significant only when the
//!   intervals separate;
//! * [`trace_export::chrome_trace`] — the `events.jsonl` log converted
//!   to Chrome-trace/Perfetto JSON with deterministic, replay-ordinal
//!   timestamps (never wall clock) plus a flame-style self-time
//!   attribution table.
//!
//! # Determinism contract
//!
//! Everything this crate emits is a pure function of the deterministic
//! artifacts: reports are byte-identical whether the run used 1, 2, 4
//! or 7 pool threads, and identical whether the rows came from the CSV
//! artifacts or the columnar binary store. To that end the report
//! deliberately excludes the event header's `threads` field and all
//! wall-clock timing (span durations live in the in-memory
//! [`TraceSummary`](alfi_trace::TraceSummary), not in the artifacts).
//!
//! # Engine hook
//!
//! [`install_engine_hook`] registers report generation with
//! `alfi-core`'s campaign engine; runs configured with
//! `RunConfig::report(true)` (CLI `--report`, scenario `report: true`)
//! then write `report.json`/`report.md` next to their other artifacts
//! at finalize.
//!
//! # Example
//!
//! ```no_run
//! let report = alfi_analyze::report::analyze_dir("runs/campaign")?;
//! println!("{}", report.to_markdown());
//! # Ok::<(), alfi_analyze::AnalyzeError>(())
//! ```

pub mod diff;
pub mod report;
mod rows;
pub mod trace_export;

pub use report::{CampaignReport, RateBlock, RateCi, StopReport, REPORT_JSON, REPORT_MD};
pub use rows::FaultKey;

use std::fmt;
use std::path::Path;

/// An analysis failure: missing or malformed artifacts, or I/O.
#[derive(Debug)]
pub enum AnalyzeError {
    /// The run directory holds no artifact the analyzer understands.
    Missing(String),
    /// An artifact existed but could not be parsed.
    Parse(String),
    /// Filesystem failure.
    Io(String),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Missing(m) => write!(f, "missing artifact: {m}"),
            AnalyzeError::Parse(m) => write!(f, "malformed artifact: {m}"),
            AnalyzeError::Io(m) => write!(f, "io: {m}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<std::io::Error> for AnalyzeError {
    fn from(e: std::io::Error) -> Self {
        AnalyzeError::Io(e.to_string())
    }
}

impl From<alfi_store::StoreError> for AnalyzeError {
    fn from(e: alfi_store::StoreError) -> Self {
        AnalyzeError::Parse(format!("store: {e}"))
    }
}

impl From<alfi_trace::EventLogError> for AnalyzeError {
    fn from(e: alfi_trace::EventLogError) -> Self {
        AnalyzeError::Parse(format!("event log: {e}"))
    }
}

/// The end-of-run hook the engine invokes for `report`-enabled runs:
/// analyzes the artifact directory and writes `report.json` and
/// `report.md` into it.
///
/// # Errors
///
/// Returns a rendered [`AnalyzeError`] message.
pub fn engine_report_hook(dir: &Path) -> Result<(), String> {
    let report = report::analyze_dir(dir).map_err(|e| e.to_string())?;
    report::write_report_files(&report, dir).map_err(|e| e.to_string())
}

/// Registers [`engine_report_hook`] with the campaign engine so
/// `RunConfig::report(true)` runs emit `report.json`/`report.md` at
/// finalize. Returns `false` when a hook was already installed
/// (installation is process-global and first-wins).
pub fn install_engine_hook() -> bool {
    alfi_core::campaign::install_report_hook(engine_report_hook)
}
