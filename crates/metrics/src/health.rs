//! Campaign health watchdog: samples a [`Registry`] on an interval and
//! raises structured [`HealthEvent`]s when a campaign looks sick —
//! stalled (no scope completed within a deadline), DUE/SDC rates above
//! configured thresholds, or a NaN storm.
//!
//! Detection is a pure function ([`evaluate`]) over an observation
//! delta, so every alarm is unit-testable without threads or clocks;
//! [`Watchdog`] is the thin sampling thread around it.

use crate::registry::{Class, Registry, Snapshot};
use crate::names;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A structured health alarm raised by the watchdog.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthEvent {
    /// No fault scope completed within the stall deadline.
    Stall {
        /// How long the scope counter has been flat.
        idle: Duration,
        /// Scope count at the time of the alarm.
        scopes: u64,
    },
    /// DUE rate above the configured threshold.
    DueRateHigh {
        /// Observed DUE fraction of classified rows.
        rate: f64,
        /// Configured threshold.
        limit: f64,
        /// Rows classified so far.
        classified: u64,
    },
    /// SDC rate above the configured threshold.
    SdcRateHigh {
        /// Observed SDC fraction of classified rows.
        rate: f64,
        /// Configured threshold.
        limit: f64,
        /// Rows classified so far.
        classified: u64,
    },
    /// Non-finite (NaN/Inf) output values above the configured limit.
    NanStorm {
        /// Non-finite values observed so far.
        nonfinite: u64,
        /// Configured limit.
        limit: u64,
    },
}

impl HealthEvent {
    /// Stable event kind, used as the `kind` label of
    /// `alfi_health_events_total`.
    pub fn kind(&self) -> &'static str {
        match self {
            HealthEvent::Stall { .. } => "stall",
            HealthEvent::DueRateHigh { .. } => "due_rate",
            HealthEvent::SdcRateHigh { .. } => "sdc_rate",
            HealthEvent::NanStorm { .. } => "nan_storm",
        }
    }
}

impl fmt::Display for HealthEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthEvent::Stall { idle, scopes } => write!(
                f,
                "stall: no scope completed for {:.1}s ({} scopes done)",
                idle.as_secs_f64(),
                scopes
            ),
            HealthEvent::DueRateHigh { rate, limit, classified } => write!(
                f,
                "due_rate: DUE rate {:.3} above limit {:.3} after {} classified rows",
                rate, limit, classified
            ),
            HealthEvent::SdcRateHigh { rate, limit, classified } => write!(
                f,
                "sdc_rate: SDC rate {:.3} above limit {:.3} after {} classified rows",
                rate, limit, classified
            ),
            HealthEvent::NanStorm { nonfinite, limit } => write!(
                f,
                "nan_storm: {} non-finite output values above limit {}",
                nonfinite, limit
            ),
        }
    }
}

/// Watchdog thresholds. Every alarm is opt-in via its `Option`; the
/// default policy only watches for stalls.
#[derive(Debug, Clone)]
pub struct HealthPolicy {
    /// Sampling cadence of the watchdog thread.
    pub interval: Duration,
    /// Raise [`HealthEvent::Stall`] when no scope completes for this
    /// long.
    pub stall_after: Option<Duration>,
    /// Raise [`HealthEvent::DueRateHigh`] when due/classified exceeds
    /// this fraction.
    pub max_due_rate: Option<f64>,
    /// Raise [`HealthEvent::SdcRateHigh`] when sdc/classified exceeds
    /// this fraction.
    pub max_sdc_rate: Option<f64>,
    /// Rate alarms stay quiet until this many rows are classified
    /// (avoids small-sample noise).
    pub min_classified: u64,
    /// Raise [`HealthEvent::NanStorm`] when the non-finite rollup
    /// exceeds this count.
    pub max_nonfinite: Option<u64>,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            interval: Duration::from_millis(250),
            stall_after: Some(Duration::from_secs(30)),
            max_due_rate: None,
            max_sdc_rate: None,
            min_classified: 20,
            max_nonfinite: None,
        }
    }
}

/// One registry sample, reduced to the counters the watchdog reasons
/// about.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthObservation {
    /// `alfi_engine_scopes_total`.
    pub scopes: u64,
    /// `alfi_campaign_outcomes_total{class="masked"}`.
    pub masked: u64,
    /// `alfi_campaign_outcomes_total{class="sdc"}`.
    pub sdc: u64,
    /// `alfi_campaign_outcomes_total{class="due"}`.
    pub due: u64,
    /// `alfi_campaign_nonfinite_total` summed over kinds.
    pub nonfinite: u64,
}

impl HealthObservation {
    /// Reads the watchdog counters out of a snapshot (absent counters
    /// read as 0).
    pub fn from_snapshot(s: &Snapshot) -> Self {
        HealthObservation {
            scopes: s.counter(names::ENGINE_SCOPES),
            masked: s.counter_labeled(names::CAMPAIGN_OUTCOMES, "masked").unwrap_or(0),
            sdc: s.counter_labeled(names::CAMPAIGN_OUTCOMES, "sdc").unwrap_or(0),
            due: s.counter_labeled(names::CAMPAIGN_OUTCOMES, "due").unwrap_or(0),
            nonfinite: s.counter_sum(names::CAMPAIGN_NONFINITE),
        }
    }
}

/// Carry-over state between [`evaluate`] calls. Each alarm latches
/// (raises once) until its condition clears.
#[derive(Debug, Clone, Default)]
pub struct HealthState {
    last_scopes: u64,
    idle: Duration,
    stall_raised: bool,
    due_raised: bool,
    sdc_raised: bool,
    nan_raised: bool,
}

/// Pure alarm evaluation: folds one observation (taken `dt` after the
/// previous one) into `state` and returns the newly raised events.
/// Deterministic given the same observation/`dt` sequence, so every
/// alarm path is testable without a watchdog thread.
pub fn evaluate(
    policy: &HealthPolicy,
    state: &mut HealthState,
    obs: &HealthObservation,
    dt: Duration,
) -> Vec<HealthEvent> {
    let mut events = Vec::new();

    if obs.scopes > state.last_scopes {
        state.last_scopes = obs.scopes;
        state.idle = Duration::ZERO;
        state.stall_raised = false;
    } else {
        state.idle += dt;
    }
    if let Some(deadline) = policy.stall_after {
        if state.idle >= deadline && !state.stall_raised {
            state.stall_raised = true;
            events.push(HealthEvent::Stall { idle: state.idle, scopes: obs.scopes });
        }
    }

    let classified = obs.masked + obs.sdc + obs.due;
    if classified >= policy.min_classified.max(1) {
        if let Some(limit) = policy.max_due_rate {
            let rate = obs.due as f64 / classified as f64;
            if rate > limit && !state.due_raised {
                state.due_raised = true;
                events.push(HealthEvent::DueRateHigh { rate, limit, classified });
            }
        }
        if let Some(limit) = policy.max_sdc_rate {
            let rate = obs.sdc as f64 / classified as f64;
            if rate > limit && !state.sdc_raised {
                state.sdc_raised = true;
                events.push(HealthEvent::SdcRateHigh { rate, limit, classified });
            }
        }
    }

    if let Some(limit) = policy.max_nonfinite {
        if obs.nonfinite > limit && !state.nan_raised {
            state.nan_raised = true;
            events.push(HealthEvent::NanStorm { nonfinite: obs.nonfinite, limit });
        }
    }

    events
}

/// Extra delivery hook for raised events (the campaign engine wires
/// this to the trace recorder).
pub type HealthSink = Arc<dyn Fn(&HealthEvent) + Send + Sync>;

/// The sampling thread around [`evaluate`]: every `policy.interval` it
/// snapshots the registry, evaluates the policy and delivers raised
/// events to stderr, the registry's `alfi_health_events_total{kind}`
/// counter and the optional sink.
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<Vec<HealthEvent>>>,
}

impl fmt::Debug for Watchdog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Watchdog")
    }
}

impl Watchdog {
    /// Spawns the watchdog over `registry`.
    pub fn spawn(policy: HealthPolicy, registry: Registry, sink: Option<HealthSink>) -> Watchdog {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("alfi-health-watchdog".into())
            .spawn(move || watch_loop(policy, registry, sink, stop_flag))
            .expect("spawn health watchdog thread");
        Watchdog { stop, handle: Some(handle) }
    }

    /// Stops the watchdog (after one final sample, so threshold
    /// crossings right at campaign end still alarm) and returns every
    /// event it raised.
    pub fn stop(mut self) -> Vec<HealthEvent> {
        self.stop.store(true, Ordering::Relaxed);
        match self.handle.take() {
            Some(h) => h.join().unwrap_or_default(),
            None => Vec::new(),
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn watch_loop(
    policy: HealthPolicy,
    registry: Registry,
    sink: Option<HealthSink>,
    stop: Arc<AtomicBool>,
) -> Vec<HealthEvent> {
    let mut state = HealthState::default();
    let mut raised = Vec::new();
    let mut last = Instant::now();
    loop {
        let stopping = stop.load(Ordering::Relaxed);
        if !stopping {
            // Sleep in short slices so stop() never waits a full
            // interval.
            let slice = Duration::from_millis(10).min(policy.interval);
            let deadline = Instant::now() + policy.interval;
            while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
                std::thread::sleep(slice);
            }
        }
        let now = Instant::now();
        let dt = now - last;
        last = now;
        let obs = HealthObservation::from_snapshot(&registry.snapshot());
        for event in evaluate(&policy, &mut state, &obs, dt) {
            eprintln!("[alfi health] {event}");
            registry
                .counter_with(
                    names::HEALTH_EVENTS,
                    "Health watchdog events raised, by kind",
                    Class::Runtime,
                    "kind",
                    event.kind(),
                )
                .inc();
            if let Some(sink) = &sink {
                sink(&event);
            }
            raised.push(event);
        }
        if stopping {
            return raised;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> HealthPolicy {
        HealthPolicy {
            interval: Duration::from_millis(1),
            stall_after: Some(Duration::from_millis(100)),
            max_due_rate: Some(0.25),
            max_sdc_rate: Some(0.5),
            min_classified: 4,
            max_nonfinite: Some(10),
        }
    }

    #[test]
    fn stall_raises_after_deadline_and_clears_on_progress() {
        let p = policy();
        let mut st = HealthState::default();
        let obs = HealthObservation { scopes: 3, ..Default::default() };
        // First sample records progress from 0 → 3.
        assert!(evaluate(&p, &mut st, &obs, Duration::from_millis(50)).is_empty());
        // Flat for 60ms — under the 100ms deadline.
        assert!(evaluate(&p, &mut st, &obs, Duration::from_millis(60)).is_empty());
        // Flat past the deadline: one stall event, latched.
        let events = evaluate(&p, &mut st, &obs, Duration::from_millis(60));
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], HealthEvent::Stall { scopes: 3, .. }), "{events:?}");
        assert!(evaluate(&p, &mut st, &obs, Duration::from_millis(60)).is_empty(), "latched");
        // Progress clears the latch; a fresh stall can raise again.
        let obs2 = HealthObservation { scopes: 4, ..Default::default() };
        assert!(evaluate(&p, &mut st, &obs2, Duration::from_millis(60)).is_empty());
        let events = evaluate(&p, &mut st, &obs2, Duration::from_millis(200));
        assert_eq!(events.len(), 1, "{events:?}");
    }

    #[test]
    fn due_rate_alarm_respects_min_classified_and_threshold() {
        let p = policy();
        let mut st = HealthState::default();
        // 2 of 3 DUE but below min_classified=4: quiet.
        let small = HealthObservation { scopes: 3, masked: 1, due: 2, ..Default::default() };
        assert!(evaluate(&p, &mut st, &small, Duration::from_millis(1)).is_empty());
        // 2 of 8 DUE = 0.25, not strictly above the 0.25 limit: quiet.
        let at_limit = HealthObservation { scopes: 8, masked: 6, due: 2, ..Default::default() };
        assert!(evaluate(&p, &mut st, &at_limit, Duration::from_millis(1)).is_empty());
        // 3 of 9 DUE ≈ 0.33 > 0.25: alarm once.
        let over = HealthObservation { scopes: 9, masked: 6, due: 3, ..Default::default() };
        let events = evaluate(&p, &mut st, &over, Duration::from_millis(1));
        assert_eq!(events.len(), 1);
        match &events[0] {
            HealthEvent::DueRateHigh { rate, limit, classified } => {
                assert!((rate - 1.0 / 3.0).abs() < 1e-9);
                assert_eq!(*limit, 0.25);
                assert_eq!(*classified, 9);
            }
            other => panic!("expected DueRateHigh, got {other:?}"),
        }
        assert!(evaluate(&p, &mut st, &over, Duration::from_millis(1)).is_empty(), "latched");
    }

    #[test]
    fn sdc_rate_and_nan_storm_alarms_raise() {
        let p = policy();
        let mut st = HealthState::default();
        let obs = HealthObservation { scopes: 10, masked: 2, sdc: 8, nonfinite: 11, ..Default::default() };
        let events = evaluate(&p, &mut st, &obs, Duration::from_millis(1));
        let kinds: Vec<_> = events.iter().map(HealthEvent::kind).collect();
        assert_eq!(kinds, vec!["sdc_rate", "nan_storm"], "{events:?}");
    }

    #[test]
    fn observation_reads_the_wellknown_counters() {
        let reg = Registry::new();
        reg.counter(names::ENGINE_SCOPES, "h", Class::Deterministic).add(7);
        reg.counter_with(names::CAMPAIGN_OUTCOMES, "h", Class::Deterministic, "class", "masked").add(4);
        reg.counter_with(names::CAMPAIGN_OUTCOMES, "h", Class::Deterministic, "class", "due").add(3);
        reg.counter_with(names::CAMPAIGN_NONFINITE, "h", Class::Deterministic, "kind", "nan").add(2);
        reg.counter_with(names::CAMPAIGN_NONFINITE, "h", Class::Deterministic, "kind", "inf").add(1);
        let obs = HealthObservation::from_snapshot(&reg.snapshot());
        assert_eq!(
            obs,
            HealthObservation { scopes: 7, masked: 4, sdc: 0, due: 3, nonfinite: 3 }
        );
    }

    #[test]
    fn watchdog_thread_raises_stall_and_counts_it() {
        let reg = Registry::new();
        reg.counter(names::ENGINE_SCOPES, "h", Class::Deterministic).add(1);
        let p = HealthPolicy {
            interval: Duration::from_millis(5),
            stall_after: Some(Duration::from_millis(20)),
            ..HealthPolicy::default()
        };
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink_seen = Arc::clone(&seen);
        let sink: HealthSink = Arc::new(move |e| sink_seen.lock().unwrap().push(e.kind()));
        let wd = Watchdog::spawn(p, reg.clone(), Some(sink));
        std::thread::sleep(Duration::from_millis(120));
        let events = wd.stop();
        assert!(
            events.iter().any(|e| matches!(e, HealthEvent::Stall { .. })),
            "expected a stall, got {events:?}"
        );
        assert!(seen.lock().unwrap().contains(&"stall"));
        assert!(reg.snapshot().counter_labeled(names::HEALTH_EVENTS, "stall").unwrap_or(0) >= 1);
    }
}
