//! Prometheus-text exposition: the one-shot `metrics.prom` snapshot
//! writer and a background `GET /metrics` server on
//! [`std::net::TcpListener`] — no external dependencies, HTTP/1.1 by
//! hand.

use crate::registry::Registry;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// File name of the one-shot snapshot written under `save_dir`.
pub const SNAPSHOT_FILE: &str = "metrics.prom";

/// Content type of the Prometheus text format we emit.
const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Writes a full-registry snapshot as `metrics.prom` into `dir`,
/// returning the written path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_snapshot(registry: &Registry, dir: &Path) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(SNAPSHOT_FILE);
    std::fs::write(&path, registry.snapshot().render())?;
    Ok(path)
}

/// A background metrics server: binds a [`TcpListener`], answers
/// `GET /metrics` with the registry rendered in Prometheus text format
/// and anything else with 404. The accept loop is non-blocking with a
/// short sleep so [`shutdown`](MetricsServer::shutdown) (or drop)
/// stops it promptly.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MetricsServer({})", self.addr)
    }
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`; port 0 picks a free port —
    /// read it back via [`local_addr`](Self::local_addr)) and starts
    /// the accept thread serving `registry`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str, registry: Registry) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("alfi-metrics-http".into())
            .spawn(move || accept_loop(listener, registry, stop_flag))
            .expect("spawn metrics server thread");
        Ok(MetricsServer { addr: local, stop, handle: Some(handle) })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, registry: Registry, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: /metrics is a low-rate scrape target,
                // not a traffic server.
                let _ = serve_connection(stream, &registry);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn serve_connection(mut stream: TcpStream, registry: &Registry) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    let mut buf = [0u8; 2048];
    let mut req = Vec::new();
    // Read until the end of the request head (or the buffer/timeout
    // gives up) — we only need the request line.
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                req.extend_from_slice(&buf[..n]);
                if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() > 16 * 1024 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let line = req.split(|&b| b == b'\r' || b == b'\n').next().unwrap_or(&[]);
    let line = String::from_utf8_lossy(line);
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = match (method, path) {
        ("GET", "/metrics") => ("200 OK", registry.snapshot().render()),
        ("GET", _) => ("404 Not Found", "not found; scrape /metrics\n".to_string()),
        _ => ("405 Method Not Allowed", "GET only\n".to_string()),
    };
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {CONTENT_TYPE}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Servers started through [`serve_once`], keyed by the requested
/// address and kept alive for the process lifetime so repeated
/// `run_with` calls with the same `metrics_addr` reuse one listener.
static SERVERS: OnceLock<Mutex<HashMap<String, MetricsServer>>> = OnceLock::new();

/// Starts (or reuses) a process-lifetime metrics server on `addr`
/// serving `registry`, returning the bound address. A second call with
/// the same `addr` string returns the existing server's address
/// without rebinding.
///
/// # Errors
///
/// Propagates bind failures on first use of an address.
pub fn serve_once(addr: &str, registry: &Registry) -> io::Result<SocketAddr> {
    let servers = SERVERS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = servers.lock().expect("metrics server table poisoned");
    if let Some(existing) = map.get(addr) {
        return Ok(existing.local_addr());
    }
    let server = MetricsServer::bind(addr, registry.clone())?;
    let local = server.local_addr();
    map.insert(addr.to_string(), server);
    Ok(local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Class;

    fn scrape(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        let (head, body) = out.split_once("\r\n\r\n").expect("response has a head");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_and_404s_elsewhere() {
        let reg = Registry::new();
        reg.counter("alfi_engine_scopes_total", "scopes", Class::Deterministic).add(5);
        let server = MetricsServer::bind("127.0.0.1:0", reg).unwrap();
        let addr = server.local_addr();

        let (head, body) = scrape(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        assert!(body.contains("# TYPE alfi_engine_scopes_total counter"), "{body}");
        assert!(body.contains("alfi_engine_scopes_total 5"), "{body}");

        let (head, _) = scrape(addr, "/other");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        server.shutdown();
    }

    #[test]
    fn snapshot_file_round_trips() {
        let reg = Registry::new();
        reg.counter("alfi_engine_items_total", "items", Class::Deterministic).add(3);
        let dir = std::env::temp_dir().join("alfi_metrics_snapshot_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = write_snapshot(&reg, &dir).unwrap();
        assert_eq!(path.file_name().unwrap(), SNAPSHOT_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, reg.snapshot().render());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_once_reuses_the_same_address() {
        let reg = Registry::new();
        let a = serve_once("127.0.0.1:0", &reg).unwrap();
        let b = serve_once("127.0.0.1:0", &reg).unwrap();
        assert_eq!(a, b);
    }
}
