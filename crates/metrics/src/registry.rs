//! The sharded metric registry.
//!
//! Handles ([`Counter`], [`FloatCounter`], [`Gauge`], [`Histogram`])
//! are cheap `Arc` clones; updating one is a relaxed atomic operation
//! on a cache-line-padded, per-thread shard. Shards are summed only
//! when a [`Snapshot`] is taken, so the hot path never touches a
//! shared line and never takes a lock. Registration (name → handle)
//! does lock, so instrumented code should create handles once and hold
//! on to them.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of update shards per metric. Threads are assigned shards
/// round-robin on first use; 16 shards keep contention negligible for
/// the pool's maximum of 64 workers while bounding snapshot cost.
const SHARDS: usize = 16;

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard index, assigned round-robin on first use.
    /// Deliberately independent of `alfi-pool` worker indices — the
    /// pool itself is instrumented, so the registry cannot depend on
    /// it.
    static SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

#[inline]
fn shard_id() -> usize {
    SHARD.with(|s| *s)
}

/// One cache line per shard so concurrent writers on different shards
/// never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PadCell(AtomicU64);

/// Determinism class of a metric — the golden-file boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Depends only on scenario/seed; byte-identical across thread
    /// counts and eligible for golden pinning.
    Deterministic,
    /// Wall-clock- or schedule-dependent; excluded from golden
    /// artifacts.
    Runtime,
}

/// Metric kind, as exposed in the Prometheus `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotone integer counter.
    Counter,
    /// Monotone float counter (rendered as a Prometheus counter).
    FloatCounter,
    /// Instantaneous float value.
    Gauge,
    /// Log₂-bucketed histogram.
    Histogram,
}

impl Kind {
    fn type_name(self) -> &'static str {
        match self {
            Kind::Counter | Kind::FloatCounter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Default)]
struct ShardedU64 {
    cells: [PadCell; SHARDS],
}

impl ShardedU64 {
    #[inline]
    fn add(&self, n: u64) {
        self.cells[shard_id()].0.fetch_add(n, Ordering::Relaxed);
    }

    fn total(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// A monotone integer counter. Cloning shares the underlying cells.
#[derive(Clone, Default)]
pub struct Counter {
    inner: Arc<ShardedU64>,
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` — one relaxed atomic add on this thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.inner.add(n);
    }

    /// Sum across shards (racy under concurrent writers, exact once
    /// they are quiescent).
    pub fn value(&self) -> u64 {
        self.inner.total()
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.value())
    }
}

/// One f64-bits cell per shard, updated by compare-exchange.
#[repr(align(64))]
struct PadF64Cell(AtomicU64);

impl Default for PadF64Cell {
    fn default() -> Self {
        PadF64Cell(AtomicU64::new(0f64.to_bits()))
    }
}

impl PadF64Cell {
    fn add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Default)]
struct ShardedF64 {
    cells: [PadF64Cell; SHARDS],
}

impl ShardedF64 {
    #[inline]
    fn add(&self, v: f64) {
        self.cells[shard_id()].add(v);
    }

    fn total(&self) -> f64 {
        self.cells.iter().map(PadF64Cell::get).sum()
    }
}

/// A monotone float counter (e.g. busy seconds). Cloning shares state.
#[derive(Clone, Default)]
pub struct FloatCounter {
    inner: Arc<ShardedF64>,
}

impl FloatCounter {
    /// Adds `v` to this thread's shard (a relaxed compare-exchange
    /// loop; uncontended in practice because shards are per-thread).
    #[inline]
    pub fn add(&self, v: f64) {
        self.inner.add(v);
    }

    /// Sum across shards.
    pub fn value(&self) -> f64 {
        self.inner.total()
    }
}

impl fmt::Debug for FloatCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FloatCounter({})", self.value())
    }
}

/// An instantaneous float value (last write wins).
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge { bits: Arc::new(AtomicU64::new(0f64.to_bits())) }
    }
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gauge({})", self.value())
    }
}

/// Smallest power-of-two histogram bucket boundary: `2^HIST_K_MIN`
/// (≈ 0.93 ns as seconds).
pub const HIST_K_MIN: i32 = -30;
/// Largest power-of-two histogram bucket boundary: `2^HIST_K_MAX`
/// (1024 s).
pub const HIST_K_MAX: i32 = 10;
/// Total bucket count: a `le="0"` bucket, one bucket per power of two
/// in `HIST_K_MIN..=HIST_K_MAX`, and the `+Inf` overflow bucket.
pub const HIST_BUCKETS: usize = (HIST_K_MAX - HIST_K_MIN + 1) as usize + 2;

/// Maps an observation to its bucket. Buckets hold, in order:
/// `v ≤ 0`, then `2^(k-1) < v ≤ 2^k` for each `k` in
/// `HIST_K_MIN..=HIST_K_MAX` (subnormals and anything below
/// `2^HIST_K_MIN` clamp into the first power bucket), then the `+Inf`
/// overflow bucket (`v > 2^HIST_K_MAX`, `f64::MAX`, infinities, NaN).
pub(crate) fn bucket_index(v: f64) -> usize {
    if v.is_nan() {
        return HIST_BUCKETS - 1;
    }
    if v <= 0.0 {
        return 0;
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32;
    let mantissa = bits & ((1u64 << 52) - 1);
    // ceil(log2(v)) from the raw bits: exact powers of two have a zero
    // mantissa and land *on* their own boundary (le = 2^k includes
    // 2^k); subnormals (exp == 0) sit far below HIST_K_MIN and clamp.
    let k = if exp == 0 {
        i32::MIN / 2
    } else {
        let e = exp - 1023;
        if mantissa == 0 {
            e
        } else {
            e + 1
        }
    };
    if k > HIST_K_MAX {
        HIST_BUCKETS - 1
    } else {
        (k.max(HIST_K_MIN) - HIST_K_MIN) as usize + 1
    }
}

/// Prometheus `le` label for bucket `i` (see [`bucket_index`]).
pub(crate) fn bucket_le(i: usize) -> String {
    if i == 0 {
        "0".into()
    } else if i == HIST_BUCKETS - 1 {
        "+Inf".into()
    } else {
        let k = HIST_K_MIN + (i as i32 - 1);
        if k >= 0 {
            format!("{}", (1u64) << k)
        } else {
            format!("{:e}", 2f64.powi(k))
        }
    }
}

/// One histogram shard. Aligned as a whole so *shards* never share a
/// cache line, but buckets within a shard are deliberately unpadded:
/// a shard is only ever written through one thread's index, so
/// per-bucket padding would cost 64× the memory with no contention
/// benefit.
#[repr(align(64))]
struct HistShard {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: PadF64Cell,
}

impl Default for HistShard {
    fn default() -> Self {
        HistShard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: PadF64Cell::default(),
        }
    }
}

/// A log₂-bucketed histogram: zero bucket + one bucket per power of
/// two + `+Inf` overflow. Cloning shares state.
#[derive(Clone, Default)]
pub struct Histogram {
    shards: Arc<[HistShard; SHARDS]>,
}

impl Histogram {
    /// Records one observation: a relaxed add into this thread's shard
    /// bucket plus a sum update.
    #[inline]
    pub fn observe(&self, v: f64) {
        let shard = &self.shards[shard_id()];
        shard.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        shard.sum.add(v);
    }

    /// Merged per-bucket counts (not cumulative).
    pub fn bucket_counts(&self) -> [u64; HIST_BUCKETS] {
        let mut out = [0u64; HIST_BUCKETS];
        for shard in self.shards.iter() {
            for (o, b) in out.iter_mut().zip(shard.buckets.iter()) {
                *o += b.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.bucket_counts().iter().sum()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.shards.iter().map(|s| s.sum.get()).sum()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Histogram(count={}, sum={})", self.count(), self.sum())
    }
}

/// One registered family: a metric name plus its (possibly labelled)
/// children. Unlabelled metrics are the single child under the empty
/// label value.
struct Family {
    help: &'static str,
    class: Class,
    label: Option<&'static str>,
    data: FamilyData,
}

enum FamilyData {
    Counter(BTreeMap<String, Counter>),
    Float(BTreeMap<String, FloatCounter>),
    Gauge(BTreeMap<String, Gauge>),
    Histogram(BTreeMap<String, Histogram>),
}

impl FamilyData {
    fn kind(&self) -> Kind {
        match self {
            FamilyData::Counter(_) => Kind::Counter,
            FamilyData::Float(_) => Kind::FloatCounter,
            FamilyData::Gauge(_) => Kind::Gauge,
            FamilyData::Histogram(_) => Kind::Histogram,
        }
    }
}

/// The metric registry. Cloning shares the underlying family map, so a
/// `Registry` value is itself the cheap shareable handle
/// (`Arc`-backed), mirroring `alfi_trace::Recorder`.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<&'static str, Family>>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.inner.lock().map(|m| m.len()).unwrap_or(0);
        write!(f, "Registry({n} families)")
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    #[allow(clippy::too_many_arguments)] // internal plumbing shared by every register method
    fn family<R>(
        &self,
        name: &'static str,
        help: &'static str,
        class: Class,
        label: Option<&'static str>,
        value: &str,
        empty: fn() -> FamilyData,
        pick: impl FnOnce(&mut FamilyData, &str) -> Option<R>,
    ) -> R {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        let fam = map.entry(name).or_insert_with(|| Family { help, class, label, data: empty() });
        assert_eq!(
            fam.label, label,
            "metric {name} registered with conflicting label ({:?} vs {:?})",
            fam.label, label
        );
        pick(&mut fam.data, value)
            .unwrap_or_else(|| panic!("metric {name} registered with a different kind"))
    }

    /// Returns (registering on first use) the integer counter `name`.
    pub fn counter(&self, name: &'static str, help: &'static str, class: Class) -> Counter {
        self.family(name, help, class, None, "", || FamilyData::Counter(BTreeMap::new()), pick_counter)
    }

    /// Returns the `label=value` child of the labelled counter `name`.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        class: Class,
        label: &'static str,
        value: &str,
    ) -> Counter {
        self.family(name, help, class, Some(label), value, || FamilyData::Counter(BTreeMap::new()), pick_counter)
    }

    /// Returns (registering on first use) the float counter `name`.
    pub fn float_counter(&self, name: &'static str, help: &'static str, class: Class) -> FloatCounter {
        self.family(name, help, class, None, "", || FamilyData::Float(BTreeMap::new()), pick_float)
    }

    /// Returns the `label=value` child of the labelled float counter
    /// `name`.
    pub fn float_counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        class: Class,
        label: &'static str,
        value: &str,
    ) -> FloatCounter {
        self.family(name, help, class, Some(label), value, || FamilyData::Float(BTreeMap::new()), pick_float)
    }

    /// Returns (registering on first use) the gauge `name`. Gauges are
    /// always [`Class::Runtime`].
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        self.family(name, help, Class::Runtime, None, "", || FamilyData::Gauge(BTreeMap::new()), pick_gauge)
    }

    /// Returns (registering on first use) the histogram `name`.
    /// Histograms are always [`Class::Runtime`].
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Histogram {
        self.family(name, help, Class::Runtime, None, "", || FamilyData::Histogram(BTreeMap::new()), pick_hist)
    }

    /// Merges all shards into a point-in-time [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let map = self.inner.lock().expect("metrics registry poisoned");
        let families = map
            .iter()
            .map(|(name, fam)| {
                let samples = match &fam.data {
                    FamilyData::Counter(children) => children
                        .iter()
                        .map(|(v, c)| Sample { label_value: v.clone(), value: SampleValue::Int(c.value()) })
                        .collect(),
                    FamilyData::Float(children) => children
                        .iter()
                        .map(|(v, c)| Sample { label_value: v.clone(), value: SampleValue::Float(c.value()) })
                        .collect(),
                    FamilyData::Gauge(children) => children
                        .iter()
                        .map(|(v, g)| Sample { label_value: v.clone(), value: SampleValue::Float(g.value()) })
                        .collect(),
                    FamilyData::Histogram(children) => children
                        .iter()
                        .map(|(v, h)| Sample {
                            label_value: v.clone(),
                            value: SampleValue::Hist {
                                buckets: h.bucket_counts(),
                                sum: h.sum(),
                            },
                        })
                        .collect(),
                };
                FamilySnapshot {
                    name: (*name).into(),
                    help: fam.help.into(),
                    class: fam.class,
                    kind: fam.data.kind(),
                    label: fam.label.map(Into::into),
                    samples,
                }
            })
            .collect();
        Snapshot { families }
    }
}

fn pick_counter(data: &mut FamilyData, value: &str) -> Option<Counter> {
    match data {
        FamilyData::Counter(children) => Some(children.entry(value.into()).or_default().clone()),
        _ => None,
    }
}

fn pick_float(data: &mut FamilyData, value: &str) -> Option<FloatCounter> {
    match data {
        FamilyData::Float(children) => Some(children.entry(value.into()).or_default().clone()),
        _ => None,
    }
}

fn pick_gauge(data: &mut FamilyData, value: &str) -> Option<Gauge> {
    match data {
        FamilyData::Gauge(children) => Some(children.entry(value.into()).or_default().clone()),
        _ => None,
    }
}

fn pick_hist(data: &mut FamilyData, value: &str) -> Option<Histogram> {
    match data {
        FamilyData::Histogram(children) => Some(children.entry(value.into()).or_default().clone()),
        _ => None,
    }
}

/// One sample within a family snapshot.
#[derive(Debug, Clone)]
pub(crate) struct Sample {
    pub(crate) label_value: String,
    pub(crate) value: SampleValue,
}

#[derive(Debug, Clone)]
// Snapshots are built once per scrape and iterated immediately; the
// inline bucket array beats a per-sample allocation there.
#[allow(clippy::large_enum_variant)]
pub(crate) enum SampleValue {
    Int(u64),
    Float(f64),
    Hist { buckets: [u64; HIST_BUCKETS], sum: f64 },
}

/// One family within a [`Snapshot`].
#[derive(Debug, Clone)]
pub(crate) struct FamilySnapshot {
    pub(crate) name: String,
    pub(crate) help: String,
    pub(crate) class: Class,
    pub(crate) kind: Kind,
    pub(crate) label: Option<String>,
    pub(crate) samples: Vec<Sample>,
}

/// A point-in-time merge of a [`Registry`]: queryable values plus
/// Prometheus text rendering.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub(crate) families: Vec<FamilySnapshot>,
}

impl Snapshot {
    fn find(&self, name: &str) -> Option<&FamilySnapshot> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Value of the unlabelled integer counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counter_labeled(name, "").unwrap_or(0)
    }

    /// Value of the `label=value` child of counter `name`.
    pub fn counter_labeled(&self, name: &str, value: &str) -> Option<u64> {
        let fam = self.find(name)?;
        fam.samples.iter().find(|s| s.label_value == value).and_then(|s| match s.value {
            SampleValue::Int(v) => Some(v),
            _ => None,
        })
    }

    /// Sum of an integer counter family across all label values.
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.find(name)
            .map(|f| {
                f.samples
                    .iter()
                    .map(|s| match s.value {
                        SampleValue::Int(v) => v,
                        _ => 0,
                    })
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Sum of a float counter (or gauge) family across all label
    /// values (0.0 when absent).
    pub fn float_sum(&self, name: &str) -> f64 {
        self.find(name)
            .map(|f| {
                f.samples
                    .iter()
                    .map(|s| match s.value {
                        SampleValue::Float(v) => v,
                        _ => 0.0,
                    })
                    .sum()
            })
            .unwrap_or(0.0)
    }

    /// Renders every family in Prometheus text format 0.0.4.
    pub fn render(&self) -> String {
        self.render_filtered(|_| true)
    }

    /// Renders only [`Class::Deterministic`] families — the golden-file
    /// subset, byte-identical across thread counts.
    pub fn render_deterministic(&self) -> String {
        self.render_filtered(|f| f.class == Class::Deterministic)
    }

    fn render_filtered(&self, keep: impl Fn(&FamilySnapshot) -> bool) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for fam in self.families.iter().filter(|f| keep(f)) {
            let _ = writeln!(out, "# HELP {} {}", fam.name, fam.help);
            let _ = writeln!(out, "# TYPE {} {}", fam.name, fam.kind.type_name());
            let mut samples: Vec<&Sample> = fam.samples.iter().collect();
            // Numeric-aware label ordering (layer="10" after layer="9")
            // with a lexicographic fallback; fully deterministic.
            samples.sort_by(|a, b| {
                let ka = (a.label_value.parse::<u64>().ok(), &a.label_value);
                let kb = (b.label_value.parse::<u64>().ok(), &b.label_value);
                ka.cmp(&kb)
            });
            for s in samples {
                let label = match (&fam.label, s.label_value.as_str()) {
                    (Some(l), v) => format!("{{{}=\"{}\"}}", l, escape_label(v)),
                    (None, _) => String::new(),
                };
                match &s.value {
                    SampleValue::Int(v) => {
                        let _ = writeln!(out, "{}{} {}", fam.name, label, v);
                    }
                    SampleValue::Float(v) => {
                        let _ = writeln!(out, "{}{} {}", fam.name, label, fmt_f64(*v));
                    }
                    SampleValue::Hist { buckets, sum } => {
                        let inner = match (&fam.label, s.label_value.as_str()) {
                            (Some(l), v) => format!("{}=\"{}\",", l, escape_label(v)),
                            (None, _) => String::new(),
                        };
                        let mut cumulative = 0u64;
                        for (i, b) in buckets.iter().enumerate() {
                            cumulative += b;
                            let _ = writeln!(
                                out,
                                "{}_bucket{{{}le=\"{}\"}} {}",
                                fam.name,
                                inner,
                                bucket_le(i),
                                cumulative
                            );
                        }
                        let _ = writeln!(out, "{}_sum{} {}", fam.name, label, fmt_f64(*sum));
                        let _ = writeln!(out, "{}_count{} {}", fam.name, label, cumulative);
                    }
                }
            }
        }
        out
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn fmt_f64(v: f64) -> String {
    if v.is_infinite() {
        return if v > 0.0 { "+Inf".into() } else { "-Inf".into() };
    }
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_reads_back() {
        let r = Registry::new();
        let c = r.counter("t_total", "help", Class::Deterministic);
        c.inc();
        c.add(41);
        assert_eq!(c.value(), 42);
        assert_eq!(r.snapshot().counter("t_total"), 42);
    }

    #[test]
    fn handles_share_state_and_reregistration_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("t_total", "help", Class::Deterministic);
        let b = r.counter("t_total", "help", Class::Deterministic);
        a.add(2);
        b.add(3);
        assert_eq!(a.value(), 5);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("t_total", "help", Class::Deterministic);
        let _ = r.gauge("t_total", "help");
    }

    #[test]
    fn labeled_counters_are_independent_children() {
        let r = Registry::new();
        r.counter_with("o_total", "h", Class::Deterministic, "class", "sdc").add(3);
        r.counter_with("o_total", "h", Class::Deterministic, "class", "due").add(4);
        let s = r.snapshot();
        assert_eq!(s.counter_labeled("o_total", "sdc"), Some(3));
        assert_eq!(s.counter_labeled("o_total", "due"), Some(4));
        assert_eq!(s.counter_sum("o_total"), 7);
    }

    #[test]
    fn float_counter_accumulates() {
        let r = Registry::new();
        let f = r.float_counter("busy_seconds_total", "h", Class::Runtime);
        f.add(0.5);
        f.add(0.25);
        assert!((f.value() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let r = Registry::new();
        let g = r.gauge("threads", "h");
        g.set(4.0);
        g.set(7.0);
        assert_eq!(g.value(), 7.0);
    }

    // -- histogram bucket boundary pins (satellite: zero, subnormal,
    //    exact powers of two, f64::MAX overflow) --

    #[test]
    fn zero_and_negative_land_in_the_zero_bucket() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-0.0), 0);
        assert_eq!(bucket_index(-5.5), 0);
    }

    #[test]
    fn subnormals_clamp_into_the_smallest_power_bucket() {
        assert_eq!(bucket_index(f64::MIN_POSITIVE / 2.0), 1);
        assert_eq!(bucket_index(f64::from_bits(1)), 1);
    }

    #[test]
    fn exact_powers_of_two_land_on_their_own_boundary() {
        for k in HIST_K_MIN..=HIST_K_MAX {
            let v = 2f64.powi(k);
            let idx = bucket_index(v);
            assert_eq!(idx, (k - HIST_K_MIN) as usize + 1, "2^{k} must land on le=2^{k}");
            // Just above the boundary spills into the next bucket.
            let above = bucket_index(v * 1.0000001);
            assert_eq!(above, idx + 1, "just above 2^{k} must spill over");
        }
    }

    #[test]
    fn f64_max_and_non_finite_land_in_the_overflow_bucket() {
        assert_eq!(bucket_index(f64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_index(f64::INFINITY), HIST_BUCKETS - 1);
        assert_eq!(bucket_index(f64::NAN), HIST_BUCKETS - 1);
        assert_eq!(bucket_index(2f64.powi(HIST_K_MAX) * 1.01), HIST_BUCKETS - 1);
    }

    #[test]
    fn bucket_le_labels_are_prometheus_style() {
        assert_eq!(bucket_le(0), "0");
        assert_eq!(bucket_le((0 - HIST_K_MIN) as usize + 1, ), "1");
        assert_eq!(bucket_le((1 - HIST_K_MIN) as usize + 1), "2");
        assert_eq!(bucket_le(HIST_BUCKETS - 1), "+Inf");
        assert_eq!(bucket_le(1), format!("{:e}", 2f64.powi(HIST_K_MIN)));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let r = Registry::new();
        let h = r.histogram("scope_seconds", "h");
        h.observe(0.0);
        h.observe(1.0);
        h.observe(1.0);
        h.observe(f64::MAX);
        assert_eq!(h.count(), 4);
        let text = r.snapshot().render();
        assert!(text.contains("# TYPE scope_seconds histogram"), "{text}");
        assert!(text.contains("scope_seconds_bucket{le=\"0\"} 1"), "{text}");
        assert!(text.contains("scope_seconds_bucket{le=\"1\"} 3"), "{text}");
        assert!(text.contains("scope_seconds_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(text.contains("scope_seconds_count 4"), "{text}");
    }

    #[test]
    fn deterministic_rendering_excludes_runtime_families() {
        let r = Registry::new();
        r.counter("det_total", "d", Class::Deterministic).inc();
        r.counter("rt_total", "r", Class::Runtime).inc();
        r.histogram("h_seconds", "h").observe(1.0);
        let det = r.snapshot().render_deterministic();
        assert!(det.contains("det_total 1"), "{det}");
        assert!(!det.contains("rt_total"), "{det}");
        assert!(!det.contains("h_seconds"), "{det}");
    }

    #[test]
    fn shard_merge_sums_across_many_threads() {
        let r = Registry::new();
        let c = r.counter("threaded_total", "h", Class::Runtime);
        let h = r.histogram("threaded_seconds", "h");
        std::thread::scope(|s| {
            for _ in 0..7 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                        h.observe(0.5);
                    }
                });
            }
        });
        assert_eq!(c.value(), 7000);
        assert_eq!(h.count(), 7000);
        assert!((h.sum() - 3500.0).abs() < 1e-9);
    }

    #[test]
    fn label_values_render_numerically_ordered() {
        let r = Registry::new();
        for layer in [10usize, 2, 1] {
            r.counter_with("layer_total", "h", Class::Deterministic, "layer", &layer.to_string()).inc();
        }
        let text = r.snapshot().render();
        let l1 = text.find("layer=\"1\"").unwrap();
        let l2 = text.find("layer=\"2\"").unwrap();
        let l10 = text.find("layer=\"10\"").unwrap();
        assert!(l1 < l2 && l2 < l10, "{text}");
    }
}
