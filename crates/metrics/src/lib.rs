//! Live metrics for ALFI campaigns — a std-only, dependency-free
//! observability layer in three parts:
//!
//! 1. [`Registry`]: a sharded, lock-cheap registry of named
//!    [`Counter`]s, [`FloatCounter`]s, [`Gauge`]s and log₂-bucketed
//!    [`Histogram`]s. Hot-path updates are one relaxed atomic add on a
//!    per-thread shard; shards are merged only when a [`Snapshot`] is
//!    taken, so instrumented kernels never contend on a shared cache
//!    line.
//! 2. Exposition: Prometheus-text-format (0.0.4) rendering, a one-shot
//!    `metrics.prom` snapshot writer ([`write_snapshot`]) and an opt-in
//!    background TCP server on [`std::net::TcpListener`] serving
//!    `GET /metrics` ([`MetricsServer`], [`serve_once`]).
//! 3. Health: a [`Watchdog`] that samples the registry and raises
//!    structured [`HealthEvent`]s — campaign stall, DUE/SDC rate above
//!    threshold, NaN storm.
//!
//! # Determinism boundary
//!
//! Every metric carries a [`Class`]. [`Class::Deterministic`] series
//! (scope/item/injection/outcome counts) depend only on the scenario
//! seed and are byte-identical across thread counts; they are the only
//! series rendered by [`Snapshot::render_deterministic`] and the only
//! ones allowed in golden files. [`Class::Runtime`] series (timings,
//! busy fractions, FLOP throughput) are wall-clock- or
//! schedule-dependent and stay out of golden artifacts.
//!
//! Metric names follow `alfi_<subsystem>_<name>_{total,seconds}`; the
//! well-known names used across the workspace live in [`names`].

mod expose;
mod health;
mod registry;

pub use expose::{serve_once, write_snapshot, MetricsServer, SNAPSHOT_FILE};
pub use health::{
    evaluate, HealthEvent, HealthObservation, HealthPolicy, HealthSink, HealthState, Watchdog,
};
pub use registry::{
    Class, Counter, FloatCounter, Gauge, Histogram, Kind, Registry, Snapshot, HIST_BUCKETS,
    HIST_K_MAX, HIST_K_MIN,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Well-known metric names used by the instrumented crates. Following
/// the workspace convention `alfi_<subsystem>_<name>_{total,seconds}`.
pub mod names {
    /// Fault scopes completed by the campaign engine (deterministic).
    pub const ENGINE_SCOPES: &str = "alfi_engine_scopes_total";
    /// Per-image rows produced by the campaign engine (deterministic).
    pub const ENGINE_ITEMS: &str = "alfi_engine_items_total";
    /// Wall-clock histogram of per-scope processing time (runtime).
    pub const ENGINE_SCOPE_SECONDS: &str = "alfi_engine_scope_seconds";
    /// Faults applied across the campaign (deterministic).
    pub const CAMPAIGN_INJECTIONS: &str = "alfi_campaign_injections_total";
    /// Faults applied per layer, labelled `layer` (deterministic).
    pub const CAMPAIGN_LAYER_INJECTIONS: &str = "alfi_campaign_layer_injections_total";
    /// Fault-effect outcomes, labelled `class` ∈ masked/sdc/due
    /// (deterministic).
    pub const CAMPAIGN_OUTCOMES: &str = "alfi_campaign_outcomes_total";
    /// Non-finite values in corrupted outputs, labelled `kind` ∈
    /// nan/inf (deterministic).
    pub const CAMPAIGN_NONFINITE: &str = "alfi_campaign_nonfinite_total";
    /// Worker threads owned by the shared pool (runtime gauge).
    pub const POOL_THREADS: &str = "alfi_pool_threads";
    /// Fan-out jobs executed by the pool, inline runs included
    /// (runtime).
    pub const POOL_JOBS: &str = "alfi_pool_jobs_total";
    /// Individual tasks claimed by pool participants (runtime).
    pub const POOL_TASKS: &str = "alfi_pool_tasks_total";
    /// Seconds participants spent running tasks, labelled `worker`
    /// (runtime).
    pub const POOL_BUSY_SECONDS: &str = "alfi_pool_busy_seconds_total";
    /// Floating-point operations issued by the matmul kernel (runtime).
    pub const TENSOR_MATMUL_FLOPS: &str = "alfi_tensor_matmul_flops_total";
    /// Bytes touched by the matmul kernel (runtime).
    pub const TENSOR_MATMUL_BYTES: &str = "alfi_tensor_matmul_bytes_total";
    /// Floating-point operations issued by the im2col conv kernel
    /// (runtime).
    pub const TENSOR_CONV_FLOPS: &str = "alfi_tensor_conv_flops_total";
    /// Bytes touched by the im2col conv kernel (runtime).
    pub const TENSOR_CONV_BYTES: &str = "alfi_tensor_conv_bytes_total";
    /// Bytes written into packed B panels by the blocked GEMM, counted
    /// once per GEMM invocation (runtime).
    pub const TENSOR_GEMM_PACK_BYTES: &str = "alfi_tensor_gemm_pack_bytes_total";
    /// Health watchdog events raised, labelled `kind` (runtime).
    pub const HEALTH_EVENTS: &str = "alfi_health_events_total";
    /// Statistical stop decisions, labelled `verdict` ∈ stop/retire
    /// (deterministic — decisions fire only at scope boundaries).
    pub const CAMPAIGN_STOP_DECISIONS: &str = "alfi_campaign_stop_decisions_total";
    /// Fault scopes skipped because their layer stratum was already
    /// retired by the stop policy (deterministic).
    pub const ENGINE_SCOPES_SKIPPED: &str = "alfi_engine_scopes_skipped_total";
    /// Result rows appended to the campaign's artifact sink
    /// (deterministic).
    pub const STORE_ROWS_WRITTEN: &str = "alfi_store_rows_written_total";
    /// Bytes persisted by the campaign's artifact sink (deterministic —
    /// artifacts are byte-identical at every thread count).
    pub const STORE_BYTES_WRITTEN: &str = "alfi_store_bytes_written_total";
    /// Rows returned by columnar-store replay lookups (runtime).
    pub const STORE_ROWS_READ: &str = "alfi_store_rows_read_total";
    /// Bytes fetched from disk by columnar-store replay lookups
    /// (runtime).
    pub const STORE_BYTES_READ: &str = "alfi_store_bytes_read_total";
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();
static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-wide registry. Library crates (`alfi-pool`,
/// `alfi-tensor`) record here when [`global_enabled`] is set; the CLI
/// exposition endpoint serves it.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Whether background instrumentation (pool/tensor kernels) should
/// record into the [`global`] registry. Off by default so
/// un-instrumented runs pay a single relaxed load per kernel call.
#[inline]
pub fn global_enabled() -> bool {
    GLOBAL_ENABLED.load(Ordering::Relaxed)
}

/// Turns background instrumentation of the [`global`] registry on or
/// off. Enabled automatically by the campaign engine when a run asks
/// for any metrics surface.
pub fn set_global_enabled(on: bool) {
    GLOBAL_ENABLED.store(on, Ordering::Relaxed);
}
