//! Deterministic in-tree PRNG for the ALFI workspace.
//!
//! The paper's replay guarantee (PAPER.md §IV) rests on seeded randomness:
//! a scenario seed must reproduce the exact same fault matrix, weight
//! initialisation, and dataset ordering on every machine, forever. Owning
//! the generator in-tree makes that guarantee auditable and removes the
//! only registry dependency on the hot sampling path.
//!
//! # Algorithm
//!
//! The core generator is **xoshiro256\*\*** (Blackman & Vigna, 2018): a
//! 256-bit state, period 2^256 − 1, excellent statistical quality, and a
//! handful of shifts/rotates per draw. A 64-bit user seed is expanded to
//! the 256-bit state with **SplitMix64**, the standard seeding procedure
//! recommended by the xoshiro authors (it guarantees a non-zero,
//! well-mixed state for every seed, including 0).
//!
//! Integer ranges use Lemire's widening-multiply method with rejection,
//! so `gen_range` is unbiased for every span. Floats are built from the
//! high bits of a draw (24 for `f32`, 53 for `f64`), giving uniform
//! values in `[0, 1)` that are then affinely mapped onto the requested
//! range; half-open ranges never return their upper bound.
//!
//! # Example
//!
//! ```
//! use alfi_rng::Rng;
//!
//! let mut a = Rng::from_seed(42);
//! let mut b = Rng::from_seed(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x: f32 = a.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&x));
//! let k = a.gen_range(0..10usize);
//! assert!(k < 10);
//! ```

use std::ops::{Range, RangeInclusive};

/// Deterministic pseudo-random number generator (xoshiro256\*\*).
///
/// Construct with [`Rng::from_seed`]; every draw sequence is a pure
/// function of the seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step: advances `state` and returns the next output.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The seed is expanded to the 256-bit xoshiro state with SplitMix64,
    /// so every seed (including 0) yields a valid, well-mixed state and
    /// nearby seeds produce uncorrelated streams.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        Rng { s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)] }
    }

    /// Returns the next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next raw 32-bit output (high half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f32` in `[0, 1)` with 24 bits of precision.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Samples uniformly from `range` (`lo..hi` half-open or `lo..=hi`
    /// inclusive; integer and float element types).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        self.next_f64() < p
    }

    /// Samples a normal distribution via Box–Muller.
    pub fn gen_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        // Avoid ln(0) by drawing u1 from (0, 1].
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let mag = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * mag * (std::f64::consts::TAU * u2).cos()
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = bounded_u64(self, i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[bounded_u64(self, slice.len() as u64) as usize])
        }
    }
}

/// Unbiased draw from `[0, span)` via Lemire's widening multiply with
/// rejection. `span == 0` means the full 64-bit range.
#[inline]
fn bounded_u64(rng: &mut Rng, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let mut m = (rng.next_u64() as u128) * (span as u128);
    let mut low = m as u64;
    if low < span {
        let threshold = span.wrapping_neg() % span;
        while low < threshold {
            m = (rng.next_u64() as u128) * (span as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Element types that [`Rng::gen_range`] can sample.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open(rng: &mut Rng, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive(rng: &mut Rng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as i128).wrapping_sub(lo as i128) as u64;
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
            #[inline]
            fn sample_inclusive(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                // span = hi - lo + 1; 0 encodes the full 64-bit range.
                let span = ((hi as i128).wrapping_sub(lo as i128) as u64).wrapping_add(1);
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Largest `f32` strictly below `x` (for finite, non-minimum `x`).
fn next_down_f32(x: f32) -> f32 {
    let bits = x.to_bits();
    if x > 0.0 {
        f32::from_bits(bits - 1)
    } else if x < 0.0 {
        f32::from_bits(bits + 1)
    } else {
        -f32::from_bits(1)
    }
}

/// Largest `f64` strictly below `x` (for finite, non-minimum `x`).
fn next_down_f64(x: f64) -> f64 {
    let bits = x.to_bits();
    if x > 0.0 {
        f64::from_bits(bits - 1)
    } else if x < 0.0 {
        f64::from_bits(bits + 1)
    } else {
        -f64::from_bits(1)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_half_open(rng: &mut Rng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        let v = lo + rng.next_f32() * (hi - lo);
        // Affine mapping can round up to `hi`; half-open excludes it.
        if v < hi {
            v
        } else {
            next_down_f32(hi).max(lo)
        }
    }
    #[inline]
    fn sample_inclusive(rng: &mut Rng, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / ((1u32 << 24) - 1) as f32);
        (lo + u * (hi - lo)).clamp(lo, hi)
    }
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open(rng: &mut Rng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        let v = lo + rng.next_f64() * (hi - lo);
        if v < hi {
            v
        } else {
            next_down_f64(hi).max(lo)
        }
    }
    #[inline]
    fn sample_inclusive(rng: &mut Rng, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        (lo + u * (hi - lo)).clamp(lo, hi)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample(self, rng: &mut Rng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample(self, rng: &mut Rng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample(self, rng: &mut Rng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::from_seed(7);
        let mut b = Rng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::from_seed(1);
        let mut b = Rng::from_seed(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn zero_seed_is_valid() {
        let mut r = Rng::from_seed(0);
        let xs: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(xs.iter().any(|&x| x != 0));
    }

    #[test]
    fn known_answer_xoshiro256starstar() {
        // Reference: xoshiro256** with state seeded by SplitMix64(0) must
        // match the published algorithm. We lock the first outputs so any
        // accidental change to the core permutation is caught.
        let mut r = Rng::from_seed(0);
        let first = r.next_u64();
        let mut r2 = Rng::from_seed(0);
        assert_eq!(first, r2.next_u64());
        // State after seeding with SplitMix64 from 0:
        let mut sm = 0u64;
        let s = [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        assert_eq!(s[0], 0xE220_A839_7B1D_CDAF);
        let expect = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        assert_eq!(first, expect);
    }

    #[test]
    fn int_range_half_open_respects_bounds() {
        let mut r = Rng::from_seed(3);
        for _ in 0..10_000 {
            let x = r.gen_range(5..17usize);
            assert!((5..17).contains(&x));
            let y = r.gen_range(-4..9i32);
            assert!((-4..9).contains(&y));
        }
    }

    #[test]
    fn int_range_inclusive_hits_both_ends() {
        let mut r = Rng::from_seed(4);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let x = r.gen_range(0..=3u8);
            assert!(x <= 3);
            lo_seen |= x == 0;
            hi_seen |= x == 3;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn full_u64_inclusive_range_does_not_panic() {
        let mut r = Rng::from_seed(5);
        let _ = r.gen_range(0..=u64::MAX);
    }

    #[test]
    fn float_range_half_open_excludes_upper_bound() {
        let mut r = Rng::from_seed(6);
        for _ in 0..10_000 {
            let x: f32 = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x), "{x}");
            let y: f64 = r.gen_range(0.0..0.125);
            assert!((0.0..0.125).contains(&y), "{y}");
        }
    }

    #[test]
    fn int_range_is_roughly_uniform() {
        let mut r = Rng::from_seed(11);
        let mut counts = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[r.gen_range(0..8usize)] += 1;
        }
        let expect = n / 8;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < (expect / 5) as u64,
                "bucket {i} count {c} far from {expect}"
            );
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::from_seed(12);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "{hits}");
    }

    #[test]
    fn normal_has_expected_moments() {
        let mut r = Rng::from_seed(13);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gen_normal(2.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        Rng::from_seed(9).shuffle(&mut a);
        Rng::from_seed(9).shuffle(&mut b);
        assert_eq!(a, b);
        assert_ne!(a, (0..50).collect::<Vec<_>>());
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = Rng::from_seed(10);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*r.choose(&items).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert!(r.choose::<u8>(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::from_seed(0).gen_range(5..5usize);
    }
}
