#![warn(missing_docs)]
//! # alfi-pool
//!
//! A small, std-only, persistent thread pool shared by the whole ALFI
//! workspace. It exists because the paper's value proposition is
//! *validation efficiency*: large fault-injection sweeps must use every
//! core without perturbing results. The pool therefore guarantees a
//! **determinism contract** (see DESIGN.md):
//!
//! 1. **Fixed work decomposition.** Callers split work into index ranges
//!    or fixed-size chunks whose boundaries depend only on the problem
//!    size, never on the thread count.
//! 2. **Ordered merge.** Results are written into caller-provided,
//!    index-addressed slots (`run_indexed`, `parallel_chunks_mut`), so
//!    the merged output is independent of task scheduling.
//! 3. **No atomics in reductions.** The pool offers no reducing
//!    combinators; every floating-point accumulation happens inside a
//!    single task exactly as the sequential code would perform it.
//!
//! Under this contract a parallel run is *bit-identical* to the
//! sequential run for any thread count, which the workspace locks down
//! with differential and golden-file tests.
//!
//! # Sizing
//!
//! The global pool ([`global`]) is created on first use inside a
//! `OnceLock`. `ALFI_POOL_THREADS=<n>` fixes its parallelism as a hard
//! cap (`1` forces fully sequential execution everywhere — CI runs the
//! test suite once that way and once unsized). When the variable is
//! unset the pool defaults to [`std::thread::available_parallelism`]
//! but may *grow* worker threads on demand when a caller explicitly
//! requests more (e.g. `run_parallel(7)` on a dual-core machine), up to
//! [`MAX_THREADS`].
//!
//! # Nesting
//!
//! A task running on the pool that calls back into the pool executes
//! inline and sequentially ([`in_parallel_task`] is true there, and
//! [`current_parallelism`] reports 1). Campaign-level tasks therefore
//! run their tensor kernels sequentially instead of oversubscribing the
//! machine, and no worker ever blocks on a nested job — which rules out
//! pool deadlock by construction.

use std::any::Any;
use std::cell::Cell;

/// Hot-path instrumentation into the global `alfi-metrics` registry,
/// active only while `alfi_metrics::global_enabled()`. Cost model: one
/// relaxed load per fan-out when disabled; one shard add per job plus
/// two clock reads per job-join when enabled — never per task.
mod meter {
    use alfi_metrics::{names, Class, Counter, FloatCounter};
    use std::cell::OnceCell;
    use std::sync::OnceLock;
    use std::time::Instant;

    struct Handles {
        jobs: Counter,
        tasks: Counter,
    }

    fn handles() -> &'static Handles {
        static H: OnceLock<Handles> = OnceLock::new();
        H.get_or_init(|| {
            let reg = alfi_metrics::global();
            Handles {
                jobs: reg.counter(
                    names::POOL_JOBS,
                    "Fan-out jobs executed by the shared pool (inline runs included)",
                    Class::Runtime,
                ),
                tasks: reg.counter(
                    names::POOL_TASKS,
                    "Individual tasks submitted to the shared pool",
                    Class::Runtime,
                ),
            }
        })
    }

    /// Counts one fan-out of `n` tasks.
    pub(crate) fn job_submitted(n: u64) {
        if alfi_metrics::global_enabled() {
            let h = handles();
            h.jobs.inc();
            h.tasks.add(n);
        }
    }

    /// Records the global pool's parallelism on first use.
    pub(crate) fn set_pool_threads(n: usize) {
        alfi_metrics::global()
            .gauge(names::POOL_THREADS, "Parallelism (workers + caller) of the shared pool")
            .set(n as f64);
    }

    /// Starts a busy-time measurement for one job-join (`None` while
    /// instrumentation is disabled).
    pub(crate) fn busy_start() -> Option<Instant> {
        if alfi_metrics::global_enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    thread_local! {
        /// This participant's `worker="i"` busy-seconds handle, cached
        /// so the registry lock is taken once per thread, not per job.
        static BUSY: OnceCell<FloatCounter> = const { OnceCell::new() };
    }

    /// Ends a busy-time measurement, attributing the elapsed seconds
    /// to the current participant (`worker="0"` is the submitting
    /// caller, `worker="i+1"` pool worker `i`).
    pub(crate) fn busy_end(start: Option<Instant>) {
        let Some(t0) = start else { return };
        let secs = t0.elapsed().as_secs_f64();
        BUSY.with(|cell| {
            cell.get_or_init(|| {
                alfi_metrics::global().float_counter_with(
                    names::POOL_BUSY_SECONDS,
                    "Seconds pool participants spent running tasks, by worker index",
                    Class::Runtime,
                    "worker",
                    &crate::worker_index().to_string(),
                )
            })
            .add(secs);
        });
    }
}
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard upper bound on pool parallelism (worker threads + caller).
pub const MAX_THREADS: usize = 64;

/// Environment variable fixing the global pool's parallelism.
pub const POOL_THREADS_ENV: &str = "ALFI_POOL_THREADS";

thread_local! {
    /// True while the current thread is executing a pool task.
    static IN_TASK: Cell<bool> = const { Cell::new(false) };
    /// Thread-local override of the default parallelism (see
    /// [`with_parallelism`]).
    static LOCAL_CAP: Cell<Option<usize>> = const { Cell::new(None) };
    /// Deterministic identity of the current thread for observability:
    /// `0` on every non-pool thread, `i + 1` on worker `alfi-pool-{i}`.
    /// Set once at spawn and never changed (see [`worker_index`]).
    static WORKER_INDEX: Cell<usize> = const { Cell::new(0) };
}

/// A captured panic from a pool worker, with best-effort message
/// extraction for error reporting.
pub struct PoolPanic(Box<dyn Any + Send + 'static>);

impl PoolPanic {
    /// The panic message when the payload was a string, or a
    /// placeholder otherwise.
    pub fn message(&self) -> String {
        if let Some(s) = self.0.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = self.0.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    }

    /// Re-raises the captured panic on the current thread.
    pub fn resume(self) -> ! {
        resume_unwind(self.0)
    }
}

impl std::fmt::Debug for PoolPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PoolPanic({})", self.message())
    }
}

/// Lifetime-erased pointer to a `Fn(usize) + Sync` task closure. The
/// submitting call blocks until every claimed index has finished, so
/// the closure outlives every dereference.
struct RawTask(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: the closure behind the pointer is `Sync` (shared calls from
// many threads are allowed) and the submission protocol guarantees it
// is alive for as long as any worker can observe the job.
unsafe impl Send for RawTask {}
unsafe impl Sync for RawTask {}

/// One fan-out submission: `n` index tasks drained via an atomic
/// cursor, with a completion latch and first-panic capture.
struct Job {
    task: RawTask,
    n: usize,
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// Maximum number of *workers* (excluding the submitting thread)
    /// allowed to join this job.
    max_helpers: usize,
    /// Workers that have joined so far.
    helpers: AtomicUsize,
    /// Set after a task panicked: remaining tasks are skipped.
    aborted: AtomicBool,
    /// First captured panic payload.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// Completion latch: counts settled (run or skipped) tasks.
    done: Mutex<usize>,
    done_cv: Condvar,
}

impl Job {
    fn has_work(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.n
    }

    /// Tries to reserve a helper slot for a worker thread.
    fn try_enter(&self) -> bool {
        let mut cur = self.helpers.load(Ordering::Relaxed);
        loop {
            if cur >= self.max_helpers {
                return false;
            }
            match self.helpers.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    /// Claims and runs tasks until the cursor is exhausted. Panics are
    /// captured (first wins) and abort the remaining tasks; every
    /// claimed index still counts toward the completion latch.
    fn run_tasks(&self) {
        // SAFETY: see `RawTask` — the closure outlives the job.
        let task = unsafe { &*self.task.0 };
        let _guard = TaskGuard::enter();
        let busy = meter::busy_start();
        loop {
            let idx = self.next.fetch_add(1, Ordering::Relaxed);
            if idx >= self.n {
                break;
            }
            if !self.aborted.load(Ordering::Relaxed) {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(idx))) {
                    self.aborted.store(true, Ordering::Relaxed);
                    let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
            let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
            *done += 1;
            if *done == self.n {
                self.done_cv.notify_all();
            }
        }
        meter::busy_end(busy);
    }

    fn wait_done(&self) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        while *done < self.n {
            done = self.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// RAII guard marking the current thread as inside a pool task.
struct TaskGuard {
    was: bool,
}

impl TaskGuard {
    fn enter() -> Self {
        let was = IN_TASK.with(|c| c.replace(true));
        TaskGuard { was }
    }
}

impl Drop for TaskGuard {
    fn drop(&mut self) {
        let was = self.was;
        IN_TASK.with(|c| c.set(was));
    }
}

/// Shared worker/submitter state.
struct Inner {
    /// Jobs currently accepting helpers, in submission order.
    jobs: Mutex<VecDeque<Arc<Job>>>,
    jobs_cv: Condvar,
    shutdown: AtomicBool,
}

impl Inner {
    fn worker_loop(&self) {
        loop {
            let job = {
                let mut jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(job) =
                        jobs.iter().find(|j| j.has_work() && j.try_enter()).cloned()
                    {
                        break Some(job);
                    }
                    if self.shutdown.load(Ordering::Relaxed) {
                        break None;
                    }
                    jobs = self.jobs_cv.wait(jobs).unwrap_or_else(|e| e.into_inner());
                }
            };
            match job {
                Some(job) => job.run_tasks(),
                None => return,
            }
        }
    }
}

/// A persistent, deterministic-by-construction thread pool.
///
/// The submitting thread always participates in its own jobs, so a
/// pool of parallelism `t` uses at most `t - 1` worker threads plus
/// the caller. A pool of parallelism 1 has no workers and runs
/// everything inline.
pub struct ThreadPool {
    inner: Arc<Inner>,
    /// Hard cap on parallelism (workers + caller).
    max_threads: usize,
    /// Whether explicit requests may spawn workers beyond the default.
    growable: bool,
    /// Default parallelism used when a call does not name a cap.
    default_threads: usize,
    /// Worker join handles (empty for the leaked global pool's
    /// accounting is still kept so `Drop` can join private pools).
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("max_threads", &self.max_threads)
            .field("default_threads", &self.default_threads)
            .field("growable", &self.growable)
            .finish()
    }
}

impl ThreadPool {
    /// Creates a fixed-size pool of parallelism `threads` (clamped to
    /// `1..=`[`MAX_THREADS`]): `threads - 1` workers are spawned
    /// eagerly and explicit requests never grow it.
    pub fn new(threads: usize) -> Self {
        let threads = threads.clamp(1, MAX_THREADS);
        let pool = ThreadPool {
            inner: Arc::new(Inner {
                jobs: Mutex::new(VecDeque::new()),
                jobs_cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
            }),
            max_threads: threads,
            growable: false,
            default_threads: threads,
            workers: Mutex::new(Vec::new()),
        };
        pool.ensure_workers(threads.saturating_sub(1));
        pool
    }

    /// Creates the global pool: sized by `ALFI_POOL_THREADS` when set
    /// (fixed), else defaulting to available parallelism but growable
    /// on explicit request.
    fn new_global() -> Self {
        match env_threads() {
            Some(n) => ThreadPool::new(n),
            None => {
                let default = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .clamp(1, MAX_THREADS);
                let pool = ThreadPool {
                    inner: Arc::new(Inner {
                        jobs: Mutex::new(VecDeque::new()),
                        jobs_cv: Condvar::new(),
                        shutdown: AtomicBool::new(false),
                    }),
                    max_threads: MAX_THREADS,
                    growable: true,
                    default_threads: default,
                    workers: Mutex::new(Vec::new()),
                };
                pool.ensure_workers(default.saturating_sub(1));
                pool
            }
        }
    }

    /// The pool's default parallelism (workers + caller) when a call
    /// does not request a specific thread count.
    pub fn threads(&self) -> usize {
        self.default_threads
    }

    /// The hard cap every request is clamped to.
    pub fn max_threads(&self) -> usize {
        self.max_threads
    }

    /// Spawns workers until at least `want` exist (bounded by the hard
    /// cap).
    fn ensure_workers(&self, want: usize) {
        let want = want.min(self.max_threads.saturating_sub(1));
        let mut workers = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        while workers.len() < want {
            let inner = Arc::clone(&self.inner);
            let index = workers.len() + 1;
            let name = format!("alfi-pool-{}", workers.len());
            let handle = std::thread::Builder::new()
                .name(name)
                .spawn(move || {
                    WORKER_INDEX.with(|c| c.set(index));
                    inner.worker_loop()
                })
                .expect("spawning a pool worker thread failed");
            workers.push(handle);
        }
    }

    /// Clamps a requested thread count against the pool's policy and
    /// the calling context (nested calls run sequentially).
    fn effective_threads(&self, requested: usize) -> usize {
        if in_parallel_task() {
            return 1;
        }
        let requested = requested.clamp(1, self.max_threads);
        if self.growable {
            requested
        } else {
            requested.min(self.default_threads)
        }
    }

    /// Runs `f(i)` for every `i in 0..n` with parallelism at most
    /// `threads`, blocking until all calls finished. Task-to-thread
    /// assignment is dynamic (atomic cursor), which is safe because
    /// each index writes only its own output.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic raised by any task.
    pub fn for_each(&self, threads: usize, n: usize, f: impl Fn(usize) + Sync) {
        if let Err(p) = self.try_for_each(threads, n, f) {
            p.resume();
        }
    }

    /// [`ThreadPool::for_each`], but a task panic is captured and
    /// returned instead of propagated.
    ///
    /// # Errors
    ///
    /// Returns the first captured [`PoolPanic`].
    pub fn try_for_each(
        &self,
        threads: usize,
        n: usize,
        f: impl Fn(usize) + Sync,
    ) -> Result<(), PoolPanic> {
        if n == 0 {
            return Ok(());
        }
        let threads = self.effective_threads(threads).min(n);
        meter::job_submitted(n as u64);
        if threads <= 1 {
            let guard = TaskGuard::enter();
            let busy = meter::busy_start();
            for i in 0..n {
                match catch_unwind(AssertUnwindSafe(|| f(i))) {
                    Ok(()) => {}
                    Err(payload) => {
                        drop(guard);
                        return Err(PoolPanic(payload));
                    }
                }
            }
            meter::busy_end(busy);
            return Ok(());
        }
        self.ensure_workers(threads - 1);

        let task: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: transmuting only the lifetime of the trait object;
        // this call blocks until every claimed task settled, so the
        // closure strictly outlives all uses.
        let task: *const (dyn Fn(usize) + Sync + 'static) =
            unsafe { std::mem::transmute(task as *const (dyn Fn(usize) + Sync)) };
        let job = Arc::new(Job {
            task: RawTask(task),
            n,
            next: AtomicUsize::new(0),
            max_helpers: threads - 1,
            helpers: AtomicUsize::new(0),
            aborted: AtomicBool::new(false),
            panic: Mutex::new(None),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
        });
        {
            let mut jobs = self.inner.jobs.lock().unwrap_or_else(|e| e.into_inner());
            jobs.push_back(Arc::clone(&job));
            self.inner.jobs_cv.notify_all();
        }
        job.run_tasks();
        job.wait_done();
        {
            let mut jobs = self.inner.jobs.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(pos) = jobs.iter().position(|j| Arc::ptr_eq(j, &job)) {
                jobs.remove(pos);
            }
        }
        let payload = job.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
        match payload {
            Some(p) => Err(PoolPanic(p)),
            None => Ok(()),
        }
    }

    /// Runs `f(i)` for every `i in 0..n` and collects the results in
    /// index order — the scheduling-independent "ordered merge" of the
    /// determinism contract.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic raised by any task (already-produced
    /// results are leaked in that case).
    pub fn run_indexed<T: Send>(
        &self,
        threads: usize,
        n: usize,
        f: impl Fn(usize) -> T + Sync,
    ) -> Vec<T> {
        match self.try_run_indexed(threads, n, f) {
            Ok(v) => v,
            Err(p) => p.resume(),
        }
    }

    /// [`ThreadPool::run_indexed`], but a task panic is captured and
    /// returned instead of propagated.
    ///
    /// # Errors
    ///
    /// Returns the first captured [`PoolPanic`]; already-produced
    /// results are leaked in that case.
    pub fn try_run_indexed<T: Send>(
        &self,
        threads: usize,
        n: usize,
        f: impl Fn(usize) -> T + Sync,
    ) -> Result<Vec<T>, PoolPanic> {
        let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
        out.resize_with(n, MaybeUninit::uninit);
        let base = SendPtr(out.as_mut_ptr());
        self.try_for_each(threads, n, |i| {
            let slot = base;
            // SAFETY: each index is claimed exactly once, so this is
            // the only write to `out[i]`, and `out` outlives the call.
            unsafe { (*slot.0.add(i)).write(f(i)) };
        })?;
        // SAFETY: every slot was initialized (no panic occurred) and
        // `MaybeUninit<T>` is layout-compatible with `T`.
        let vec = unsafe {
            let mut out = std::mem::ManuallyDrop::new(out);
            Vec::from_raw_parts(out.as_mut_ptr() as *mut T, out.len(), out.capacity())
        };
        Ok(vec)
    }

    /// Splits `data` into consecutive chunks of `chunk_len` elements
    /// (the last may be shorter) and runs `f(chunk_index, chunk)` for
    /// each, in parallel. Chunk boundaries depend only on `data.len()`
    /// and `chunk_len` — never on the thread count — which is what
    /// makes row-chunked kernels bit-identical to their sequential
    /// counterparts.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0`, and re-raises task panics.
    pub fn parallel_chunks_mut<T: Send>(
        &self,
        threads: usize,
        data: &mut [T],
        chunk_len: usize,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        assert!(chunk_len > 0, "chunk_len must be nonzero");
        let len = data.len();
        if len == 0 {
            return;
        }
        let n_chunks = len.div_ceil(chunk_len);
        let base = SendPtr(data.as_mut_ptr());
        self.for_each(threads, n_chunks, |ci| {
            let start = ci * chunk_len;
            let end = (start + chunk_len).min(len);
            let ptr = base;
            // SAFETY: chunks are disjoint (`ci` is claimed exactly
            // once) and in-bounds; `data` outlives the call.
            let chunk = unsafe { std::slice::from_raw_parts_mut(ptr.0.add(start), end - start) };
            f(ci, chunk);
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        self.inner.jobs_cv.notify_all();
        let workers = {
            let mut w = self.workers.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *w)
        };
        for handle in workers {
            let _ = handle.join();
        }
    }
}

/// Copyable raw-pointer wrapper that may cross threads. Safety rests on
/// the call-site invariants documented at each use.
struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for SendPtr<T> {}

unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Parses `ALFI_POOL_THREADS` (ignored when unset or unparsable).
fn env_threads() -> Option<usize> {
    std::env::var(POOL_THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.clamp(1, MAX_THREADS))
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The process-wide shared pool (created on first use; see the crate
/// docs for sizing).
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| {
        let pool = ThreadPool::new_global();
        meter::set_pool_threads(pool.threads());
        pool
    })
}

/// True while the calling thread is executing a pool task. Kernels use
/// this to run sequentially instead of nesting parallelism.
pub fn in_parallel_task() -> bool {
    IN_TASK.with(|c| c.get())
}

/// Deterministic index of the current thread for per-worker span
/// attribution (used by `alfi-trace`): `0` for any thread that is not a
/// pool worker (including the submitting caller, which also executes
/// tasks), `i + 1` for the worker named `alfi-pool-{i}`. Indices are
/// assigned at spawn in creation order and are stable for the life of
/// the process, so traces from repeated runs attribute work to the same
/// identities.
pub fn worker_index() -> usize {
    WORKER_INDEX.with(|c| c.get())
}

/// The parallelism a data-parallel kernel should use right now: 1
/// inside a pool task, otherwise the thread-local override set by
/// [`with_parallelism`] or the global pool's default.
pub fn current_parallelism() -> usize {
    if in_parallel_task() {
        return 1;
    }
    let cap = LOCAL_CAP.with(|c| c.get());
    match cap {
        Some(n) => global().effective_threads(n),
        None => global().threads(),
    }
}

/// Runs `f` with [`current_parallelism`] pinned to (at most) `threads`
/// on this thread — the hook benches and differential tests use to
/// sweep kernel thread counts deterministically. `ALFI_POOL_THREADS`
/// remains a hard cap.
pub fn with_parallelism<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let prev = LOCAL_CAP.with(|c| c.replace(Some(threads.max(1))));
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let v = self.0;
            LOCAL_CAP.with(|c| c.set(v));
        }
    }
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_indexed_returns_results_in_index_order() {
        let pool = ThreadPool::new(4);
        let out = pool.run_indexed(4, 100, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let pool = ThreadPool::new(4);
        let seen = Mutex::new(Vec::new());
        pool.for_each(4, 257, |i| {
            seen.lock().unwrap().push(i);
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 257);
        let unique: HashSet<usize> = seen.iter().copied().collect();
        assert_eq!(unique.len(), 257);
    }

    #[test]
    fn worker_indices_are_deterministic_and_bounded() {
        assert_eq!(worker_index(), 0, "a non-pool thread has index 0");
        let pool = ThreadPool::new(4);
        let seen = Mutex::new(HashSet::new());
        pool.for_each(4, 512, |_| {
            seen.lock().unwrap().insert(worker_index());
            std::thread::yield_now();
        });
        let seen = seen.into_inner().unwrap();
        // caller (0) plus at most three spawned workers (1..=3)
        assert!(!seen.is_empty());
        assert!(seen.iter().all(|&w| w <= 3), "indices bounded by pool size: {seen:?}");
        assert_eq!(worker_index(), 0, "caller index unchanged after the run");
    }

    #[test]
    fn parallelism_one_runs_inline_and_in_submission_order() {
        let pool = ThreadPool::new(1);
        let order = Mutex::new(Vec::new());
        pool.for_each(1, 10, |i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_are_disjoint_and_cover_the_slice() {
        let pool = ThreadPool::new(3);
        let mut data = vec![0u32; 1000];
        pool.parallel_chunks_mut(3, &mut data, 7, |_ci, chunk| {
            for v in chunk.iter_mut() {
                *v += 1; // every element touched once
            }
        });
        assert!(data.iter().all(|&v| v == 1), "each element written exactly once");
        // chunk boundaries are a pure function of len/chunk_len
        let mut labels = vec![0usize; 20];
        pool.parallel_chunks_mut(3, &mut labels, 6, |ci, chunk| {
            for v in chunk.iter_mut() {
                *v = ci;
            }
        });
        assert_eq!(labels[0..6], [0; 6]);
        assert_eq!(labels[6..12], [1; 6]);
        assert_eq!(labels[12..18], [2; 6]);
        assert_eq!(labels[18..20], [3; 2]);
    }

    #[test]
    fn task_panic_is_captured_with_message() {
        let pool = ThreadPool::new(2);
        let err = pool
            .try_for_each(2, 16, |i| {
                if i == 7 {
                    panic!("boom at {i}");
                }
            })
            .unwrap_err();
        assert!(err.message().contains("boom"), "got: {}", err.message());
        // the pool stays usable after a panic
        let out = pool.run_indexed(2, 8, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn for_each_propagates_panics() {
        let pool = ThreadPool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.for_each(2, 4, |i| {
                if i == 2 {
                    panic!("kaboom");
                }
            })
        }));
        assert!(r.is_err());
    }

    #[test]
    fn nested_calls_run_sequentially() {
        let pool = ThreadPool::new(4);
        let nested_parallelism = Mutex::new(Vec::new());
        pool.for_each(4, 6, |_| {
            assert!(in_parallel_task());
            nested_parallelism.lock().unwrap().push(current_parallelism());
            // A nested submission must run inline without deadlocking.
            let inner = global().run_indexed(4, 5, |j| j * 2);
            assert_eq!(inner, vec![0, 2, 4, 6, 8]);
        });
        assert!(nested_parallelism.into_inner().unwrap().iter().all(|&p| p == 1));
        assert!(!in_parallel_task());
    }

    #[test]
    fn with_parallelism_overrides_and_restores() {
        let before = current_parallelism();
        let inside = with_parallelism(3, current_parallelism);
        assert!((1..=3).contains(&inside));
        assert_eq!(current_parallelism(), before);
    }

    #[test]
    fn fixed_pool_clamps_requests_to_its_size() {
        let pool = ThreadPool::new(2);
        assert_eq!(pool.effective_threads(16), 2);
        assert_eq!(pool.effective_threads(0), 1);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        // The determinism contract at the pool level: an index-addressed
        // computation gives the same answer for every thread count.
        let reference: Vec<u64> = (0..500u64).map(|i| i.wrapping_mul(0x9E3779B9)).collect();
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            let out = pool.run_indexed(threads, 500, |i| (i as u64).wrapping_mul(0x9E3779B9));
            assert_eq!(out, reference, "thread count {threads} changed results");
        }
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        let pool = ThreadPool::new(4);
        pool.for_each(4, 0, |_| panic!("must not run"));
        let out: Vec<u8> = pool.run_indexed(4, 0, |_| 1u8);
        assert!(out.is_empty());
        let mut empty: [u8; 0] = [];
        pool.parallel_chunks_mut(4, &mut empty, 3, |_, _| panic!("must not run"));
    }

    #[test]
    fn heavy_contention_settles() {
        let pool = ThreadPool::new(8);
        let sum = AtomicU64::new(0);
        pool.for_each(8, 10_000, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10_000 * 9_999 / 2);
    }

    #[test]
    fn env_parsing_clamps() {
        // env_threads reads the ambient environment; just exercise the
        // clamp helper indirectly through ThreadPool::new.
        assert_eq!(ThreadPool::new(0).threads(), 1);
        assert_eq!(ThreadPool::new(1_000_000).threads(), MAX_THREADS);
    }
}
