//! Minimal property-testing harness for the ALFI workspace.
//!
//! A property is a closure that draws its inputs from a seeded
//! [`alfi_rng::Rng`] and asserts an invariant with the ordinary
//! `assert!`/`assert_eq!` macros. [`check`] runs it for a configurable
//! number of cases, each with a distinct, deterministically derived
//! seed. When a case fails, the harness reports the case's seed so the
//! exact inputs can be replayed in isolation.
//!
//! # Replaying a failure
//!
//! A failing run prints a line like:
//!
//! ```text
//! alfi-check: property 'softmax_is_probability' failed at case 17/256 (seed 0x3bf61a9c0d52e871)
//! alfi-check: replay with ALFI_CHECK_SEED=0x3bf61a9c0d52e871
//! ```
//!
//! Re-running the same test binary with that environment variable set
//! runs only the failing case:
//!
//! ```text
//! ALFI_CHECK_SEED=0x3bf61a9c0d52e871 cargo test softmax_is_probability
//! ```
//!
//! # Configuration
//!
//! - `ALFI_CHECK_CASES=<n>` overrides the case count of every property.
//! - `ALFI_CHECK_SEED=<hex|dec>` replays a single case by seed.
//!
//! # Example
//!
//! ```
//! alfi_check::check("addition_commutes", |rng| {
//!     let a: i64 = rng.gen_range(-1000..1000);
//!     let b: i64 = rng.gen_range(-1000..1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use alfi_rng::Rng;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default number of cases per property (mirrors proptest's default).
pub const DEFAULT_CASES: usize = 256;

/// Runs `property` for [`DEFAULT_CASES`] seeded cases.
///
/// # Panics
///
/// Re-raises the property's panic after reporting the failing seed.
pub fn check(name: &str, property: impl Fn(&mut Rng)) {
    check_with(DEFAULT_CASES, name, property);
}

/// Runs `property` for `cases` seeded cases (overridable with
/// `ALFI_CHECK_CASES`; `ALFI_CHECK_SEED` replays one case instead).
///
/// # Panics
///
/// Re-raises the property's panic after reporting the failing seed.
pub fn check_with(cases: usize, name: &str, property: impl Fn(&mut Rng)) {
    if let Ok(text) = std::env::var("ALFI_CHECK_SEED") {
        let seed = parse_seed(&text)
            .unwrap_or_else(|| panic!("ALFI_CHECK_SEED '{text}' is not a valid seed"));
        eprintln!("alfi-check: replaying property '{name}' with seed 0x{seed:016x}");
        let mut rng = Rng::from_seed(seed);
        property(&mut rng);
        return;
    }
    let cases = std::env::var("ALFI_CHECK_CASES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(cases);
    let base = fnv1a(name.as_bytes());
    for case in 0..cases {
        let seed = case_seed(base, case);
        let mut rng = Rng::from_seed(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| property(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "alfi-check: property '{name}' failed at case {case}/{cases} (seed 0x{seed:016x})"
            );
            eprintln!("alfi-check: replay with ALFI_CHECK_SEED=0x{seed:016x}");
            resume_unwind(payload);
        }
    }
}

/// Skips the current case when a precondition doesn't hold (the ported
/// form of `prop_assume!`). Use inside a `check` closure.
#[macro_export]
macro_rules! assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// The seed of case `case` for a property whose name hashes to `base`.
fn case_seed(base: u64, case: usize) -> u64 {
    // SplitMix64-style mix keeps per-case seeds uncorrelated.
    let mut z = base.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn parse_seed(text: &str) -> Option<u64> {
    let t = text.trim();
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        t.parse::<u64>().ok()
    }
}

/// Input generators mirroring the `proptest` strategies the repo's
/// property suites were written against.
pub mod gen {
    use alfi_rng::Rng;

    /// Arbitrary `f32` bit pattern (includes NaN, infinities, subnormals).
    pub fn any_f32(rng: &mut Rng) -> f32 {
        f32::from_bits(rng.next_u32())
    }

    /// Arbitrary `f64` bit pattern.
    pub fn any_f64(rng: &mut Rng) -> f64 {
        f64::from_bits(rng.next_u64())
    }

    /// Arbitrary `u64`.
    pub fn any_u64(rng: &mut Rng) -> u64 {
        rng.next_u64()
    }

    /// Arbitrary `i8`.
    pub fn any_i8(rng: &mut Rng) -> i8 {
        rng.next_u32() as i8
    }

    /// Arbitrary `bool`.
    pub fn any_bool(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }

    /// A `Vec` with length drawn from `len` and elements from `element`.
    pub fn vec_of<T>(
        rng: &mut Rng,
        len: std::ops::Range<usize>,
        mut element: impl FnMut(&mut Rng) -> T,
    ) -> Vec<T> {
        let n = rng.gen_range(len);
        (0..n).map(|_| element(rng)).collect()
    }

    /// A string of `len` characters drawn uniformly from `alphabet`.
    pub fn string_from(rng: &mut Rng, alphabet: &[char], len: std::ops::Range<usize>) -> String {
        let n = rng.gen_range(len);
        (0..n).map(|_| alphabet[rng.gen_range(0..alphabet.len())]).collect()
    }

    /// A printable-ASCII string (the common `"\\PC{0,n}"` pattern).
    pub fn printable_string(rng: &mut Rng, len: std::ops::Range<usize>) -> String {
        let n = rng.gen_range(len);
        (0..n).map(|_| rng.gen_range(0x20u32..0x7F) as u8 as char).collect()
    }

    /// A non-empty subsequence of `items` with `min..=max` elements,
    /// preserving order (the ported `proptest::sample::subsequence`).
    pub fn subsequence<T: Clone>(rng: &mut Rng, items: &[T], min: usize, max: usize) -> Vec<T> {
        assert!(min >= 1 && min <= max && max <= items.len());
        let target = rng.gen_range(min..=max);
        let mut picked: Vec<usize> = (0..items.len()).collect();
        rng.shuffle(&mut picked);
        picked.truncate(target);
        picked.sort_unstable();
        picked.into_iter().map(|i| items[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0usize);
        check_with(32, "counting", |_rng| {
            counter.set(counter.get() + 1);
        });
        assert_eq!(counter.get(), 32);
    }

    #[test]
    fn case_seeds_are_distinct_and_deterministic() {
        let base = fnv1a(b"prop");
        let a: Vec<u64> = (0..64).map(|i| case_seed(base, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| case_seed(base, i)).collect();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 64);
    }

    #[test]
    fn different_properties_get_different_streams() {
        assert_ne!(case_seed(fnv1a(b"a"), 0), case_seed(fnv1a(b"b"), 0));
    }

    #[test]
    fn failing_property_panics_and_reports() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check_with(16, "always_fails", |_rng| {
                panic!("intentional");
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn assume_skips_cases() {
        check_with(64, "assume_filters", |rng| {
            let x: u32 = rng.gen_range(0..10);
            assume!(x.is_multiple_of(2));
            assert_eq!(x % 2, 0);
        });
    }

    #[test]
    fn seed_parses_hex_and_decimal() {
        assert_eq!(parse_seed("0x10"), Some(16));
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("zzz"), None);
    }

    #[test]
    fn subsequence_respects_bounds_and_order() {
        let items = [1, 2, 3, 4, 5];
        let mut rng = Rng::from_seed(1);
        for _ in 0..100 {
            let sub = gen::subsequence(&mut rng, &items, 1, 3);
            assert!((1..=3).contains(&sub.len()));
            let mut sorted = sub.clone();
            sorted.sort_unstable();
            assert_eq!(sub, sorted);
        }
    }
}
