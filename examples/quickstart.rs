//! Quickstart: the paper's Listing-1 low-level integration.
//!
//! Wrap an existing model in `Ptfiwrap`, iterate faulty model instances,
//! and compare each corrupted output against the fault-free output.
//!
//! Run with: `cargo run --release --example quickstart`

use alfi::core::Ptfiwrap;
use alfi::nn::models::{alexnet, ModelConfig};
use alfi::scenario::{FaultMode, InjectionTarget, Scenario};
use alfi::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // "Initiate the wrapper with the trained baseline model."
    let cfg = ModelConfig { input_hw: 32, width_mult: 0.125, seed: 7, ..ModelConfig::default() };
    let orig_model = alexnet(&cfg);

    // Scenario: one exponent-bit weight flip per image, 8 images.
    let mut scenario = Scenario::default();
    scenario.dataset_size = 8;
    scenario.injection_target = InjectionTarget::Weights;
    scenario.fault_mode = FaultMode::exponent_bit_flip();
    scenario.seed = 42;

    let mut wrapper = Ptfiwrap::new(&orig_model, scenario, &cfg.input_dims(1))?;
    println!(
        "model `{}`: {} injectable layers, {} pre-generated faults",
        orig_model.name(),
        wrapper.targets().len(),
        wrapper.fault_matrix().len()
    );

    // "Get an iterator over faulty models" and loop over the data set.
    let input = Tensor::ones(&cfg.input_dims(1));
    let orig_output = orig_model.forward(&input)?;
    let orig_top1 = orig_output.batch_item(0)?.argmax().expect("non-empty logits");

    let mut sde = 0usize;
    let mut image = 0usize;
    while let Ok(corrupted_model) = wrapper.next_faulty_model() {
        let corrupted_output = corrupted_model.forward(&input)?;
        let corr_top1 = corrupted_output.batch_item(0)?.argmax().expect("non-empty logits");
        let applied = corrupted_model.applied_faults();
        let a = &applied[0];
        println!(
            "image {image}: fault @ layer {} ch {} value {:>12.4e} -> {:>12.4e} | top1 {} -> {}{}",
            a.record.layer,
            a.record.channel,
            a.original,
            a.corrupted,
            orig_top1,
            corr_top1,
            if corr_top1 != orig_top1 { "  << SDE" } else { "" }
        );
        if corr_top1 != orig_top1 {
            sde += 1;
        }
        image += 1;
    }
    println!("\nSDE: {sde}/{image} single-fault inferences changed the top-1 class");
    Ok(())
}
