//! Train-then-inject: the paper's actual workflow. Campaigns in the
//! paper run on trained models; this example trains a small CNN on the
//! synthetic texture dataset with the built-in SGD trainer, verifies it
//! is genuinely accurate, and then runs an exponent-bit weight-fault
//! campaign on the trained model — reporting SDE against both the
//! fault-free prediction (the ALFI KPI) and the ground-truth labels.
//!
//! Run with: `cargo run --release --example train_and_inject`

use alfi::core::campaign::{ImgClassCampaign, RunConfig};
use alfi::datasets::{ClassificationDataset, ClassificationLoader};
use alfi::eval::{classification_kpis, SdeCriterion};
use alfi::nn::train::{accuracy, train_step, SgdTrainer};
use alfi::nn::{Conv2d, Layer, Linear, Network};
use alfi::scenario::{FaultMode, InjectionTarget, Scenario};
use alfi::tensor::conv::ConvConfig;
use alfi::tensor::Tensor;
use alfi_rng::Rng;

/// A small trainable CNN: 2 convs + 2 linears over 16x16 textures.
fn build_cnn(classes: usize, seed: u64) -> Network {
    let mut rng = Rng::from_seed(seed);
    let mut he = |dims: &[usize]| {
        let fan_in: usize = dims[1..].iter().product();
        Tensor::rand_normal(&mut rng, dims, 0.0, (2.0 / fan_in as f32).sqrt())
    };
    let mut net = Network::new("trained_cnn");
    let c1 = net
        .push(
            "conv1",
            Layer::Conv2d(Conv2d {
                weight: he(&[8, 3, 3, 3]),
                bias: Some(Tensor::zeros(&[8])),
                cfg: ConvConfig { stride: 1, padding: 1, dilation: 1 },
            }),
            &[],
        )
        .unwrap();
    let r1 = net.push("relu1", Layer::Relu, &[c1]).unwrap();
    let p1 = net
        .push("pool1", Layer::MaxPool2d { k: 2, cfg: ConvConfig { stride: 2, padding: 0, dilation: 1 } }, &[r1])
        .unwrap();
    let c2 = net
        .push(
            "conv2",
            Layer::Conv2d(Conv2d {
                weight: he(&[16, 8, 3, 3]),
                bias: Some(Tensor::zeros(&[16])),
                cfg: ConvConfig { stride: 1, padding: 1, dilation: 1 },
            }),
            &[p1],
        )
        .unwrap();
    let r2 = net.push("relu2", Layer::Relu, &[c2]).unwrap();
    let p2 = net
        .push("pool2", Layer::MaxPool2d { k: 2, cfg: ConvConfig { stride: 2, padding: 0, dilation: 1 } }, &[r2])
        .unwrap();
    let fl = net.push("flatten", Layer::Flatten, &[p2]).unwrap();
    let f1 = net
        .push(
            "fc1",
            Layer::Linear(Linear { weight: he(&[32, 16 * 4 * 4]), bias: Some(Tensor::zeros(&[32])) }),
            &[fl],
        )
        .unwrap();
    let r3 = net.push("relu3", Layer::Relu, &[f1]).unwrap();
    let f2 = net
        .push(
            "fc2",
            Layer::Linear(Linear { weight: he(&[classes, 32]), bias: Some(Tensor::zeros(&[classes])) }),
            &[r3],
        )
        .unwrap();
    net.set_output(f2).unwrap();
    net
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let classes = 4usize;
    let train_ds = ClassificationDataset::new(160, classes, 3, 16, 1);
    let test_ds = ClassificationDataset::new(40, classes, 3, 16, 2);
    let mut net = build_cnn(classes, 7);

    // Train with momentum SGD.
    let loader = ClassificationLoader::new(train_ds, 16).with_shuffle(true);
    let mut trainer = SgdTrainer::new(0.05, 0.9);
    println!("training 2-conv CNN on synthetic textures ({classes} classes)...");
    for epoch in 0..8u64 {
        let mut loss_sum = 0.0f32;
        let mut batches = 0usize;
        for batch in loader.iter_epoch(epoch) {
            loss_sum += train_step(&mut net, &mut trainer, &batch.images, &batch.labels)?;
            batches += 1;
        }
        // held-out accuracy
        let mut correct = 0.0;
        let mut n = 0usize;
        for i in 0..test_ds.len() {
            let s = test_ds.get(i);
            let x = Tensor::stack(&[s.image])?;
            correct += accuracy(&net, &x, &[s.label])?;
            n += 1;
        }
        println!(
            "epoch {epoch}: loss {:.4}, test accuracy {:.1}%",
            loss_sum / batches as f32,
            100.0 * correct / n as f64
        );
    }

    // Fault-injection campaigns on the trained model, escalating the
    // number of simultaneous exponent-bit weight faults. A freshly
    // trained small model has wide decision margins, so single faults
    // are heavily masked — the interesting curve is where masking
    // breaks down.
    println!("\n=== exponent-bit weight FI on the TRAINED model ===");
    println!(
        "{:<8} {:>12} {:>12} {:>9} {:>9} {:>9}",
        "faults", "orig acc", "corr acc", "SDE", "DUE", "masked"
    );
    for k in [1usize, 5, 20, 50] {
        let mut scenario = Scenario::default();
        scenario.dataset_size = 40;
        scenario.injection_target = InjectionTarget::Weights;
        scenario.fault_mode = FaultMode::exponent_bit_flip();
        scenario.faults_per_image = alfi::scenario::FaultCount::Fixed(k);
        scenario.seed = 99;
        let loader = ClassificationLoader::new(test_ds.clone(), 1);
        let result = ImgClassCampaign::new(net.clone(), scenario, loader).run_with(&RunConfig::default())?;
        let kpis = classification_kpis(&result.rows, SdeCriterion::Top1Mismatch);
        println!(
            "{:<8} {:>11.1}% {:>11.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
            k,
            kpis.orig_top1_accuracy.percent(),
            kpis.corr_top1_accuracy.percent(),
            kpis.sde.percent(),
            kpis.due.percent(),
            kpis.masked.percent(),
        );
    }
    println!("\n(on a trained model the fault-free run is genuinely correct, so an SDE is");
    println!(" a real safety event: a prediction the user would have trusted, silently wrong;");
    println!(" high margins mask single faults, multi-fault bursts break through)");
    Ok(())
}
