//! Use case "comparing the robustness of different types of NN" (§V):
//! run the identical fault scenario over four structurally different
//! classifier topologies — sequential (AlexNet, VGG-16), residual
//! (ResNet-50) and densely connected (DenseNet) — and compare SDE/DUE
//! rates with confidence intervals.
//!
//! Run with: `cargo run --release --example architecture_comparison`

use alfi::core::campaign::{ImgClassCampaign, RunConfig};
use alfi::core::ScenarioSweep;
use alfi::datasets::{ClassificationDataset, ClassificationLoader};
use alfi::eval::{classification_kpis, SdeCriterion};
use alfi::nn::models::{alexnet, densenet_tiny, resnet50, vgg16, ModelConfig};
use alfi::nn::Network;
use alfi::scenario::{FaultMode, InjectionTarget, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mcfg = ModelConfig { input_hw: 32, width_mult: 0.125, seed: 4, ..ModelConfig::default() };
    let n_images = 30usize;

    let mut base = Scenario::default();
    base.dataset_size = n_images;
    base.injection_target = InjectionTarget::Weights;
    base.fault_mode = FaultMode::exponent_bit_flip();
    base.seed = 21;

    type Builder = fn(&ModelConfig) -> Network;
    let builders: [(&str, Builder); 4] = [
        ("alexnet", alexnet),
        ("vgg16", vgg16),
        ("resnet50", resnet50),
        ("densenet", densenet_tiny),
    ];

    println!(
        "architecture robustness under identical exponent-bit weight faults ({n_images} images, 3 seeds)\n"
    );
    println!("{:<10} {:>8} {:>10} {:>10} {:>24}", "model", "params", "SDE", "DUE", "SDE 95% CI");

    for (name, build) in builders {
        let model = build(&mcfg);
        // Aggregate over several independent fault draws for tighter CIs
        // (ScenarioSweep::over_seeds is the §V-D idiom for this).
        let mut sde = 0usize;
        let mut due = 0usize;
        let mut total = 0usize;
        for scenario in ScenarioSweep::new(base.clone()).over_seeds([21u64, 22, 23]) {
            let ds = ClassificationDataset::new(n_images, mcfg.num_classes, 3, 32, 5);
            let loader = ClassificationLoader::new(ds, 1);
            let result = ImgClassCampaign::new(model.clone(), scenario, loader).run_with(&RunConfig::default())?;
            let k = classification_kpis(&result.rows, SdeCriterion::Top1Mismatch);
            sde += k.sde.hits;
            due += k.due.hits;
            total += k.sde.total;
        }
        let rate = alfi::eval::Rate::from_counts(sde, total);
        let due_rate = alfi::eval::Rate::from_counts(due, total);
        println!(
            "{:<10} {:>8} {:>9.1}% {:>9.1}% {:>15.1}% - {:.1}%",
            name,
            model.num_weights(),
            rate.percent(),
            due_rate.percent(),
            rate.ci_low * 100.0,
            rate.ci_high * 100.0,
        );
    }
    println!("\n(structure matters: dense connectivity re-broadcasts corrupted activations,");
    println!(" residual shortcuts can bypass them, and parameter count shifts where Eq. 1's");
    println!(" size weighting concentrates the faults)");
    Ok(())
}
