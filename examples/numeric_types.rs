//! Use case "evaluating the vulnerability of different numeric types":
//! how does the same single-bit fault model hurt f32, f16, bf16 and
//! affine-int8 encodings of the same weight distribution?
//!
//! Single-value study (no network): for each numeric type, flip every
//! bit position of many representative weight values and measure how
//! often the decoded value changes by more than a tolerance — and how
//! often it becomes non-finite (the DUE precursor). int8's bounded
//! worst-case error versus floating point's exponent blow-ups is the
//! headline contrast.
//!
//! Run with: `cargo run --release --example numeric_types`

use alfi::tensor::f16::{Bf16, F16};
use alfi::tensor::quant::{flip_bit_i8, QuantParams};
use alfi::tensor::{bits, Tensor};
use alfi_rng::Rng;

fn main() {
    let mut rng = Rng::from_seed(42);
    // Representative He-style weight distribution.
    let weights = Tensor::rand_normal(&mut rng, &[2000], 0.0, 0.05);
    let tolerance = 0.5f32; // perturbation that plausibly flips a decision
    let quant = QuantParams::from_range(-0.25, 0.25);

    println!("single-bit-flip severity by numeric type ({} samples/bit)\n", weights.num_elements());
    println!(
        "{:<8} {:>6} {:>16} {:>16} {:>14}",
        "type", "bits", "large-error %", "non-finite %", "worst |err|"
    );

    let stats = |errors: &[(f32, bool)]| {
        let n = errors.len() as f64;
        let large = errors.iter().filter(|(e, _)| *e > tolerance).count() as f64 / n * 100.0;
        let nonfin = errors.iter().filter(|(_, nf)| *nf).count() as f64 / n * 100.0;
        let worst = errors.iter().map(|(e, _)| *e).fold(0.0f32, f32::max);
        (large, nonfin, worst)
    };

    // f32
    let mut errs = Vec::new();
    for &w in weights.data() {
        for bit in 0..32u8 {
            let c = bits::flip_bit(w, bit);
            errs.push(((c - w).abs(), !c.is_finite()));
        }
    }
    let (l, nf, worst) = stats(&errs);
    println!("{:<8} {:>6} {:>15.2}% {:>15.3}% {:>14.3e}", "f32", 32, l, nf, worst);

    // f16
    let mut errs = Vec::new();
    for &w in weights.data() {
        let h = F16::from_f32(w);
        for bit in 0..16u8 {
            let c = h.flip_bit(bit);
            let cv = c.to_f32();
            errs.push(((cv - w).abs(), !cv.is_finite()));
        }
    }
    let (l, nf, worst) = stats(&errs);
    println!("{:<8} {:>6} {:>15.2}% {:>15.3}% {:>14.3e}", "f16", 16, l, nf, worst);

    // bf16
    let mut errs = Vec::new();
    for &w in weights.data() {
        let b = Bf16::from_f32(w);
        for bit in 0..16u8 {
            let c = b.flip_bit(bit);
            let cv = c.to_f32();
            errs.push(((cv - w).abs(), !cv.is_finite()));
        }
    }
    let (l, nf, worst) = stats(&errs);
    println!("{:<8} {:>6} {:>15.2}% {:>15.3}% {:>14.3e}", "bf16", 16, l, nf, worst);

    // int8 affine
    let mut errs = Vec::new();
    for &w in weights.data() {
        let q = quant.quantize(w);
        for bit in 0..8u8 {
            let c = quant.dequantize(flip_bit_i8(q, bit));
            errs.push(((c - quant.dequantize(q)).abs(), false));
        }
    }
    let (l, nf, worst) = stats(&errs);
    println!("{:<8} {:>6} {:>15.2}% {:>15.3}% {:>14.3e}", "int8", 8, l, nf, worst);

    println!(
        "\nint8's worst-case error is bounded by 128*scale = {:.3}; floating-point \
         exponent flips scale values by up to 2^128 or overflow entirely.",
        128.0 * quant.scale,
    );
}
