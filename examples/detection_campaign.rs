//! High-level object-detection campaign (the paper's
//! `TestErrorModels_ObjDet` workflow, Fig. 2b / Fig. 3 in miniature).
//!
//! Runs a YOLO-style detector under exponent-bit weight faults, computes
//! IVMOD_SDE / IVMOD_DUE and COCO mAP, and writes the Fig. 3 three-output
//! pipeline (ground truth JSON, per-pass detection JSONs, metrics JSON)
//! to `target/alfi_runs/detection/`.
//!
//! Run with: `cargo run --release --example detection_campaign`
//!
//! `run_with(&RunConfig)` drives this campaign through the same shared
//! engine as the classification one (`classification_campaign`
//! example) — only the per-scope detector passes differ.

use alfi::core::campaign::{ObjDetCampaign, RunConfig};
use alfi::datasets::{DetectionDataset, DetectionLoader};
use alfi::eval::write_detection_outputs;
use alfi::nn::detection::{DetectorConfig, YoloGrid};
use alfi::scenario::{FaultMode, InjectionTarget, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dcfg = DetectorConfig { input_hw: 32, width_mult: 0.25, seed: 2, ..DetectorConfig::default() };
    let mut detector = YoloGrid::new(&dcfg);

    let mut scenario = Scenario::default();
    scenario.dataset_size = 16;
    scenario.injection_target = InjectionTarget::Weights;
    scenario.fault_mode = FaultMode::exponent_bit_flip();
    scenario.seed = 9;

    let dataset = DetectionDataset::new(scenario.dataset_size, dcfg.num_classes, 3, 32, 7);
    let ground_truth = dataset.coco_ground_truth();
    let loader = DetectionLoader::new(dataset, scenario.batch_size);

    let result = ObjDetCampaign::new(&mut detector, scenario, loader).run_with(&RunConfig::default())?;
    println!("campaign over {} images complete", result.rows.len());

    let out = std::path::Path::new("target/alfi_runs/detection");
    let summary = write_detection_outputs(&result, &ground_truth, dcfg.num_classes, 0.5, out)?;

    println!("\n=== detection KPIs ===");
    println!("model:           {}", summary.model);
    println!("IVMOD_SDE:       {}", summary.ivmod.ivmod_sde);
    println!("IVMOD_DUE:       {}", summary.ivmod.ivmod_due);
    println!("mean FP / image: {:.2}", summary.ivmod.mean_fp);
    println!("mean FN / image: {:.2}", summary.ivmod.mean_fn);
    println!("mAP@.50 orig:    {:.4}", summary.orig_coco.map_50);
    println!("mAP@.50 corr:    {:.4}", summary.corr_coco.map_50);

    println!("\noutputs written to {}", out.display());
    for entry in std::fs::read_dir(out)? {
        println!("  {}", entry?.file_name().to_string_lossy());
    }
    Ok(())
}
