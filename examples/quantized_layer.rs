//! Network-level numeric-type study via the custom-layer extension
//! point: an int8-quantized linear layer (weights stored as codes,
//! dequantized on the fly) against its f32 twin, under single-bit
//! weight faults applied in each type's *native* domain.
//!
//! The value-level story (`examples/numeric_types.rs`) says int8 bounds
//! the damage while f32 exponent flips explode. This example shows the
//! same effect end to end through network outputs.
//!
//! Run with: `cargo run --release --example quantized_layer`

use alfi::nn::{CustomLayer, Layer, LayerKind, Linear, Network, NnError};
use alfi::tensor::bits;
use alfi::tensor::quant::{flip_bit_i8, QuantParams};
use alfi::tensor::Tensor;
use alfi_rng::Rng;

/// A linear layer whose weights live as int8 codes. Registers as
/// non-injectable for the standard f32 fault path (its bits are not
/// IEEE-754); faults are applied in the int8 domain via `flip_weight_bit`.
#[derive(Debug, Clone)]
struct QuantLinear {
    codes: Vec<i8>,
    params: QuantParams,
    out_f: usize,
    in_f: usize,
}

impl QuantLinear {
    fn from_f32(weight: &Tensor) -> Self {
        let (out_f, in_f) = (weight.dims()[0], weight.dims()[1]);
        let lo = weight.min().min(-1e-3);
        let hi = weight.max().max(1e-3);
        let params = QuantParams::from_range(lo, hi);
        let codes = weight.data().iter().map(|&w| params.quantize(w)).collect();
        QuantLinear { codes, params, out_f, in_f }
    }

    /// Flips bit `bit` of the int8 code at flat index `idx`.
    fn flip_weight_bit(&mut self, idx: usize, bit: u8) {
        self.codes[idx] = flip_bit_i8(self.codes[idx], bit);
    }
}

impl CustomLayer for QuantLinear {
    fn type_name(&self) -> &str {
        "quant_linear"
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.rank() != 2 || input.dims()[1] != self.in_f {
            return Err(NnError::BadInput {
                layer: "quant_linear".into(),
                reason: format!("expected [n, {}] input", self.in_f),
            });
        }
        let n = input.dims()[0];
        let mut out = vec![0.0f32; n * self.out_f];
        for i in 0..n {
            for o in 0..self.out_f {
                let mut acc = 0.0f32;
                for k in 0..self.in_f {
                    acc += input.get(&[i, k]) * self.params.dequantize(self.codes[o * self.in_f + k]);
                }
                out[i * self.out_f + o] = acc;
            }
        }
        Ok(Tensor::from_vec(out, &[n, self.out_f])?)
    }

    fn clone_box(&self) -> Box<dyn CustomLayer> {
        Box::new(self.clone())
    }

    fn injection_kind(&self) -> Option<LayerKind> {
        None // int8 codes are not IEEE-754; faults go through flip_weight_bit
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (out_f, in_f) = (16usize, 32usize);
    let mut rng = Rng::from_seed(3);
    let weight = Tensor::rand_normal(&mut rng, &[out_f, in_f], 0.0, 0.1);
    let input = Tensor::rand_uniform(&mut rng, &[1, in_f], 0.0, 1.0);

    // f32 network
    let mut f32_net = Network::new("f32");
    let f32_node = f32_net
        .push("fc", Layer::Linear(Linear { weight: weight.clone(), bias: None }), &[])?;
    f32_net.set_output(f32_node)?;
    let f32_ref = f32_net.forward(&input)?;

    // int8 network (quantization error vs the f32 reference is tiny)
    let qlin = QuantLinear::from_f32(&weight);
    let mut q_net = Network::new("int8");
    let q_node = q_net.push("qfc", Layer::Custom(Box::new(qlin.clone())), &[])?;
    q_net.set_output(q_node)?;
    let q_ref = q_net.forward(&input)?;
    println!(
        "quantization error vs f32 reference: max {:.5} (scale = {:.5})",
        f32_ref.max_abs_diff(&q_ref)?,
        qlin.params.scale
    );

    // Worst-case single-bit weight fault, each type in its native domain.
    println!("\nworst single-bit weight fault over every (weight, bit) position:");
    let mut worst_f32 = 0.0f32;
    for idx in 0..weight.num_elements() {
        for bit in 0..32u8 {
            let mut corrupted = f32_net.clone();
            let w = corrupted.layer_mut(f32_node)?.weight_mut().expect("linear has weights");
            let coords = [idx / in_f, idx % in_f];
            w.set(&coords, bits::flip_bit(weight.data()[idx], bit));
            let out = corrupted.forward(&input)?;
            let dev = out
                .max_abs_diff(&f32_ref)
                .unwrap_or(f32::INFINITY);
            let dev = if dev.is_finite() { dev } else { f32::INFINITY };
            worst_f32 = worst_f32.max(dev);
        }
    }
    let mut worst_i8 = 0.0f32;
    for idx in 0..qlin.codes.len() {
        for bit in 0..8u8 {
            let mut corrupted = qlin.clone();
            corrupted.flip_weight_bit(idx, bit);
            let mut net = Network::new("int8_fi");
            let node = net.push("qfc", Layer::Custom(Box::new(corrupted)), &[])?;
            net.set_output(node)?;
            let dev = net.forward(&input)?.max_abs_diff(&q_ref)?;
            worst_i8 = worst_i8.max(dev);
        }
    }
    println!("  f32  weights: worst output deviation {worst_f32:.3e}");
    println!("  int8 weights: worst output deviation {worst_i8:.3e}");
    println!(
        "  int8 is analytically bounded by 128*scale*|x|_max = {:.3e}",
        128.0 * qlin.params.scale
    );
    println!("\nquantized inference trades a tiny accuracy cost for a hard ceiling on");
    println!("single-fault damage — floating point has no such ceiling.");
    Ok(())
}
