//! High-level image-classification campaign with mitigation comparison
//! (the paper's `TestErrorModels_ImgClass` workflow, Fig. 2a in
//! miniature).
//!
//! Runs fault-free, faulty and Ranger-hardened models in lock-step over a
//! synthetic dataset, prints SDE/DUE KPIs, and writes the paper's three
//! output sets (scenario YAML, binary fault files, CSV results) to
//! `target/alfi_runs/classification/`.
//!
//! Run with: `cargo run --release --example classification_campaign`
//!
//! `run_with(&RunConfig)` drives this campaign through the same shared
//! engine as the detection one (`detection_campaign` example) — only
//! the per-scope model passes differ.

use alfi::core::campaign::{ImgClassCampaign, RunConfig};
use alfi::datasets::{ClassificationDataset, ClassificationLoader};
use alfi::eval::{classification_kpis, resil_sde_rate, SdeCriterion};
use alfi::mitigation::{harden, profile_bounds, Protection};
use alfi::nn::models::{vgg16, ModelConfig};
use alfi::scenario::{FaultMode, InjectionTarget, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mcfg = ModelConfig { input_hw: 32, width_mult: 0.125, seed: 3, ..ModelConfig::default() };
    let model = vgg16(&mcfg);
    println!("model: vgg16 ({} injectable layers)", model.injectable_layers(None, None)?.len());

    // Scenario: exponent-bit weight flips, one per image.
    let mut scenario = Scenario::default();
    scenario.dataset_size = 24;
    scenario.injection_target = InjectionTarget::Weights;
    scenario.fault_mode = FaultMode::exponent_bit_flip();
    scenario.seed = 11;

    let dataset = ClassificationDataset::new(scenario.dataset_size, mcfg.num_classes, 3, 32, 5);
    let loader = ClassificationLoader::new(dataset.clone(), scenario.batch_size);

    // Profile healthy activation bounds on a few fault-free images, then
    // build the Ranger-hardened twin.
    let calib: Vec<_> = (0..4)
        .map(|i| {
            alfi::tensor::Tensor::stack(&[dataset.get(i).image]).expect("stack single image")
        })
        .collect();
    let bounds = profile_bounds(&model, calib.iter())?;
    let hardened = harden(&model, &bounds, Protection::Ranger, 0.1)?;
    println!("hardened model: {} nodes (original {})", hardened.num_nodes(), model.num_nodes());

    let mut campaign =
        ImgClassCampaign::new(model, scenario, loader).with_resil_model(hardened);
    let result = campaign.run_with(&RunConfig::default())?;

    let kpis = classification_kpis(&result.rows, SdeCriterion::Top1Mismatch);
    let resil = resil_sde_rate(&result.rows, SdeCriterion::Top1Mismatch);
    println!("\n=== campaign KPIs (top-1 criterion) ===");
    println!("SDE (no protection):  {}", kpis.sde);
    println!("DUE (NaN/Inf):        {}", kpis.due);
    println!("masked:               {}", kpis.masked);
    println!("SDE (Ranger):         {resil}");

    let out = std::path::Path::new("target/alfi_runs/classification");
    result.save_outputs(out)?;
    println!("\noutputs written to {}", out.display());
    for entry in std::fs::read_dir(out)? {
        println!("  {}", entry?.file_name().to_string_lossy());
    }
    Ok(())
}
