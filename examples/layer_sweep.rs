//! Use case §V item 2a: iterate through single layers "to determine
//! which layers are more susceptible to errors".
//!
//! Uses the paper's `get_scenario()` / `set_scenario()` workflow: after
//! each pass over the dataset the layer range advances by one and the
//! wrapper regenerates its fault matrix — no manual reconfiguration.
//!
//! Run with: `cargo run --release --example layer_sweep`

use alfi::core::Ptfiwrap;
use alfi::datasets::ClassificationDataset;
use alfi::nn::models::{alexnet, ModelConfig};
use alfi::scenario::{FaultMode, InjectionTarget, Scenario};
use alfi::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mcfg = ModelConfig { input_hw: 32, width_mult: 0.125, seed: 1, ..ModelConfig::default() };
    let model = alexnet(&mcfg);
    let images_per_layer = 12usize;

    let mut scenario = Scenario::default();
    scenario.dataset_size = images_per_layer;
    scenario.injection_target = InjectionTarget::Weights;
    scenario.fault_mode = FaultMode::exponent_bit_flip();
    scenario.weighted_layer_selection = false; // we pin the layer instead
    scenario.seed = 77;

    let dataset = ClassificationDataset::new(images_per_layer, mcfg.num_classes, 3, 32, 4);
    let num_layers = model.injectable_layers(None, None)?.len();
    let mut wrapper = Ptfiwrap::new(&model, scenario, &mcfg.input_dims(1))?;

    println!("layer-wise SDE sensitivity of alexnet ({num_layers} injectable layers)\n");
    println!("{:<6} {:<22} {:>10} {:>10}", "layer", "name", "sde", "rate");

    for layer in 0..num_layers {
        // The paper's iteration idiom: read, modify, write the scenario.
        let mut s = wrapper.scenario().clone();
        s.layer_range = Some((layer, layer));
        wrapper.set_scenario(s)?;
        let layer_name = wrapper.targets()[0].name.clone();

        let mut sde = 0usize;
        for i in 0..images_per_layer {
            let sample = dataset.get(i);
            let input = Tensor::stack(&[sample.image])?;
            let orig = model.forward(&input)?;
            let faulty = wrapper.next_faulty_model()?;
            let corr = faulty.forward(&input)?;
            let o = orig.batch_item(0)?.argmax();
            let c = corr.batch_item(0)?.argmax();
            if o != c {
                sde += 1;
            }
        }
        println!(
            "{:<6} {:<22} {:>7}/{:<3} {:>9.1}%",
            layer,
            layer_name,
            sde,
            images_per_layer,
            100.0 * sde as f64 / images_per_layer as f64
        );
    }
    println!("\n(early, large-fan-out layers typically corrupt more downstream state)");
    Ok(())
}
