//! Use case §V item 2d: "change the bit flip position ... to verify
//! which bit positions with a particular fault model are likely to
//! produce failures in the output".
//!
//! Sweeps the flipped bit from 0 (mantissa LSB) to 31 (sign) and reports
//! the SDE rate per position — the canonical result is that high
//! exponent bits (28–30) dominate while low mantissa bits are masked.
//!
//! Run with: `cargo run --release --example bit_position_sweep`

use alfi::core::Ptfiwrap;
use alfi::datasets::ClassificationDataset;
use alfi::nn::models::{alexnet, ModelConfig};
use alfi::scenario::{FaultMode, InjectionTarget, Scenario};
use alfi::tensor::bits::BitField;
use alfi::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mcfg = ModelConfig { input_hw: 32, width_mult: 0.125, seed: 5, ..ModelConfig::default() };
    let model = alexnet(&mcfg);
    let images_per_bit = 10usize;

    let mut scenario = Scenario::default();
    scenario.dataset_size = images_per_bit;
    scenario.injection_target = InjectionTarget::Weights;
    scenario.seed = 123;

    let dataset = ClassificationDataset::new(images_per_bit, mcfg.num_classes, 3, 32, 8);
    let mut wrapper = Ptfiwrap::new(&model, scenario, &mcfg.input_dims(1))?;

    println!("bit-position sensitivity of alexnet weight faults\n");
    println!("{:<4} {:<9} {:>8}", "bit", "field", "sde");
    let mut by_field = [(0usize, 0usize); 3]; // mantissa, exponent, sign

    for bit in 0u8..32 {
        let mut s = wrapper.scenario().clone();
        s.fault_mode = FaultMode::BitFlip { bit_range: (bit, bit) };
        wrapper.set_scenario(s)?;

        let mut sde = 0usize;
        for i in 0..images_per_bit {
            let input = Tensor::stack(&[dataset.get(i).image])?;
            let orig = model.forward(&input)?;
            let faulty = wrapper.next_faulty_model()?;
            let corr = faulty.forward(&input)?;
            if orig.batch_item(0)?.argmax() != corr.batch_item(0)?.argmax() {
                sde += 1;
            }
        }
        let field = BitField::of(bit);
        let idx = match field {
            BitField::Mantissa => 0,
            BitField::Exponent => 1,
            BitField::Sign => 2,
        };
        by_field[idx].0 += sde;
        by_field[idx].1 += images_per_bit;
        let bar = "#".repeat(sde);
        println!("{bit:<4} {:<9} {sde:>4}/{images_per_bit:<3} {bar}", field.to_string());
    }

    println!("\naggregate SDE by bit field:");
    for (name, (sde, total)) in ["mantissa", "exponent", "sign"].iter().zip(by_field) {
        println!("  {name:<9} {:>5.1}%", 100.0 * sde as f64 / total as f64);
    }
    Ok(())
}
