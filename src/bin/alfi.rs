//! `alfi` — command-line front end for fault-injection campaigns.
//!
//! Mirrors how PyTorchALFI slots into a development cycle: point the tool
//! at a scenario file, pick a model, and get the three output sets
//! (scenario meta, binary fault/trace files, CSV/JSON results) plus KPIs
//! on stdout.
//!
//! ```text
//! alfi gen-scenario --out default.yml
//! alfi classify --scenario default.yml --model vgg16 --out runs/c1 [--protect ranger] [--parallel 4] [--trace on]
//! alfi classify --scenario scenarios/vit.yml --model vit --out runs/v1 [--format binary]
//! alfi detect   --scenario default.yml --model yolo  --out runs/d1 [--trace on]
//! alfi inspect-faults runs/c1/faults.bin
//! alfi store info runs/c1/rows.alfic
//! alfi store lookup runs/c1/rows.alfic 17
//! alfi store convert runs/c1/rows.alfic --out runs/c1
//! alfi analyze report runs/c1
//! alfi analyze diff runs/c1 runs/c2
//! alfi analyze export-trace runs/c1
//! ```

use alfi::core::campaign::{ImgClassCampaign, ObjDetCampaign, RunConfig, VitCampaign};
use alfi::core::{load_fault_matrix, store_to_files, text_to_store, FaultValue, ReplayReader};
use alfi::trace::Recorder;
use alfi::datasets::{ClassificationDataset, ClassificationLoader, DetectionDataset, DetectionLoader};
use alfi::eval::{
    classification_kpis, layer_table, outcomes_by_layer, resil_sde_rate, write_detection_outputs,
    SdeCriterion,
};
use alfi::mitigation::{harden, profile_bounds, Protection};
use alfi::nn::detection::{Detector, DetectorConfig, FrcnnTwoStage, RetinaAnchor, YoloGrid};
use alfi::nn::models::{
    alexnet, densenet_tiny, resnet50, vgg16, vit_tiny, ModelConfig, VIT_TINY_DEPTH, VIT_TINY_HEADS,
};
use alfi::nn::train::{accuracy, train_step, SgdTrainer};
use alfi::nn::weights::{load_weights, save_weights};
use alfi::nn::Network;
use alfi::scenario::{ArtifactFormat, CiMethod, Scenario, StopPolicy, StopScope};
use alfi::store::{ColumnStats, ColumnType, Value};
use alfi::tensor::Tensor;
use std::collections::BTreeMap;
use std::process::ExitCode;

const USAGE: &str = "\
alfi — application-level fault injection for neural networks

USAGE:
  alfi gen-scenario --out <file>
  alfi train    --model <alexnet|vgg16|resnet50|densenet> --out <weights.alfiw>
                [--epochs <n>] [--images <n>] [--lr <f>]
                [--width <mult>] [--input <px>] [--seed <n>]
  alfi classify --scenario <file> --model <alexnet|vgg16|resnet50|densenet|vit> --out <dir>
                [--weights <weights.alfiw>]
                [--protect <ranger|clipper>] [--parallel <threads>]
                [--trace <on|off>] [--metrics-addr <ip:port>] [--strict-health]
                [--stop-halfwidth <f>] [--stop-confidence <f>]
                [--stop-scope <campaign|per-layer>] [--stop-method <wilson|clopper-pearson>]
                [--kernel <reference|blocked>] [--format <csv|binary>] [--report]
                [--width <mult>] [--input <px>] [--seed <n>]
  alfi detect   --scenario <file> --model <yolo|retina|frcnn> --out <dir>
                [--trace <on|off>] [--metrics-addr <ip:port>] [--strict-health]
                [--stop-halfwidth <f>] [--stop-confidence <f>]
                [--stop-scope <campaign|per-layer>] [--stop-method <wilson|clopper-pearson>]
                [--kernel <reference|blocked>] [--format <csv|binary>] [--report]
                [--width <mult>] [--input <px>] [--seed <n>]
  alfi inspect-faults <faults.bin>
  alfi store info    <rows.alfic>
  alfi store lookup  <rows.alfic> <fault-id>
  alfi store convert <file> [--out <dir>]
  alfi analyze report       <run-dir> [--out <dir>]
  alfi analyze diff         <run-dir-a> <run-dir-b> [--out <dir>]
  alfi analyze export-trace <run-dir> [--out <dir>]

Live monitoring: --metrics-addr serves Prometheus text at GET /metrics
for the life of the process (set ALFI_METRICS_LINGER_MS to keep it up
after the run, e.g. for a scraper). --strict-health runs the campaign
health watchdog (stall / DUE-rate / NaN-storm) and exits nonzero if any
alarm fired.

Adaptive campaigns: --stop-halfwidth ±h arms statistical early stopping
— the run ends (or, with --stop-scope per-layer, individual layer
strata retire) once the SDC/DUE rate confidence interval is tighter
than ±h at the requested confidence (default 0.95). Decisions land in
the trace summary and events.jsonl; they override any stop_policy key
in the scenario file.

Kernel paths: --kernel pins the GEMM kernel (blocked = cache-blocked
packed SIMD path, the default; reference = the sequential oracle).
Both produce bit-identical results; the ALFI_KERNEL env var sets the
ambient default.

Result store: --format binary writes per-image rows to a columnar
binary store (rows.alfic) instead of CSV; `alfi store convert` turns a
store back into the exact CSV/JSON text artifacts (or any text file
into a store), `alfi store lookup` replays the rows of one fault id
reading at most one block plus the index, and `alfi store info`
prints schema, per-column encodings and block min/max footer stats.

Post-run analysis: `alfi analyze report` streams a finished run's row
artifacts (CSV or binary store) into a per-layer × per-bit × per-mode
vulnerability report with confidence intervals (report.json +
report.md); `alfi analyze diff` compares two runs, flagging a delta
significant only when the intervals separate; `alfi analyze
export-trace` converts events.jsonl into Chrome-trace/Perfetto JSON
with deterministic replay-ordinal timestamps. Passing --report to
classify/detect writes report.json/report.md at the end of the run
(scenario key `report: true` does the same).
";

/// Minimal flag parser: `--key value` pairs plus positional arguments.
/// A flag followed by another flag (or by nothing) is a boolean switch
/// and gets the value `on` — e.g. `--strict-health`.
struct Args {
    flags: BTreeMap<String, String>,
    positional: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut flags = BTreeMap::new();
        let mut positional = Vec::new();
        let mut it = argv.iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = match it.peek() {
                    Some(next) if !next.starts_with("--") => it.next().unwrap().clone(),
                    _ => "on".to_string(),
                };
                flags.insert(key.to_string(), value);
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Args { flags, positional })
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.flags
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.flags.get(key).map(String::as_str).unwrap_or(default)
    }
}

fn main() -> ExitCode {
    // Wire report generation into the campaign engine: runs launched
    // with --report (or a scenario `report: true` key) emit
    // report.json/report.md at finalize through this hook.
    alfi::analyze::install_engine_hook();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first().cloned() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "gen-scenario" => cmd_gen_scenario(&argv[1..]),
        "train" => cmd_train(&argv[1..]),
        "classify" => cmd_classify(&argv[1..]),
        "detect" => cmd_detect(&argv[1..]),
        "inspect-faults" => cmd_inspect(&argv[1..]),
        "store" => cmd_store(&argv[1..]),
        "analyze" => cmd_analyze(&argv[1..]),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Builds the campaign recorder from `--trace <on|off>` (default off).
/// `on` enables span timings, counters, the live progress line and the
/// `events.jsonl` log in the output directory.
fn trace_recorder(args: &Args) -> Result<Recorder, String> {
    match args.get_or("trace", "off") {
        "on" => Ok(Recorder::new().with_progress(true)),
        "off" => Ok(Recorder::disabled()),
        other => Err(format!("bad --trace value `{other}` (expected on|off)")),
    }
}

/// Prints the end-of-run trace summary for an enabled recorder.
fn print_trace_summary(recorder: &Recorder) {
    if recorder.is_enabled() {
        print!("{}", recorder.summary().render());
    }
}

/// Applies the shared live-monitoring flags (`--metrics-addr`,
/// `--strict-health`) to a run configuration. `--strict-health` arms
/// the default health watchdog; its post-run exit check happens in
/// [`check_strict_health`].
fn monitoring_config(cfg: RunConfig, args: &Args) -> Result<RunConfig, String> {
    let mut cfg = cfg;
    if let Some(addr) = args.flags.get("metrics-addr") {
        cfg = cfg.metrics_addr(addr);
    }
    match args.get_or("strict-health", "off") {
        "on" => cfg = cfg.health(alfi::metrics::HealthPolicy::default()),
        "off" => {}
        other => return Err(format!("bad --strict-health value `{other}` (expected on|off)")),
    }
    Ok(cfg)
}

/// Applies the `--kernel <reference|blocked>` flag: pins the GEMM
/// kernel path for the campaign. Without the flag the ambient
/// selection applies (`ALFI_KERNEL`, defaulting to the blocked path).
/// Both paths are bit-exact, so this is a performance knob only.
fn kernel_config(cfg: RunConfig, args: &Args) -> Result<RunConfig, String> {
    match args.flags.get("kernel") {
        None => Ok(cfg),
        Some(v) => {
            let path: alfi::tensor::gemm::KernelPath = v
                .parse()
                .map_err(|_| format!("bad --kernel value `{v}` (expected reference|blocked)"))?;
            Ok(cfg.kernel(path))
        }
    }
}

/// Applies the `--format <csv|binary>` flag: selects the row-artifact
/// format for the campaign. `csv` (the default) writes the classic
/// `results_*.csv` set; `binary` writes the columnar `rows.alfic`
/// store instead (convert back with `alfi store convert`). Without
/// the flag any `format:` key in the scenario file applies.
fn format_config(cfg: RunConfig, args: &Args) -> Result<RunConfig, String> {
    match args.flags.get("format") {
        None => Ok(cfg),
        Some(v) => {
            let format: ArtifactFormat = v
                .parse()
                .map_err(|_| format!("bad --format value `{v}` (expected csv|binary)"))?;
            Ok(cfg.format(format))
        }
    }
}

/// Applies the `--report <on|off>` flag (bare `--report` means `on`):
/// asks the engine to generate `report.json` / `report.md` into the
/// output directory at finalize. Without the flag any `report:` key in
/// the scenario file applies.
fn report_config(cfg: RunConfig, args: &Args) -> Result<RunConfig, String> {
    match args.flags.get("report").map(String::as_str) {
        None => Ok(cfg),
        Some("on") => Ok(cfg.report(true)),
        Some("off") => Ok(cfg.report(false)),
        Some(other) => Err(format!("bad --report value `{other}` (expected on|off)")),
    }
}

/// Applies the shared early-stop flags. `--stop-halfwidth` arms the
/// policy; the other three refine it and are rejected without it so a
/// typo can't silently run the full matrix. An armed CLI policy
/// overrides any `stop_policy` key in the scenario file.
fn stop_config(cfg: RunConfig, args: &Args) -> Result<RunConfig, String> {
    let half_width = args.flags.get("stop-halfwidth");
    let refinements = ["stop-confidence", "stop-scope", "stop-method"];
    if half_width.is_none() {
        if let Some(orphan) = refinements.iter().find(|k| args.flags.contains_key(**k)) {
            return Err(format!("--{orphan} requires --stop-halfwidth"));
        }
        return Ok(cfg);
    }
    let mut policy = StopPolicy {
        half_width: half_width
            .unwrap()
            .parse()
            .map_err(|_| "bad --stop-halfwidth value".to_string())?,
        ..StopPolicy::default()
    };
    if let Some(c) = args.flags.get("stop-confidence") {
        policy.confidence = c.parse().map_err(|_| "bad --stop-confidence value".to_string())?;
    }
    if let Some(s) = args.flags.get("stop-scope") {
        policy.scope = match s.as_str() {
            "campaign" => StopScope::Campaign,
            "per-layer" => StopScope::PerLayer,
            other => return Err(format!("bad --stop-scope `{other}` (campaign|per-layer)")),
        };
    }
    if let Some(m) = args.flags.get("stop-method") {
        policy.method = match m.as_str() {
            "wilson" => CiMethod::Wilson,
            "clopper-pearson" | "cp" => CiMethod::ClopperPearson,
            other => return Err(format!("bad --stop-method `{other}` (wilson|clopper-pearson)")),
        };
    }
    policy.validate().map_err(|e| e.to_string())?;
    println!(
        "early stop armed: ±{} @ {:.0}% confidence ({}, {})",
        policy.half_width,
        policy.confidence * 100.0,
        policy.scope,
        policy.method
    );
    Ok(cfg.stop_policy(policy))
}

/// Keeps the process (and with it a `--metrics-addr` endpoint) alive
/// for `ALFI_METRICS_LINGER_MS` milliseconds after the run, so an
/// external scraper can read the final counters.
fn linger_for_scrape(args: &Args) {
    if !args.flags.contains_key("metrics-addr") {
        return;
    }
    if let Some(ms) = std::env::var("ALFI_METRICS_LINGER_MS").ok().and_then(|v| v.parse().ok()) {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// The `--strict-health` exit gate: fails the process when any health
/// alarm fired during the run (the watchdog counts every event it
/// raises under `alfi_health_events_total`).
fn check_strict_health(args: &Args) -> Result<(), String> {
    if args.get_or("strict-health", "off") != "on" {
        return Ok(());
    }
    let events = alfi::metrics::global()
        .snapshot()
        .counter_sum(alfi::metrics::names::HEALTH_EVENTS);
    if events > 0 {
        return Err(format!("--strict-health: {events} health alarm(s) raised during the run"));
    }
    Ok(())
}

fn cmd_gen_scenario(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let out = args.required("out")?;
    let text = format!(
        "# ALFI fault-injection scenario (see `alfi_scenario::Scenario` docs)\n{}",
        Scenario::default().to_yaml_string()
    );
    std::fs::write(out, text).map_err(|e| e.to_string())?;
    println!("wrote default scenario to {out}");
    Ok(())
}

fn model_config(args: &Args) -> Result<ModelConfig, String> {
    Ok(ModelConfig {
        input_hw: args.get_or("input", "32").parse().map_err(|_| "bad --input".to_string())?,
        width_mult: args.get_or("width", "0.125").parse().map_err(|_| "bad --width".to_string())?,
        seed: args.get_or("seed", "0").parse().map_err(|_| "bad --seed".to_string())?,
        ..ModelConfig::default()
    })
}

fn build_model(name: &str, mcfg: &ModelConfig) -> Result<Network, String> {
    Ok(match name {
        "alexnet" => alexnet(mcfg),
        "vgg16" => vgg16(mcfg),
        "resnet50" => resnet50(mcfg),
        "densenet" => densenet_tiny(mcfg),
        "vit" => vit_tiny(mcfg),
        other => return Err(format!("unknown classifier `{other}`")),
    })
}

fn cmd_train(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let out = args.required("out")?.to_string();
    let mcfg = model_config(&args)?;
    let epochs: u64 = args.get_or("epochs", "6").parse().map_err(|_| "bad --epochs".to_string())?;
    let images: usize =
        args.get_or("images", "160").parse().map_err(|_| "bad --images".to_string())?;
    let lr: f32 = args.get_or("lr", "0.05").parse().map_err(|_| "bad --lr".to_string())?;
    let mut model = build_model(args.required("model")?, &mcfg)?;

    let train_ds =
        ClassificationDataset::new(images, mcfg.num_classes, mcfg.in_channels, mcfg.input_hw, 1);
    let test_ds = ClassificationDataset::new(
        (images / 4).max(8),
        mcfg.num_classes,
        mcfg.in_channels,
        mcfg.input_hw,
        2,
    );
    let loader = ClassificationLoader::new(train_ds, 16).with_shuffle(true);
    let mut trainer = SgdTrainer::new(lr, 0.9);
    for epoch in 0..epochs {
        let mut loss = 0.0f32;
        let mut batches = 0usize;
        for batch in loader.iter_epoch(epoch) {
            loss += train_step(&mut model, &mut trainer, &batch.images, &batch.labels)
                .map_err(|e| e.to_string())?;
            batches += 1;
        }
        let mut acc = 0.0f64;
        for i in 0..test_ds.len() {
            let s = test_ds.get(i);
            let x = Tensor::stack(&[s.image]).map_err(|e| e.to_string())?;
            acc += accuracy(&model, &x, &[s.label]).map_err(|e| e.to_string())?;
        }
        println!(
            "epoch {epoch}: loss {:.4}, test accuracy {:.1}%",
            loss / batches.max(1) as f32,
            100.0 * acc / test_ds.len() as f64
        );
    }
    save_weights(&model, &out).map_err(|e| e.to_string())?;
    println!("checkpoint written to {out}");
    Ok(())
}

fn cmd_classify(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let scenario = Scenario::load(args.required("scenario")?).map_err(|e| e.to_string())?;
    let out_dir = args.required("out")?.to_string();
    let mcfg = model_config(&args)?;
    let model_name = args.required("model")?.to_string();
    let mut model = build_model(&model_name, &mcfg)?;
    if let Some(w) = args.flags.get("weights") {
        load_weights(&mut model, w).map_err(|e| e.to_string())?;
        println!("loaded checkpoint {w}");
    }
    let model = model;
    let ds = ClassificationDataset::new(
        scenario.dataset_size,
        mcfg.num_classes,
        mcfg.in_channels,
        mcfg.input_hw,
        scenario.seed,
    );
    let loader = ClassificationLoader::new(ds.clone(), scenario.batch_size);

    let protect = args.flags.get("protect").map(|p| match p.as_str() {
        "ranger" => Ok(Protection::Ranger),
        "clipper" => Ok(Protection::Clipper),
        other => Err(format!("unknown protection `{other}`")),
    });
    let hardened = match protect {
        Some(p) => {
            let p = p?;
            let calib: Vec<Tensor> = (0..4.min(ds.len()))
                .map(|i| Tensor::stack(&[ds.get(i).image]).expect("stack"))
                .collect();
            let bounds = profile_bounds(&model, calib.iter()).map_err(|e| e.to_string())?;
            let h = harden(&model, &bounds, p, 0.1).map_err(|e| e.to_string())?;
            println!("protection: {p:?}");
            Some(h)
        }
        None => None,
    };

    let threads: usize =
        args.get_or("parallel", "1").parse().map_err(|_| "bad --parallel".to_string())?;
    let recorder = trace_recorder(&args)?;
    let cfg = monitoring_config(
        RunConfig::new().threads(threads).recorder(recorder.clone()).save_dir(&out_dir),
        &args,
    )?;
    let cfg = stop_config(cfg, &args)?;
    let cfg = kernel_config(cfg, &args)?;
    let cfg = format_config(cfg, &args)?;
    let cfg = report_config(cfg, &args)?;
    let result = if model_name == "vit" {
        let mut campaign =
            VitCampaign::new(model, VIT_TINY_DEPTH, VIT_TINY_HEADS, scenario, loader);
        if let Some(h) = hardened {
            campaign = campaign.with_resil_model(h);
        }
        campaign.run_with(&cfg)
    } else {
        let mut campaign = ImgClassCampaign::new(model, scenario, loader);
        if let Some(h) = hardened {
            campaign = campaign.with_resil_model(h);
        }
        campaign.run_with(&cfg)
    }
    .map_err(|e| e.to_string())?;
    print_trace_summary(&recorder);

    let kpis = classification_kpis(&result.rows, SdeCriterion::Top1Mismatch);
    println!("images: {}", result.rows.len());
    println!("SDE:    {}", kpis.sde);
    println!("DUE:    {}", kpis.due);
    println!("masked: {}", kpis.masked);
    let resil = resil_sde_rate(&result.rows, SdeCriterion::Top1Mismatch);
    if resil.total > 0 {
        println!("SDE (protected): {resil}");
    }
    println!("\nlayer-wise breakdown:");
    print!("{}", layer_table(&outcomes_by_layer(&result.rows, SdeCriterion::Top1Mismatch)));
    println!("\noutputs written to {out_dir}");
    linger_for_scrape(&args);
    check_strict_health(&args)
}

fn cmd_detect(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let scenario = Scenario::load(args.required("scenario")?).map_err(|e| e.to_string())?;
    let out_dir = args.required("out")?.to_string();
    let dcfg = DetectorConfig {
        input_hw: args.get_or("input", "32").parse().map_err(|_| "bad --input".to_string())?,
        width_mult: args.get_or("width", "0.25").parse().map_err(|_| "bad --width".to_string())?,
        seed: args.get_or("seed", "0").parse().map_err(|_| "bad --seed".to_string())?,
        ..DetectorConfig::default()
    };
    let mut detector: Box<dyn Detector> = match args.required("model")? {
        "yolo" => Box::new(YoloGrid::new(&dcfg)),
        "retina" => Box::new(RetinaAnchor::new(&dcfg)),
        "frcnn" => Box::new(FrcnnTwoStage::new(&dcfg)),
        other => return Err(format!("unknown detector `{other}`")),
    };
    let ds = DetectionDataset::new(
        scenario.dataset_size,
        dcfg.num_classes,
        dcfg.in_channels,
        dcfg.input_hw,
        scenario.seed,
    );
    let ground_truth = ds.coco_ground_truth();
    let loader = DetectionLoader::new(ds, scenario.batch_size);
    let recorder = trace_recorder(&args)?;
    let cfg =
        monitoring_config(RunConfig::new().recorder(recorder.clone()).save_dir(&out_dir), &args)?;
    let cfg = stop_config(cfg, &args)?;
    let cfg = kernel_config(cfg, &args)?;
    let cfg = format_config(cfg, &args)?;
    let cfg = report_config(cfg, &args)?;
    let result = ObjDetCampaign::new(detector.as_mut(), scenario, loader)
        .run_with(&cfg)
        .map_err(|e| e.to_string())?;
    print_trace_summary(&recorder);
    let summary = write_detection_outputs(&result, &ground_truth, dcfg.num_classes, 0.5, &out_dir)
        .map_err(|e| e.to_string())?;
    println!("model:      {}", summary.model);
    println!("images:     {}", result.rows.len());
    println!("IVMOD_SDE:  {}", summary.ivmod.ivmod_sde);
    println!("IVMOD_DUE:  {}", summary.ivmod.ivmod_due);
    println!("mAP@.50:    {:.4} (orig) vs {:.4} (corrupted)", summary.orig_coco.map_50, summary.corr_coco.map_50);
    println!("\noutputs written to {out_dir}");
    linger_for_scrape(&args);
    check_strict_health(&args)
}

fn cmd_inspect(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let path = args.positional.first().ok_or("expected a faults.bin path")?;
    let matrix = load_fault_matrix(path).map_err(|e| e.to_string())?;
    println!(
        "fault matrix: {} faults, target {:?}, {} per image, {} slots",
        matrix.len(),
        matrix.target,
        matrix.faults_per_image,
        matrix.num_slots()
    );
    println!("\n{:<6} {:>6} {:>6} {:>8} {:>8} {:>7} {:>7} {:>10}", "#", "batch", "layer", "chan", "chan_in", "height", "width", "value");
    for (i, r) in matrix.records.iter().enumerate().take(50) {
        let value = match r.value {
            FaultValue::BitFlip(p) => format!("flip b{p}"),
            FaultValue::StuckAt { pos, high } => {
                format!("stuck{} b{pos}", if high { 1 } else { 0 })
            }
            FaultValue::Replace(v) => format!("={v:.3}"),
            FaultValue::QuantStep { bit, bits, .. } => format!("quant b{bit}/{bits}"),
        };
        println!(
            "{:<6} {:>6} {:>6} {:>8} {:>8} {:>7} {:>7} {:>10}",
            i,
            r.batch,
            r.layer,
            r.channel,
            r.channel_in,
            r.height,
            r.width,
            value
        );
        if let Some(d) = r.depth {
            println!("{:<6} depth {d}", "");
        }
    }
    if matrix.len() > 50 {
        println!("... ({} more)", matrix.len() - 50);
    }
    Ok(())
}

fn cmd_store(argv: &[String]) -> Result<(), String> {
    let sub = argv
        .first()
        .map(String::as_str)
        .ok_or("expected a store subcommand (info|lookup|convert)")?;
    let args = Args::parse(&argv[1..])?;
    match sub {
        "info" => store_info(&args),
        "lookup" => store_lookup(&args),
        "convert" => store_convert(&args),
        other => Err(format!("unknown store subcommand `{other}` (info|lookup|convert)")),
    }
}

/// Renders one store cell the way the text artifacts would.
fn render_cell(value: &Value) -> String {
    match value {
        Value::U8(v) => format!("{v}"),
        Value::U32(v) => format!("{v}"),
        Value::U64(v) => format!("{v}"),
        Value::F32(v) => format!("{v}"),
        Value::Str(s) => s.clone(),
    }
}

/// Renders one side of a merged min/max footer stat in the column's own
/// value domain (floats from their bit pattern, integers as-is).
fn render_stat_bits(ty: ColumnType, bits: u64) -> String {
    match ty {
        ColumnType::F32 => format!("{}", f32::from_bits(bits as u32)),
        _ => format!("{bits}"),
    }
}

/// Merges the per-block min/max footers of one column across every
/// block. `None` when no block has a meaningful stat for the column
/// (string columns, all-NaN floats).
fn merge_column_stats(ty: ColumnType, per_block: &[Vec<ColumnStats>], col: usize) -> Option<(u64, u64)> {
    let cmp_key = |bits: u64| match ty {
        // Order floats by value, not bit pattern (negative floats have
        // larger bit patterns than positive ones).
        ColumnType::F32 => {
            let f = f32::from_bits(bits as u32);
            (if f < 0.0 { 0u8 } else { 1u8 }, if f < 0.0 { !bits } else { bits })
        }
        _ => (1u8, bits),
    };
    per_block
        .iter()
        .filter_map(|stats| stats.get(col))
        .filter(|s| s.present)
        .fold(None, |acc: Option<(u64, u64)>, s| {
            Some(match acc {
                None => (s.min_bits, s.max_bits),
                Some((min, max)) => (
                    if cmp_key(s.min_bits) < cmp_key(min) { s.min_bits } else { min },
                    if cmp_key(s.max_bits) > cmp_key(max) { s.max_bits } else { max },
                ),
            })
        })
}

fn store_info(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("expected a rows.alfic path")?;
    let mut replay = ReplayReader::open(path).map_err(|e| e.to_string())?;
    let size = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!("store:      {path} ({size} bytes)");
    println!("kind:       {}", replay.reader().meta("kind").unwrap_or("?"));
    println!(
        "rows:       {} in {} block(s) of up to {} rows",
        replay.reader().total_rows(),
        replay.reader().block_count(),
        replay.reader().block_rows()
    );
    // Per-block min/max footers, merged per column across every block.
    let block_count = replay.reader().block_count();
    let mut per_block = Vec::with_capacity(block_count);
    for idx in 0..block_count {
        per_block.push(replay.reader_mut().block_column_stats(idx).map_err(|e| e.to_string())?);
    }
    let reader = replay.reader();
    println!("columns:    {} (+ epoch/batch/fault_id keys)", reader.schema().columns.len());
    for (col, c) in reader.schema().columns.iter().enumerate() {
        let range = match merge_column_stats(c.ty, &per_block, col) {
            Some((min, max)) => format!(
                "  min {} max {}",
                render_stat_bits(c.ty, min),
                render_stat_bits(c.ty, max)
            ),
            None => String::new(),
        };
        println!("  {:<12} {:?} ({:?}){range}", c.name, c.ty, c.encoding);
    }
    let meta: Vec<String> = reader
        .schema()
        .meta
        .iter()
        .filter(|(k, _)| k.as_str() != "kind" && !k.starts_with("layer."))
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    if !meta.is_empty() {
        println!("meta:       {}", meta.join(", "));
    }
    // Multi-resolution fault-model overrides (`layers:` in the
    // scenario) are stamped into the schema as `layer.<pattern>` keys.
    let layers: Vec<(&String, &String)> = reader
        .schema()
        .meta
        .iter()
        .filter(|(k, _)| k.starts_with("layer."))
        .collect();
    if !layers.is_empty() {
        println!("layers:     {} override pattern(s)", layers.len());
        for (k, v) in layers {
            println!("  {:<12} {}", &k["layer.".len()..], v);
        }
    }
    Ok(())
}

fn store_lookup(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("expected a rows.alfic path")?;
    let fault_id: u64 = args
        .positional
        .get(1)
        .ok_or("expected a fault id")?
        .parse()
        .map_err(|_| "bad fault id (expected an integer)".to_string())?;
    let mut replay = ReplayReader::open(path).map_err(|e| e.to_string())?;
    let rows = replay.lookup_fault(fault_id).map_err(|e| e.to_string())?;
    let names: Vec<String> =
        replay.reader().schema().columns.iter().map(|c| c.name.clone()).collect();
    println!("fault {fault_id}: {} row(s)", rows.len());
    for (key, cells) in &rows {
        println!("epoch {} batch {}:", key.epoch, key.batch);
        for (name, cell) in names.iter().zip(cells) {
            println!("  {:<12} {}", name, render_cell(cell));
        }
    }
    println!(
        "read {} byte(s) across {} block(s)",
        replay.reader().bytes_read(),
        replay.reader().blocks_read()
    );
    Ok(())
}

fn store_convert(args: &Args) -> Result<(), String> {
    let input = args.positional.first().ok_or("expected a file to convert")?;
    let path = std::path::Path::new(input);
    let parent = path.parent().map(|p| p.to_path_buf()).unwrap_or_default();
    let out_dir = args
        .flags
        .get("out")
        .map(std::path::PathBuf::from)
        .unwrap_or(parent);
    std::fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;
    if path.extension().is_some_and(|e| e == "alfic") {
        let written = store_to_files(path, &out_dir).map_err(|e| e.to_string())?;
        for f in &written {
            println!("wrote {}", f.display());
        }
    } else {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or("input file needs a UTF-8 name")?;
        let out = out_dir.join(format!("{name}.alfic"));
        let stats = text_to_store(&text, name, &out).map_err(|e| e.to_string())?;
        println!("wrote {} ({} rows, {} bytes)", out.display(), stats.rows, stats.bytes);
    }
    Ok(())
}

fn cmd_analyze(argv: &[String]) -> Result<(), String> {
    let sub = argv
        .first()
        .map(String::as_str)
        .ok_or("expected an analyze subcommand (report|diff|export-trace)")?;
    let args = Args::parse(&argv[1..])?;
    match sub {
        "report" => analyze_report(&args),
        "diff" => analyze_diff(&args),
        "export-trace" => analyze_export_trace(&args),
        other => Err(format!("unknown analyze subcommand `{other}` (report|diff|export-trace)")),
    }
}

/// Output directory for an analyze subcommand: `--out` when given,
/// otherwise the (first) run directory itself.
fn analyze_out_dir(args: &Args, default: &str) -> Result<std::path::PathBuf, String> {
    let out = std::path::PathBuf::from(args.get_or("out", default));
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    Ok(out)
}

fn analyze_report(args: &Args) -> Result<(), String> {
    let dir = args.positional.first().ok_or("expected a run directory")?;
    let report = alfi::analyze::report::analyze_dir(dir).map_err(|e| e.to_string())?;
    let out = analyze_out_dir(args, dir)?;
    alfi::analyze::report::write_report_files(&report, &out).map_err(|e| e.to_string())?;
    print!("{}", report.to_markdown());
    println!(
        "\nwrote {} and {}",
        out.join(alfi::analyze::REPORT_JSON).display(),
        out.join(alfi::analyze::REPORT_MD).display()
    );
    Ok(())
}

fn analyze_diff(args: &Args) -> Result<(), String> {
    let a_dir = args.positional.first().ok_or("expected two run directories")?;
    let b_dir = args.positional.get(1).ok_or("expected two run directories")?;
    let a = alfi::analyze::report::analyze_dir(a_dir).map_err(|e| e.to_string())?;
    let b = alfi::analyze::report::analyze_dir(b_dir).map_err(|e| e.to_string())?;
    let diff = alfi::analyze::diff::diff_reports(&a, &b);
    print!("{}", diff.to_markdown());
    if args.flags.contains_key("out") {
        let out = analyze_out_dir(args, ".")?;
        let path = out.join("diff.json");
        std::fs::write(&path, diff.to_json_string()).map_err(|e| e.to_string())?;
        println!("\nwrote {}", path.display());
    }
    Ok(())
}

fn analyze_export_trace(args: &Args) -> Result<(), String> {
    let dir = args.positional.first().ok_or("expected a run directory")?;
    let (json, self_time) = alfi::analyze::trace_export::export_dir(dir).map_err(|e| e.to_string())?;
    let out = analyze_out_dir(args, dir)?;
    let path = out.join(alfi::analyze::trace_export::TRACE_FILE);
    std::fs::write(&path, json).map_err(|e| e.to_string())?;
    print!("{self_time}");
    println!(
        "\nwrote {} (load it in chrome://tracing or ui.perfetto.dev; timestamps are replay ordinals, not wall clock)",
        path.display()
    );
    Ok(())
}
