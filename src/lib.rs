#![warn(missing_docs)]
//! # alfi — Application-Level Fault Injection for neural networks
//!
//! A from-scratch Rust reproduction of **PyTorchALFI** (Gräfe, Qutub,
//! Geissler, Paulitsch — *"Large-Scale Application of Fault Injection
//! into PyTorch Models"*, DSN-W 2023), including the complete substrate
//! the original delegates to PyTorch.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`tensor`] | `alfi-tensor` | dense tensors + bit-level fault primitives |
//! | [`nn`] | `alfi-nn` | layers, hooked network graphs, model zoo, detectors |
//! | [`scenario`] | `alfi-scenario` | `default.yml`-style campaign configuration |
//! | [`core`] | `alfi-core` | fault matrices, injection engine, persistence, campaigns |
//! | [`core::monitor`] | `alfi-core` | NaN/Inf + activation-range monitors ([`core::attach_monitor`]) |
//! | [`trace`] | `alfi-trace` | campaign observability: [`trace::Recorder`], JSONL event log, [`trace::TraceSummary`] |
//! | [`datasets`] | `alfi-datasets` | synthetic datasets + COCO-style wrappers |
//! | [`mitigation`] | `alfi-mitigation` | Ranger/Clipper activation-range hardening |
//! | [`eval`] | `alfi-eval` | SDE/DUE, IVMOD, COCO AP, result writers |
//! | [`analyze`] | `alfi-analyze` | post-run vulnerability reports, run diffing, trace export |
//!
//! # Quickstart (paper Listing 1)
//!
//! ```
//! use alfi::core::Ptfiwrap;
//! use alfi::nn::models::{alexnet, ModelConfig};
//! use alfi::scenario::{FaultMode, InjectionTarget, Scenario};
//! use alfi::tensor::Tensor;
//!
//! // Initiate the wrapper with the trained baseline model.
//! let cfg = ModelConfig { input_hw: 32, width_mult: 0.0625, ..ModelConfig::default() };
//! let orig_model = alexnet(&cfg);
//! let mut scenario = Scenario::default();
//! scenario.dataset_size = 3;
//! scenario.injection_target = InjectionTarget::Weights;
//! scenario.fault_mode = FaultMode::exponent_bit_flip();
//! let mut wrapper = Ptfiwrap::new(&orig_model, scenario, &cfg.input_dims(1))?;
//!
//! // Get an iterator over faulty models and compare outputs.
//! let input = Tensor::ones(&cfg.input_dims(1));
//! for corrupted_model in wrapper.fimodel_iter() {
//!     let orig_output = orig_model.forward(&input)?;
//!     let corrupted_output = corrupted_model.forward(&input)?;
//!     assert_eq!(orig_output.dims(), corrupted_output.dims());
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Running a campaign with `run_with` + tracing
//!
//! Campaigns run through a single entry point, [`prelude::RunConfig`]:
//! thread count, an optional [`trace::Recorder`] for observability and
//! an optional output directory in one builder. The default
//! configuration reproduces the old sequential `run()` byte-for-byte.
//!
//! ```
//! use alfi::prelude::*;
//! use alfi::datasets::{ClassificationDataset, ClassificationLoader};
//! use alfi::nn::models::{alexnet, ModelConfig};
//!
//! let cfg = ModelConfig { input_hw: 16, width_mult: 0.0625, ..ModelConfig::default() };
//! let mut scenario = Scenario::default();
//! scenario.dataset_size = 4;
//! scenario.injection_target = InjectionTarget::Weights;
//! let ds = ClassificationDataset::new(4, cfg.num_classes, 3, 16, 1);
//! let loader = ClassificationLoader::new(ds, scenario.batch_size);
//!
//! let recorder = Recorder::new();
//! let result = ImgClassCampaign::new(alexnet(&cfg), scenario, loader)
//!     .run_with(&RunConfig::new().threads(1).recorder(recorder.clone()))?;
//!
//! let summary = recorder.summary();
//! assert_eq!(summary.items as usize, result.rows.len());
//! assert_eq!(summary.injections, 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use alfi_analyze as analyze;
pub use alfi_core as core;
pub use alfi_datasets as datasets;
pub use alfi_eval as eval;
pub use alfi_metrics as metrics;
pub use alfi_mitigation as mitigation;
pub use alfi_nn as nn;
pub use alfi_scenario as scenario;
pub use alfi_serde as serde;
pub use alfi_store as store;
pub use alfi_tensor as tensor;
pub use alfi_trace as trace;

/// One-stop imports for writing a campaign: `use alfi::prelude::*;`.
pub mod prelude {
    pub use crate::core::campaign::{
        CampaignTask, ClassificationCampaignResult, DetectionCampaignResult, Engine,
        ImgClassCampaign, ObjDetCampaign, RunConfig,
    };
    pub use crate::core::{attach_monitor, Artifacts, NanInfMonitor, RangeMonitor, ReplayReader};
    pub use crate::scenario::{
        ArtifactFormat, CiMethod, FaultMode, InjectionPolicy, InjectionTarget, Scenario,
        StopPolicy, StopScope,
    };
    pub use crate::metrics::{HealthEvent, HealthPolicy, Registry};
    pub use crate::trace::{Recorder, StopEvent, StopOutcome, StopVerdict, TraceSummary};
}
