#![warn(missing_docs)]
//! # alfi — Application-Level Fault Injection for neural networks
//!
//! A from-scratch Rust reproduction of **PyTorchALFI** (Gräfe, Qutub,
//! Geissler, Paulitsch — *"Large-Scale Application of Fault Injection
//! into PyTorch Models"*, DSN-W 2023), including the complete substrate
//! the original delegates to PyTorch.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`tensor`] | `alfi-tensor` | dense tensors + bit-level fault primitives |
//! | [`nn`] | `alfi-nn` | layers, hooked network graphs, model zoo, detectors |
//! | [`scenario`] | `alfi-scenario` | `default.yml`-style campaign configuration |
//! | [`core`] | `alfi-core` | fault matrices, injection engine, persistence, campaigns |
//! | [`datasets`] | `alfi-datasets` | synthetic datasets + COCO-style wrappers |
//! | [`mitigation`] | `alfi-mitigation` | Ranger/Clipper activation-range hardening |
//! | [`eval`] | `alfi-eval` | SDE/DUE, IVMOD, COCO AP, result writers |
//!
//! # Quickstart (paper Listing 1)
//!
//! ```
//! use alfi::core::Ptfiwrap;
//! use alfi::nn::models::{alexnet, ModelConfig};
//! use alfi::scenario::{FaultMode, InjectionTarget, Scenario};
//! use alfi::tensor::Tensor;
//!
//! // Initiate the wrapper with the trained baseline model.
//! let cfg = ModelConfig { input_hw: 32, width_mult: 0.0625, ..ModelConfig::default() };
//! let orig_model = alexnet(&cfg);
//! let mut scenario = Scenario::default();
//! scenario.dataset_size = 3;
//! scenario.injection_target = InjectionTarget::Weights;
//! scenario.fault_mode = FaultMode::exponent_bit_flip();
//! let mut wrapper = Ptfiwrap::new(&orig_model, scenario, &cfg.input_dims(1))?;
//!
//! // Get an iterator over faulty models and compare outputs.
//! let input = Tensor::ones(&cfg.input_dims(1));
//! for corrupted_model in wrapper.fimodel_iter() {
//!     let orig_output = orig_model.forward(&input)?;
//!     let corrupted_output = corrupted_model.forward(&input)?;
//!     assert_eq!(orig_output.dims(), corrupted_output.dims());
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use alfi_core as core;
pub use alfi_datasets as datasets;
pub use alfi_eval as eval;
pub use alfi_mitigation as mitigation;
pub use alfi_nn as nn;
pub use alfi_scenario as scenario;
pub use alfi_tensor as tensor;
